//! On-stack replacement: a hot loop inside a *single* activation must be
//! transferred mid-loop into optimizing-tier code, and the transfer must be
//! semantically invisible — results, traps, and fuel accounting are
//! bit-identical to a run that never transitions.
//!
//! Call-count tier-up can never help a module whose entire runtime is one
//! long-running call; these tests pin the fix: the back-edge hotness counter
//! piggybacking on the fused meter-check sites fires, the optimizing
//! artifact is compiled, and the running frame jumps into the published code
//! at the loop's OSR entry.

mod common;

use common::{all_tier_backend_configs, run_export, run_export_fueled};
use engine::{CompileTier, Engine, EngineConfig, Imports, Instrumentation};
use machine::masm::CodeBackend;
use machine::values::WasmValue;
use spc::CompilerOptions;
use telemetry::EventKind;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, ValueType};
use wasm::Module;

/// `hot(n)`: an LCG checksum loop — `n` iterations of multiply/add state
/// updates with live values across the back edge, returning the checksum.
fn hot_loop_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.block(BlockType::Empty)
        .loop_(BlockType::Empty)
        .local_get(0)
        .op(Opcode::I32Eqz)
        .br_if(1)
        .local_get(1)
        .i32_const(1103515245)
        .op(Opcode::I32Mul)
        .i32_const(12345)
        .op(Opcode::I32Add)
        .local_get(0)
        .op(Opcode::I32Xor)
        .local_set(1)
        .local_get(0)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .local_set(0)
        .br(0)
        .end()
        .end()
        .local_get(1);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32],
        c.finish(),
    );
    b.export_func("hot", f);
    b.finish()
}

/// `work(n)`: loops `n` times accumulating, then divides by local 2 — zero —
/// so the loop always ends in an `integer divide by zero` trap. The trap
/// happens *after* OSR has transferred the frame, proving trap identity
/// survives the transition.
fn trapping_loop_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.block(BlockType::Empty)
        .loop_(BlockType::Empty)
        .local_get(0)
        .op(Opcode::I32Eqz)
        .br_if(1)
        .local_get(1)
        .local_get(0)
        .op(Opcode::I32Add)
        .local_set(1)
        .local_get(0)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .local_set(0)
        .br(0)
        .end()
        .end()
        .local_get(1)
        .local_get(2)
        .op(Opcode::I32DivS);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32, ValueType::I32],
        c.finish(),
    );
    b.export_func("work", f);
    b.finish()
}

/// The reference checksum, from a plain interpreter run.
fn reference_checksum(module: &Module, n: i32) -> Vec<WasmValue> {
    run_export(
        EngineConfig::interpreter("osr-ref"),
        module,
        "hot",
        &[WasmValue::I32(n)],
    )
    .expect("reference run completes")
}

/// A single long-running call under a tiered config whose *call* threshold
/// is unreachable must still reach the optimizing tier: the back-edge
/// counter fires, the opt artifact is compiled, and the live interpreter
/// frame is replaced mid-loop.
#[test]
fn osr_promotes_a_single_hot_call_from_the_interpreter() {
    let module = hot_loop_module();
    let expected = reference_checksum(&module, 200_000);
    for backend in [CodeBackend::VirtualIsa, CodeBackend::X64] {
        let config = EngineConfig::tiered("osr-int", u32::MAX, CompilerOptions::allopt())
            .with_backend(backend)
            .with_osr(0);
        let engine = Engine::new(config);
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("module instantiates");
        let results = engine
            .call_export(&mut instance, "hot", &[WasmValue::I32(200_000)])
            .expect("hot loop completes");
        assert_eq!(results, expected, "{backend:?}: OSR changed the checksum");
        assert_eq!(
            instance.artifact().opt_compiled_count(),
            1,
            "{backend:?}: the hot loop was not opt-compiled within one call"
        );
        assert!(
            instance.metrics.opt_exec_cycles > 0,
            "{backend:?}: the activation never executed optimizing-tier code"
        );
    }
}

/// OSR also replaces *baseline* frames: under an eager baseline-only config
/// with OSR enabled, the loop starts in single-pass code and ends in the
/// optimizing tier, mid-activation.
#[test]
fn osr_promotes_a_hot_call_out_of_baseline_code() {
    let module = hot_loop_module();
    let expected = reference_checksum(&module, 200_000);
    for backend in [CodeBackend::VirtualIsa, CodeBackend::X64] {
        let config = EngineConfig::baseline("osr-base", CompilerOptions::allopt())
            .with_backend(backend)
            .with_osr(0);
        let engine = Engine::new(config);
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("module instantiates");
        let results = engine
            .call_export(&mut instance, "hot", &[WasmValue::I32(200_000)])
            .expect("hot loop completes");
        assert_eq!(results, expected, "{backend:?}: OSR changed the checksum");
        assert_eq!(instance.artifact().opt_compiled_count(), 1, "{backend:?}");
        assert!(
            instance.metrics.opt_exec_cycles > 0,
            "{backend:?}: baseline frame was never replaced"
        );
        // The opt artifact was reached by OSR, not by call-count promotion.
        assert!(
            instance
                .artifact()
                .artifact_for(0, CompileTier::Opt)
                .is_some(),
            "{backend:?}"
        );
    }
}

/// With the threshold set far above the iteration count, the counter never
/// fires: no opt compilation, same checksum.
#[test]
fn a_cold_loop_stays_below_the_osr_threshold() {
    let module = hot_loop_module();
    let expected = reference_checksum(&module, 50);
    let config = EngineConfig::tiered("osr-cold", u32::MAX, CompilerOptions::allopt())
        .with_osr(1_000_000);
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("module instantiates");
    let results = engine
        .call_export(&mut instance, "hot", &[WasmValue::I32(50)])
        .expect("loop completes");
    assert_eq!(results, expected);
    assert_eq!(instance.artifact().opt_compiled_count(), 0);
    assert_eq!(instance.metrics.opt_exec_cycles, 0);
}

/// OSR forced at every back edge (threshold 0) must be bit-identical to
/// never-OSR under *every* tier×backend configuration: same results for the
/// checksum kernel, same `TrapReason` for the trapping kernel.
#[test]
fn forced_osr_is_bit_identical_across_the_config_matrix() {
    let hot = hot_loop_module();
    let trapping = trapping_loop_module();
    for config in all_tier_backend_configs() {
        let name = config.name.clone();
        let base_hot = run_export(config.clone(), &hot, "hot", &[WasmValue::I32(10_000)]);
        let osr_hot = run_export(
            config.clone().with_osr(0),
            &hot,
            "hot",
            &[WasmValue::I32(10_000)],
        );
        assert_eq!(base_hot, osr_hot, "[{name}] checksum diverged under forced OSR");

        let base_trap = run_export(config.clone(), &trapping, "work", &[WasmValue::I32(10_000)]);
        let osr_trap = run_export(
            config.clone().with_osr(0),
            &trapping,
            "work",
            &[WasmValue::I32(10_000)],
        );
        assert!(base_trap.is_err(), "[{name}] kernel must trap");
        assert_eq!(base_trap, osr_trap, "[{name}] trap diverged under forced OSR");
    }
}

/// Deterministic metering survives OSR: the fuel consumed by a metered run
/// is identical whether or not the activation transitions tiers mid-loop,
/// and out-of-fuel fires at the same point.
#[test]
fn fuel_accounting_is_identical_with_and_without_osr() {
    let module = hot_loop_module();
    for config in all_tier_backend_configs() {
        let name = config.name.clone();
        // Plenty of fuel: both runs complete; consumption must match.
        let (base, base_fuel) = run_export_fueled(
            config.clone(),
            &module,
            "hot",
            &[WasmValue::I32(20_000)],
            u64::MAX / 2,
        );
        let (osr, osr_fuel) = run_export_fueled(
            config.clone().with_osr(0),
            &module,
            "hot",
            &[WasmValue::I32(20_000)],
            u64::MAX / 2,
        );
        assert_eq!(base, osr, "[{name}] results diverged under metering");
        assert_eq!(base_fuel, osr_fuel, "[{name}] fuel consumption diverged");

        // Starve the loop mid-way: the exhaustion trap must be identical.
        let (base, base_fuel) = run_export_fueled(
            config.clone(),
            &module,
            "hot",
            &[WasmValue::I32(20_000)],
            base_fuel / 2,
        );
        let (osr, osr_fuel) = run_export_fueled(
            config.clone().with_osr(0),
            &module,
            "hot",
            &[WasmValue::I32(20_000)],
            osr_fuel / 2,
        );
        assert_eq!(base, osr, "[{name}] out-of-fuel diverged");
        assert_eq!(base_fuel, osr_fuel, "[{name}] exhaustion fuel diverged");
    }
}

/// OSR transitions are observable: the trace ring records an `OsrEnter`
/// event and the metrics registry counts it.
#[test]
fn osr_transitions_are_visible_in_telemetry() {
    let module = hot_loop_module();
    let config = EngineConfig::tiered("osr-tel", u32::MAX, CompilerOptions::allopt())
        .with_osr(0)
        .with_telemetry();
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("module instantiates");
    engine
        .call_export(&mut instance, "hot", &[WasmValue::I32(100_000)])
        .expect("hot loop completes");
    let rings = engine.telemetry().drain();
    let osr_events: Vec<_> = rings
        .iter()
        .flat_map(|(_, events, _)| events)
        .filter(|e| matches!(e.kind, EventKind::OsrEnter { .. }))
        .collect();
    assert!(!osr_events.is_empty(), "no OsrEnter event was recorded");
    let snapshot = engine
        .telemetry()
        .metrics()
        .expect("telemetry enabled")
        .snapshot();
    let entries = snapshot
        .counters
        .iter()
        .find(|(name, _)| name.as_str() == "engine.osr_entries")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(entries as usize, osr_events.len());
}
