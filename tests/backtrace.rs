//! Differential trap diagnostics: the symbolicated backtrace attached to a
//! trap must be **bit-identical** under every tier×backend configuration.
//!
//! A trap observed in optimizing-tier x64 code and the same trap observed in
//! the in-place interpreter must attribute to the same function, the same
//! bytecode offset, and the same debug name — the executing tier is recorded
//! per frame for display but excluded from equality. The suite covers the
//! shapes the tier boundary makes hard: multi-frame call chains,
//! `call_indirect` dispatch traps (which fire *between* frames), frames
//! replaced mid-loop by OSR, and stack exhaustion (where the trace is
//! truncated to a fixed head+tail). A proptest arm extends the same
//! invariant to randomly generated trapping call chains.

mod common;

use common::all_tier_backend_configs;
use engine::{
    Engine, EngineConfig, FrameTierTag, Imports, Instrumentation, ResourceLimits, TrapInfo,
    TrapReason,
};
use machine::values::WasmValue;
use machine::TrapCode;
use proptest::prelude::*;
use spc::CompilerOptions;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, Limits, ValueType};
use wasm::Module;

/// Instantiates `module` under `config`, calls `name`, and returns the call
/// result together with the trap diagnostics (if the call trapped).
fn run_with_diagnostics(
    config: EngineConfig,
    module: &Module,
    name: &str,
    args: &[WasmValue],
) -> (Result<Vec<WasmValue>, TrapCode>, Option<TrapInfo>) {
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(module, Imports::new(), Instrumentation::none())
        .expect("module instantiates");
    let result = engine.call_export(&mut instance, name, args);
    let trap = instance.last_trap().cloned();
    (result, trap)
}

/// Runs `module::name(args)` under every tier×backend configuration — plus
/// each configuration with OSR forced at every back edge — asserting the
/// trap diagnostics are identical everywhere, and returns the common
/// [`TrapInfo`].
fn assert_identical_diagnostics(module: &Module, name: &str, args: &[WasmValue]) -> TrapInfo {
    let (reference_result, reference) = run_with_diagnostics(
        EngineConfig::interpreter("bt-ref"),
        module,
        name,
        args,
    );
    assert!(reference_result.is_err(), "workload must trap");
    let reference = reference.expect("trap produced diagnostics");
    for config in all_tier_backend_configs() {
        for (suffix, config) in [("", config.clone()), ("+osr", config.clone().with_osr(0))] {
            let label = format!("{}{}", config.name, suffix);
            let (result, trap) = run_with_diagnostics(config, module, name, args);
            assert_eq!(result, reference_result, "[{label}] trap code diverged");
            let trap = trap.unwrap_or_else(|| panic!("[{label}] no diagnostics captured"));
            assert_eq!(trap, reference, "[{label}] backtrace diverged");
        }
    }
    reference
}

/// A trap at the bottom of a three-deep call chain symbolicates every frame
/// from the `name` section, attributes each frame to the right bytecode
/// offset, and does so identically across the whole matrix.
#[test]
fn call_chain_traps_symbolicate_identically_across_the_matrix() {
    let text = r#"
        (module $chain
          (func $div (param $a i32) (param $b i32) (result i32)
            local.get $a
            local.get $b
            i32.div_s)
          (func $middle (param $n i32) (result i32)
            local.get $n
            i32.const 0
            call $div)
          (func $main (export "main") (param $n i32) (result i32)
            local.get $n
            call $middle))
    "#;
    let module = wasm::wat::parse_module(text).expect("chain module parses");
    let trap = assert_identical_diagnostics(&module, "main", &[WasmValue::I32(7)]);
    assert_eq!(trap.reason, TrapReason::DivisionByZero);

    let frames = trap.backtrace.frames();
    assert_eq!(frames.len(), 3, "one frame per live activation");
    assert_eq!(trap.backtrace.truncated(), 0);
    let names: Vec<&str> = frames.iter().map(|f| f.name.as_deref().unwrap()).collect();
    assert_eq!(names, ["div", "middle", "main"], "innermost frame first");
    assert_eq!(
        trap.backtrace.symbolication_coverage(),
        1.0,
        "every frame symbolicates from the name section"
    );
    // Each caller frame points at its `call` instruction, not at wherever
    // the callee happened to be; the offsets are strictly positive and
    // distinct per function here.
    assert!(frames.iter().all(|f| f.offset > 0));
    let rendered = format!("{trap}");
    assert!(rendered.contains("integer divide by zero"), "{rendered}");
    assert!(rendered.contains("#0 div"), "{rendered}");
    assert!(rendered.contains("#2 main"), "{rendered}");
}

/// All three `call_indirect` dispatch traps — signature mismatch,
/// uninitialized element, and out-of-bounds index — fire *before* a callee
/// frame exists, so the innermost frame must be the dispatching function at
/// the offset of the `call_indirect` instruction itself.
#[test]
fn call_indirect_dispatch_traps_attribute_to_the_call_site() {
    let text = r#"
        (module $dispatch
          (type $binop (func (param i32 i32) (result i32)))
          (type $nullary (func (result i32)))
          (table 10 funcref)
          (elem (offset (i32.const 0)) func $add $answer)
          (func $add (type $binop) local.get 0 local.get 1 i32.add)
          (func $answer (type $nullary) i32.const 42)
          (func $route (export "route") (param $which i32) (param $a i32) (param $b i32) (result i32)
            local.get $a
            local.get $b
            local.get $which
            call_indirect (type $binop)))
    "#;
    let module = wasm::wat::parse_module(text).expect("dispatch module parses");
    let cases = [
        (1, TrapReason::IndirectCallMismatch), // slot 1 holds the nullary fn
        (7, TrapReason::UninitializedElement), // in-bounds, never initialized
        (10, TrapReason::OutOfBoundsTable),    // one past the table
    ];
    let mut call_site = None;
    for (which, reason) in cases {
        let args = [WasmValue::I32(which), WasmValue::I32(3), WasmValue::I32(4)];
        let trap = assert_identical_diagnostics(&module, "route", &args);
        assert_eq!(trap.reason, reason);
        let frames = trap.backtrace.frames();
        assert_eq!(frames.len(), 1, "dispatch fails before a callee frame exists");
        assert_eq!(frames[0].name.as_deref(), Some("route"));
        // All three causes attribute to the same instruction: the
        // `call_indirect` in `route`.
        let offset = frames[0].offset;
        assert!(offset > 0);
        assert_eq!(*call_site.get_or_insert(offset), offset);
    }
}

/// `spin(n)`: loops accumulating `1000 / (n - 1)` while decrementing `n`, so
/// the division traps when the counter reaches one — thousands of back edges
/// after entry, long after a forced-OSR transfer has replaced the frame.
fn mid_loop_trap_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.block(BlockType::Empty)
        .loop_(BlockType::Empty)
        .local_get(0)
        .op(Opcode::I32Eqz)
        .br_if(1)
        .local_get(1)
        .i32_const(1000)
        .local_get(0)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .op(Opcode::I32DivS)
        .op(Opcode::I32Add)
        .local_set(1)
        .local_get(0)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .local_set(0)
        .br(0)
        .end()
        .end()
        .local_get(1);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32],
        c.finish(),
    );
    b.export_func("spin", f);
    b.finish()
}

/// A frame that trapped *after* OSR replaced it mid-loop reports the same
/// backtrace as a frame that never left its original tier — and the recorded
/// tier tag proves the trap really was observed in optimizing-tier code.
#[test]
fn osr_replaced_frames_report_the_same_backtrace() {
    let module = mid_loop_trap_module();
    let args = [WasmValue::I32(10_000)];
    let trap = assert_identical_diagnostics(&module, "spin", &args);
    assert_eq!(trap.reason, TrapReason::DivisionByZero);
    assert_eq!(trap.backtrace.frames().len(), 1);
    // Unnamed module: the frame is unsymbolicated but still attributed.
    assert_eq!(trap.backtrace.frames()[0].name, None);
    assert_eq!(trap.backtrace.symbolication_coverage(), 0.0);

    // Run once more under a tiered config whose call threshold is
    // unreachable, with OSR forced: the only route into the optimizing tier
    // is replacing the live frame mid-loop. The trap must then be observed
    // in opt code — same backtrace, opt tier tag.
    let config = EngineConfig::tiered("bt-osr", u32::MAX, CompilerOptions::allopt()).with_osr(0);
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("module instantiates");
    let result = engine.call_export(&mut instance, "spin", &args);
    assert_eq!(result, Err(TrapCode::DivisionByZero));
    assert_eq!(
        instance.artifact().opt_compiled_count(),
        1,
        "the loop was never opt-compiled — OSR did not fire"
    );
    let osr_trap = instance.last_trap().cloned().expect("diagnostics captured");
    assert_eq!(osr_trap, trap, "OSR'd frame diverged from the reference");
    assert_eq!(
        osr_trap.backtrace.frames()[0].tier,
        FrameTierTag::Opt,
        "the trap was not observed in optimizing-tier code"
    );
}

/// Deep recursion that exhausts the call-depth limit produces a trace
/// truncated to a fixed head and tail, with the omitted middle counted —
/// and the truncated trace is still identical across the matrix.
///
/// The limit is pinned low via [`ResourceLimits::call_depth`] so the
/// tier-independent depth check fires (the value-stack capacity check would
/// fire at a tier-*dependent* depth, since frame sizes differ per tier).
#[test]
fn stack_exhaustion_truncates_to_a_fixed_head_and_tail() {
    let text = r#"
        (module $deep
          (func $spin (export "spin") (param $n i32) (result i32)
            local.get $n
            i32.const 1
            i32.add
            call $spin))
    "#;
    let module = wasm::wat::parse_module(text).expect("deep module parses");
    let args = [WasmValue::I32(0)];
    let limits = ResourceLimits {
        call_depth: Some(100),
        ..ResourceLimits::unlimited()
    };

    let (reference_result, reference) = run_with_diagnostics(
        EngineConfig::interpreter("bt-deep-ref").with_limits(limits),
        &module,
        "spin",
        &args,
    );
    assert_eq!(reference_result, Err(TrapCode::StackOverflow));
    let reference = reference.expect("exhaustion produced diagnostics");
    for config in all_tier_backend_configs() {
        let name = config.name.clone();
        let (result, trap) = run_with_diagnostics(
            config.with_limits(limits),
            &module,
            "spin",
            &args,
        );
        assert_eq!(result, reference_result, "[{name}] trap code diverged");
        assert_eq!(
            trap.as_ref(),
            Some(&reference),
            "[{name}] truncated backtrace diverged"
        );
    }

    // 100 live frames, fixed 16-frame head + 16-frame tail, 68 omitted.
    assert_eq!(reference.reason, TrapReason::StackExhaustion);
    assert_eq!(reference.backtrace.frames().len(), 32);
    assert_eq!(reference.backtrace.truncated(), 68);
    assert_eq!(reference.backtrace.depth(), 100);
    // Every retained frame is the same recursive call site, symbolicated.
    for frame in reference.backtrace.frames() {
        assert_eq!(frame.name.as_deref(), Some("spin"));
        assert_eq!(frame.offset, reference.backtrace.frames()[0].offset);
    }
    let rendered = format!("{}", reference.backtrace);
    assert!(rendered.contains("68 frames omitted"), "{rendered}");
}

/// Builds a call chain `f0 -> f1 -> ... -> f<depth>` where the innermost
/// function divides its two arguments (with `pad` constants mixed in to
/// shift bytecode offsets around) and then loads from linear memory at
/// `addr`. Depending on the generated inputs the run traps with division by
/// zero, integer overflow, a memory-bounds fault — or completes.
fn chain_module(depth: u32, pad: i32, div_op: Opcode, addr: u32) -> Module {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::at_least(1));
    let ty = FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]);
    // Innermost function is index `depth`; wrappers 0..depth call downward.
    for i in 0..depth {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .i32_const(pad)
            .op(Opcode::I32Xor)
            .i32_const(pad)
            .op(Opcode::I32Xor)
            .local_get(1)
            .call(i + 1);
        b.add_func(ty.clone(), vec![], c.finish());
    }
    let mut c = CodeBuilder::new();
    c.local_get(0)
        .local_get(1)
        .op(div_op)
        .i32_const(addr as i32)
        .mem(Opcode::I32Load, 0, 0)
        .op(Opcode::I32Add);
    b.add_func(ty, vec![], c.finish());
    b.export_func("f", 0);
    b.finish()
}

proptest! {
    // Each case runs the full 8-config matrix; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzzer arm: generated call chains whose innermost frame traps (or
    /// doesn't) agree on the complete observable outcome — result or trap
    /// code AND the full backtrace — across every configuration.
    #[test]
    fn generated_trapping_chains_agree_on_diagnostics_across_the_matrix(
        depth in 0u32..6,
        pad in any::<i32>(),
        which in 0u8..4,
        a in prop_oneof![Just(i32::MIN), any::<i32>()],
        b in prop_oneof![Just(0i32), Just(-1i32), any::<i32>()],
        addr in prop_oneof![0u32..60_000, 60_000u32..100_000],
    ) {
        let div_op = [Opcode::I32DivS, Opcode::I32DivU, Opcode::I32RemS, Opcode::I32RemU]
            [usize::from(which)];
        let module = chain_module(depth, pad, div_op, addr);
        wasm::validate::validate(&module).expect("generated chain validates");

        let args = [WasmValue::I32(a), WasmValue::I32(b)];
        let reference = run_with_diagnostics(
            EngineConfig::interpreter("bt-fuzz-ref"),
            &module,
            "f",
            &args,
        );
        if let Some(trap) = &reference.1 {
            // A trapping chain reports one frame per live activation.
            prop_assert_eq!(trap.backtrace.depth() as u32, depth + 1);
        }
        for config in all_tier_backend_configs() {
            let name = config.name.clone();
            let got = run_with_diagnostics(config, &module, "f", &args);
            prop_assert_eq!(
                &got, &reference,
                "configuration {} diverged on diagnostics", name
            );
        }
    }
}
