//! End-to-end coverage for `EngineConfig::with_lazy_compile(true)`:
//! functions are compiled at their first call rather than at instantiation,
//! and the run metrics attribute the deferred compile time accordingly.

mod common;

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use machine::values::WasmValue;
use spc::CompilerOptions;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{FuncType, ValueType};
use wasm::Module;

/// A module with three defined functions: an exported `main` that calls
/// `helper`, and a `cold` function nothing ever calls.
fn three_function_module() -> Module {
    let mut b = ModuleBuilder::new();
    let helper = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![],
        {
            let mut c = CodeBuilder::new();
            c.local_get(0).i32_const(2).op(Opcode::I32Mul);
            c.finish()
        },
    );
    let main = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], {
        let mut c = CodeBuilder::new();
        c.i32_const(21).call(helper);
        c.finish()
    });
    let _cold = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], {
        let mut c = CodeBuilder::new();
        c.i32_const(-1);
        c.finish()
    });
    b.export_func("main", main);
    b.finish()
}

#[test]
fn lazy_compile_defers_compilation_to_first_call() {
    let module = three_function_module();
    let config =
        EngineConfig::baseline("spc-lazy", CompilerOptions::allopt()).with_lazy_compile(true);
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("instantiates");

    // Nothing is compiled at instantiation under a lazy configuration.
    assert_eq!(instance.metrics.functions_compiled, 0);
    assert_eq!(instance.metrics.compile_wall.as_nanos(), 0);
    assert_eq!(instance.metrics.lazy_compile_wall.as_nanos(), 0);
    assert_eq!(instance.metrics.compiled_wasm_bytes, 0);
    for defined in 0..3 {
        assert!(
            instance.compiled_code(defined).is_none(),
            "function {defined} must not be compiled before its first call"
        );
    }

    // The first call compiles exactly the functions on the call path.
    let result = engine
        .call_export(&mut instance, "main", &[])
        .expect("main runs");
    assert_eq!(result, vec![WasmValue::I32(42)]);
    assert_eq!(
        instance.metrics.functions_compiled, 2,
        "main and helper are compiled on demand"
    );
    assert!(instance.compiled_code(0).is_some(), "helper was called");
    assert!(instance.compiled_code(1).is_some(), "main was called");
    assert!(
        instance.compiled_code(2).is_none(),
        "the cold function stays uncompiled"
    );

    // The deferred compile time shows up in the metrics, outside setup and
    // outside the eager-compile bucket: lazy work is accounted separately.
    assert_eq!(
        instance.metrics.compile_wall.as_nanos(),
        0,
        "a lazy configuration never compiles eagerly"
    );
    assert!(instance.metrics.lazy_compile_wall.as_nanos() > 0);
    assert_eq!(
        instance.metrics.total_compile_wall(),
        instance.metrics.lazy_compile_wall
    );
    assert!(instance.metrics.compiled_wasm_bytes > 0);

    // A second call does not recompile anything.
    let compile_wall_after_first = instance.metrics.lazy_compile_wall;
    engine
        .call_export(&mut instance, "main", &[])
        .expect("main runs again");
    assert_eq!(instance.metrics.functions_compiled, 2);
    assert_eq!(instance.metrics.lazy_compile_wall, compile_wall_after_first);
}

#[test]
fn lazy_and_eager_agree_across_the_tier_backend_matrix() {
    // The deferred-compilation confounder must never change results: every
    // configuration in the shared matrix computes the same value.
    let module = three_function_module();
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let r = common::run_export(config, &module, "main", &[])
            .unwrap_or_else(|e| panic!("[{name}] trap: {e}"));
        assert_eq!(r, vec![WasmValue::I32(42)], "[{name}]");
    }
}

#[test]
fn eager_configuration_compiles_everything_at_instantiation() {
    let module = three_function_module();
    let config = EngineConfig::baseline("spc-eager", CompilerOptions::allopt());
    assert!(!config.lazy_compile);
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("instantiates");
    assert_eq!(instance.metrics.functions_compiled, 3);
    assert!(instance.metrics.compile_wall.as_nanos() > 0);
    assert_eq!(
        instance.metrics.lazy_compile_wall.as_nanos(),
        0,
        "an eager configuration has no deferred compiles"
    );
    assert!(
        instance.metrics.setup_wall >= instance.metrics.compile_wall,
        "eager compilation happens inside instantiation"
    );
    assert!(instance.compiled_code(2).is_some(), "even the cold function");
    let result = engine
        .call_export(&mut instance, "main", &[])
        .expect("main runs");
    assert_eq!(result, vec![WasmValue::I32(42)]);
    assert_eq!(instance.metrics.functions_compiled, 3, "no recompilation");
}
