//! Property-based differential testing: randomly generated straight-line
//! arithmetic functions must produce identical results (including identical
//! traps) in the interpreter and in baseline-compiled code under every
//! optimization configuration.

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use machine::values::WasmValue;
use machine::TrapCode;
use proptest::prelude::*;
use spc::CompilerOptions;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{FuncType, ValueType};

/// One step of a generated program: an operation applied to the accumulator
/// (local 2) and either a constant or one of the two parameters.
#[derive(Debug, Clone)]
enum Step {
    Const(i32),
    Param(u8),
    Binop(u8),
    Unop(u8),
    StoreLocal,
    LoadLocal,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<i32>().prop_map(Step::Const),
        (0u8..2).prop_map(Step::Param),
        (0u8..12).prop_map(Step::Binop),
        (0u8..4).prop_map(Step::Unop),
        Just(Step::StoreLocal),
        Just(Step::LoadLocal),
    ]
}

/// Builds a module whose exported `f(i32, i32) -> i32` applies the steps to a
/// running accumulator. The generated code always leaves exactly one i32 on
/// the stack between steps, so it always validates.
fn build_program(steps: &[Step]) -> wasm::Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.local_get(0);
    for step in steps {
        match step {
            Step::Const(v) => {
                c.i32_const(*v).op(Opcode::I32Add);
            }
            Step::Param(p) => {
                c.local_get(u32::from(*p)).op(Opcode::I32Xor);
            }
            Step::Binop(which) => {
                let op = [
                    Opcode::I32Add,
                    Opcode::I32Sub,
                    Opcode::I32Mul,
                    Opcode::I32And,
                    Opcode::I32Or,
                    Opcode::I32Xor,
                    Opcode::I32Shl,
                    Opcode::I32ShrS,
                    Opcode::I32ShrU,
                    Opcode::I32Rotl,
                    Opcode::I32DivS,
                    Opcode::I32RemU,
                ][usize::from(*which) % 12];
                c.local_get(1).op(op);
            }
            Step::Unop(which) => {
                let op = [
                    Opcode::I32Eqz,
                    Opcode::I32Clz,
                    Opcode::I32Ctz,
                    Opcode::I32Popcnt,
                ][usize::from(*which) % 4];
                c.op(op);
            }
            Step::StoreLocal => {
                c.local_tee(2);
            }
            Step::LoadLocal => {
                c.drop_().local_get(2);
            }
        }
    }
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32],
        c.finish(),
    );
    b.export_func("f", f);
    b.finish()
}

fn run(
    config: EngineConfig,
    module: &wasm::Module,
    a: i32,
    b: i32,
) -> Result<WasmValue, TrapCode> {
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(module, Imports::new(), Instrumentation::none())
        .expect("generated module instantiates");
    engine
        .call_export(&mut instance, "f", &[WasmValue::I32(a), WasmValue::I32(b)])
        .map(|r| r[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_agree_across_tiers(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        a in any::<i32>(),
        b in any::<i32>(),
    ) {
        let module = build_program(&steps);
        // Validation must accept every generated program.
        wasm::validate::validate(&module).expect("generated program validates");

        let reference = run(EngineConfig::interpreter("int"), &module, a, b);
        for options in [
            CompilerOptions::allopt(),
            CompilerOptions::nok(),
            CompilerOptions::nomr(),
            CompilerOptions::with_tagging(spc::TagStrategy::None, "notags"),
            CompilerOptions::with_tagging(spc::TagStrategy::Eager, "eager"),
        ] {
            let name = options.name.clone();
            let got = run(EngineConfig::baseline(&name, options), &module, a, b);
            prop_assert_eq!(
                &got, &reference,
                "configuration {} disagrees with the interpreter", name
            );
        }
        let opt = run(EngineConfig::optimizing("opt"), &module, a, b);
        prop_assert_eq!(&opt, &reference, "optimizing tier disagrees");
    }

    #[test]
    fn generated_programs_compile_identically_on_both_masm_backends(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        a in any::<i32>(),
        b in any::<i32>(),
    ) {
        let module = build_program(&steps);
        let info = wasm::validate::validate(&module).expect("generated program validates");
        let compiler = spc::SinglePassCompiler::new(CompilerOptions::allopt());
        let probes = spc::ProbeSites::none();
        let virt = compiler
            .compile(&module, 0, &info.funcs[0], &probes)
            .expect("virtual-ISA backend compiles");
        let x64 = compiler
            .compile_with(machine::x64_masm::X64Masm::new(), &module, 0, &info.funcs[0], &probes)
            .expect("x86-64 backend compiles");

        // Backend-independent structure agrees: macro-op count, labels, and
        // the bytecode offsets recorded in the source map.
        prop_assert_eq!(virt.stats.machine_insts, x64.stats.machine_insts);
        prop_assert_eq!(virt.code.label_targets().len(), x64.code.label_targets().len());
        let v_offsets: Vec<u32> = virt.code.source_map().iter().map(|&(_, o)| o).collect();
        let x_offsets: Vec<u32> = x64.code.source_map().iter().map(|&(_, o)| o).collect();
        prop_assert_eq!(v_offsets, x_offsets);
        prop_assert!(x64.code.code_size() > 0);

        // And the virtual-ISA code still executes to the interpreter's
        // checksum.
        let reference = run(EngineConfig::interpreter("int"), &module, a, b);
        let jit = run(EngineConfig::baseline("allopt", CompilerOptions::allopt()), &module, a, b);
        prop_assert_eq!(jit, reference);
    }
}
