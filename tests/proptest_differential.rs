//! Coverage-guided property-based differential testing.
//!
//! Randomly generated programs must (1) validate, (2) round-trip
//! encode → decode → WAT-print → WAT-parse → re-encode **byte-identically**,
//! and (3) produce identical results — including identical traps — under
//! every tier×backend configuration. The generator's reach is *accounted
//! for*: [`generator_registry`] declares the opcodes it can emit, a census
//! proves the corpus actually emits them, and together with the conformance
//! crate's exhaustive module the census covers the engine's entire
//! implemented opcode set (see `opcode_coverage_is_complete`).

mod common;

use engine::EngineConfig;
use machine::values::WasmValue;
use machine::TrapCode;
use proptest::prelude::*;
use spc::CompilerOptions;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, Limits, ValueType};

/// One step of a generated program. Every step consumes the single i32 on
/// the stack and leaves exactly one i32, so every generated program
/// validates by construction.
#[derive(Debug, Clone)]
enum Step {
    Const(i32),
    Param(u8),
    Binop(u8),
    Unop(u8),
    Cmp(u8),
    StoreLocal,
    LoadLocal,
    I64Round(u8, i64),
    F32Round(u8),
    F64Round(u8),
    Mem(u8, u16),
    If(i32),
    Block(i32),
    BrTable,
    Call,
    Select(i32),
}

const BINOPS: [Opcode; 12] = [
    Opcode::I32Add,
    Opcode::I32Sub,
    Opcode::I32Mul,
    Opcode::I32And,
    Opcode::I32Or,
    Opcode::I32Xor,
    Opcode::I32Shl,
    Opcode::I32ShrS,
    Opcode::I32ShrU,
    Opcode::I32Rotl,
    Opcode::I32DivS,
    Opcode::I32RemU,
];
const UNOPS: [Opcode; 6] = [
    Opcode::I32Eqz,
    Opcode::I32Clz,
    Opcode::I32Ctz,
    Opcode::I32Popcnt,
    Opcode::I32Extend8S,
    Opcode::I32Extend16S,
];
const CMPS: [Opcode; 10] = [
    Opcode::I32Eq,
    Opcode::I32Ne,
    Opcode::I32LtS,
    Opcode::I32LtU,
    Opcode::I32GtS,
    Opcode::I32GtU,
    Opcode::I32LeS,
    Opcode::I32LeU,
    Opcode::I32GeS,
    Opcode::I32GeU,
];
const I64OPS: [Opcode; 8] = [
    Opcode::I64Add,
    Opcode::I64Mul,
    Opcode::I64Xor,
    Opcode::I64Rotl,
    Opcode::I64ShrU,
    Opcode::I64Sub,
    Opcode::I64Or,
    Opcode::I64And,
];
const F32OPS: [Opcode; 6] = [
    Opcode::F32Add,
    Opcode::F32Sub,
    Opcode::F32Mul,
    Opcode::F32Abs,
    Opcode::F32Neg,
    Opcode::F32Sqrt,
];
const F64OPS: [Opcode; 8] = [
    Opcode::F64Add,
    Opcode::F64Sub,
    Opcode::F64Mul,
    Opcode::F64Div,
    Opcode::F64Min,
    Opcode::F64Max,
    Opcode::F64Floor,
    Opcode::F64Nearest,
];
/// (store, load) pairs used by `Step::Mem`.
const MEMOPS: [(Opcode, Opcode); 4] = [
    (Opcode::I32Store, Opcode::I32Load),
    (Opcode::I32Store8, Opcode::I32Load8U),
    (Opcode::I32Store16, Opcode::I32Load16S),
    (Opcode::I32Store, Opcode::I32Load16U),
];

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<i32>().prop_map(Step::Const),
        (0u8..2).prop_map(Step::Param),
        (0u8..12).prop_map(Step::Binop),
        (0u8..6).prop_map(Step::Unop),
        (0u8..10).prop_map(Step::Cmp),
        Just(Step::StoreLocal),
        Just(Step::LoadLocal),
        (0u8..8).prop_map(|i| Step::I64Round(i, 0x9E3779B97F4A7C15u64 as i64)),
        (0u8..6).prop_map(Step::F32Round),
        (0u8..8).prop_map(Step::F64Round),
        any::<u32>().prop_map(|v| Step::Mem((v >> 16) as u8, v as u16)),
        any::<i32>().prop_map(Step::If),
        any::<i32>().prop_map(Step::Block),
        Just(Step::BrTable),
        Just(Step::Call),
        any::<i32>().prop_map(Step::Select),
    ]
}

/// Every opcode the generator can emit, for coverage accounting.
fn generator_registry() -> Vec<Opcode> {
    let mut ops = vec![
        // Frame plumbing emitted by the steps and function scaffolding.
        Opcode::LocalGet,
        Opcode::LocalSet,
        Opcode::LocalTee,
        Opcode::I32Const,
        Opcode::I64Const,
        Opcode::F32Const,
        Opcode::F64Const,
        Opcode::End,
        Opcode::Block,
        Opcode::If,
        Opcode::Else,
        Opcode::Br,
        Opcode::BrIf,
        Opcode::BrTable,
        Opcode::Call,
        Opcode::Drop,
        Opcode::Select,
        Opcode::Return,
        // Conversions used by the typed rounds.
        Opcode::I64ExtendI32S,
        Opcode::I32WrapI64,
        Opcode::F32ConvertI32S,
        Opcode::I32ReinterpretF32,
        Opcode::F64ConvertI32S,
        Opcode::I64ReinterpretF64,
    ];
    ops.extend(BINOPS);
    ops.extend(UNOPS);
    ops.extend(CMPS);
    ops.extend(I64OPS);
    ops.extend(F32OPS);
    ops.extend(F64OPS);
    for (s, l) in MEMOPS {
        ops.push(s);
        ops.push(l);
    }
    ops.sort_by_key(|op| op.to_byte());
    ops.dedup();
    ops
}

/// Adds the trap-free helper `Step::Call` targets: h(x) = (x * 3) xor
/// 0x5A5A5A5A, via an early return on zero so `return` stays in the
/// generated opcode set.
fn add_helper(b: &mut ModuleBuilder) -> u32 {
    let mut c = CodeBuilder::new();
    c.local_get(0)
        .if_(BlockType::Empty)
        .else_()
        .i32_const(0)
        .return_()
        .end()
        .local_get(0)
        .i32_const(3)
        .op(Opcode::I32Mul)
        .i32_const(0x5A5A5A5A)
        .op(Opcode::I32Xor);
    b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![],
        c.finish(),
    )
}

/// Builds a module whose exported `f(i32, i32) -> i32` applies the steps to a
/// running accumulator (local 2 is scratch). The module always validates.
fn build_program(steps: &[Step]) -> wasm::Module {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::at_least(1));
    let helper = add_helper(&mut b);
    let mut c = CodeBuilder::new();
    c.local_get(0);
    emit_steps(&mut c, steps, helper);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32],
        c.finish(),
    );
    b.export_func("f", f);
    b.finish()
}

/// Emits the step sequence: consumes the single i32 on the stack, leaves
/// exactly one i32.
fn emit_steps(c: &mut CodeBuilder, steps: &[Step], helper: u32) {
    for step in steps {
        match step {
            Step::Const(v) => {
                c.i32_const(*v).op(Opcode::I32Add);
            }
            Step::Param(p) => {
                c.local_get(u32::from(*p)).op(Opcode::I32Xor);
            }
            Step::Binop(which) => {
                c.local_get(1).op(BINOPS[usize::from(*which) % BINOPS.len()]);
            }
            Step::Unop(which) => {
                c.op(UNOPS[usize::from(*which) % UNOPS.len()]);
            }
            Step::Cmp(which) => {
                c.local_get(1).op(CMPS[usize::from(*which) % CMPS.len()]);
            }
            Step::StoreLocal => {
                c.local_tee(2);
            }
            Step::LoadLocal => {
                c.drop_().local_get(2);
            }
            Step::I64Round(which, k) => {
                // Widen, mix at 64 bits, narrow back — bit-exact.
                c.op(Opcode::I64ExtendI32S)
                    .i64_const(*k)
                    .op(I64OPS[usize::from(*which) % I64OPS.len()])
                    .op(Opcode::I32WrapI64);
            }
            Step::F32Round(which) => {
                let op = F32OPS[usize::from(*which) % F32OPS.len()];
                c.op(Opcode::F32ConvertI32S);
                if matches!(op, Opcode::F32Add | Opcode::F32Sub | Opcode::F32Mul) {
                    c.f32_const(1.5);
                }
                c.op(op).op(Opcode::I32ReinterpretF32);
            }
            Step::F64Round(which) => {
                let op = F64OPS[usize::from(*which) % F64OPS.len()];
                c.op(Opcode::F64ConvertI32S);
                if !matches!(op, Opcode::F64Floor | Opcode::F64Nearest) {
                    c.f64_const(-2.5);
                }
                c.op(op).op(Opcode::I64ReinterpretF64).op(Opcode::I32WrapI64);
            }
            Step::Mem(which, addr) => {
                let (store, load) = MEMOPS[usize::from(*which) % MEMOPS.len()];
                let addr = u32::from(*addr) % 60_000;
                c.local_set(2)
                    .i32_const(addr as i32)
                    .local_get(2)
                    .mem(store, 0, 0)
                    .i32_const(addr as i32)
                    .mem(load, 0, 4)
                    .local_get(2)
                    .op(Opcode::I32Add);
            }
            Step::If(k) => {
                c.local_tee(2)
                    .if_(BlockType::Value(ValueType::I32))
                    .i32_const(*k)
                    .else_()
                    .local_get(2)
                    .i32_const(1)
                    .op(Opcode::I32Or)
                    .end();
            }
            Step::Block(k) => {
                c.local_set(2)
                    .block(BlockType::Value(ValueType::I32))
                    .local_get(2)
                    .local_get(2)
                    .br_if(0)
                    .drop_()
                    .i32_const(*k)
                    .end();
            }
            Step::BrTable => {
                c.local_set(2)
                    .block(BlockType::Value(ValueType::I32))
                    .block(BlockType::Empty)
                    .block(BlockType::Empty)
                    .local_get(2)
                    .i32_const(3)
                    .op(Opcode::I32And)
                    .br_table(&[0, 1], 1)
                    .end()
                    .local_get(2)
                    .i32_const(7)
                    .op(Opcode::I32Add)
                    .br(1)
                    .end()
                    .local_get(2)
                    .i32_const(11)
                    .op(Opcode::I32Xor)
                    .end();
            }
            Step::Call => {
                c.call(helper);
            }
            Step::Select(k) => {
                c.i32_const(*k).local_get(1).select();
            }
        }
    }
}

fn run(
    config: EngineConfig,
    module: &wasm::Module,
    a: i32,
    b: i32,
) -> Result<WasmValue, TrapCode> {
    common::run_export_checksum(config, module, "f", &[WasmValue::I32(a), WasmValue::I32(b)])
}

/// Like [`build_program`] but the step sequence becomes a *loop body*: the
/// accumulator is carried around a real wasm back edge `iters` times. Every
/// iteration crosses the loop-head meter-check site, so under a forced OSR
/// threshold the frame is replaced mid-loop — steps that trap, touch memory,
/// or open their own nested blocks all run partly interpreted (or baseline)
/// and partly in optimizing-tier code.
fn build_looped_program(steps: &[Step], iters: i32) -> wasm::Module {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::at_least(1));
    let helper = add_helper(&mut b);
    // Locals: 2 params, scratch (2) for the steps, counter (3), acc (4).
    let mut c = CodeBuilder::new();
    c.i32_const(iters)
        .local_set(3)
        .local_get(0)
        .local_set(4)
        .block(BlockType::Empty)
        .loop_(BlockType::Empty)
        .local_get(4);
    // Each step is depth-self-contained (it opens and closes its own
    // blocks), so the body nests inside the loop unchanged.
    emit_steps(&mut c, steps, helper);
    c.local_set(4)
        .local_get(3)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .local_tee(3)
        .op(Opcode::I32Eqz)
        .br_if(1)
        .br(0)
        .end()
        .end()
        .local_get(4);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32, ValueType::I32, ValueType::I32],
        c.finish(),
    );
    b.export_func("f", f);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_agree_across_tiers(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        a in any::<i32>(),
        b in any::<i32>(),
    ) {
        let module = build_program(&steps);
        // Validation must accept every generated program.
        wasm::validate::validate(&module).expect("generated program validates");

        let reference = run(EngineConfig::interpreter("int"), &module, a, b);
        for options in [
            CompilerOptions::allopt(),
            CompilerOptions::nok(),
            CompilerOptions::nomr(),
            CompilerOptions::with_tagging(spc::TagStrategy::None, "notags"),
            CompilerOptions::with_tagging(spc::TagStrategy::Eager, "eager"),
        ] {
            let name = options.name.clone();
            let got = run(EngineConfig::baseline(&name, options), &module, a, b);
            prop_assert_eq!(
                &got, &reference,
                "configuration {} disagrees with the interpreter", name
            );
        }
        let opt = run(EngineConfig::optimizing("opt"), &module, a, b);
        prop_assert_eq!(&opt, &reference, "optimizing tier disagrees");
    }

    #[test]
    fn generated_programs_roundtrip_and_agree_across_the_matrix(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        a in any::<i32>(),
        b in any::<i32>(),
    ) {
        let module = build_program(&steps);
        wasm::validate::validate(&module).expect("generated program validates");

        // encode → decode → WAT-print → WAT-parse → re-encode, byte-identical.
        let bytes = wasm::encode::encode(&module);
        let decoded = wasm::decode::decode(&bytes).expect("decodes");
        let text = wasm::wat::print::print_module(&decoded);
        let reparsed = match wasm::wat::parse_module(&text) {
            Ok(m) => m,
            Err(e) => return Err(format!("{}\n{text}", e.describe(&text))),
        };
        prop_assert_eq!(
            &bytes,
            &wasm::encode::encode(&reparsed),
            "WAT round trip must be byte-identical:\n{}",
            text
        );

        // The whole tier×backend matrix agrees, traps included, and the
        // re-parsed module behaves identically to the original.
        let reference = run(EngineConfig::interpreter("int"), &module, a, b);
        for config in common::all_tier_backend_configs() {
            let name = config.name.clone();
            let got = run(config, &reparsed, a, b);
            prop_assert_eq!(&got, &reference, "configuration {} diverges", name);
        }
    }

    #[test]
    fn generated_programs_agree_on_fuel_across_the_matrix(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        a in any::<i32>(),
        b in any::<i32>(),
        budget in 1u64..400,
    ) {
        let module = build_program(&steps);
        wasm::validate::validate(&module).expect("generated program validates");

        // Under a randomized fuel budget every configuration agrees on the
        // complete observable outcome: the result (or trap — out-of-fuel
        // included) AND the exact fuel consumed at that point. Small budgets
        // land mid-program, so this pins the charge sites themselves, not
        // just the totals.
        let args = [WasmValue::I32(a), WasmValue::I32(b)];
        let reference = common::run_export_fueled(
            EngineConfig::interpreter("int"),
            &module,
            "f",
            &args,
            budget,
        );
        if reference.0 == Err(TrapCode::OutOfFuel) {
            prop_assert_eq!(reference.1, budget, "exhaustion consumes the whole budget");
        }
        for config in common::all_tier_backend_configs() {
            let name = config.name.clone();
            let got = common::run_export_fueled(config, &module, "f", &args, budget);
            prop_assert_eq!(
                &got, &reference,
                "configuration {} diverges under a fuel budget of {}", name, budget
            );
        }
    }

    #[test]
    fn generated_programs_compile_identically_on_both_masm_backends(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        a in any::<i32>(),
        b in any::<i32>(),
    ) {
        let module = build_program(&steps);
        let info = wasm::validate::validate(&module).expect("generated program validates");
        let compiler = spc::SinglePassCompiler::new(CompilerOptions::allopt());
        let probes = spc::ProbeSites::none();
        let defined: u32 = 1; // index of `f` in the defined-function space
        let func_index = module.num_imported_funcs() + defined;
        let virt = compiler
            .compile(&module, func_index, &info.funcs[defined as usize], &probes)
            .expect("virtual-ISA backend compiles");
        let x64 = compiler
            .compile_with(
                machine::x64_masm::X64Masm::new(),
                &module,
                func_index,
                &info.funcs[defined as usize],
                &probes,
            )
            .expect("x86-64 backend compiles");

        // Backend-independent structure agrees: macro-op count, labels, and
        // the bytecode offsets recorded in the source map.
        prop_assert_eq!(virt.stats.machine_insts, x64.stats.machine_insts);
        prop_assert_eq!(virt.code.label_targets().len(), x64.code.label_targets().len());
        let v_offsets: Vec<u32> = virt.code.source_map().iter().map(|&(_, o)| o).collect();
        let x_offsets: Vec<u32> = x64.code.source_map().iter().map(|&(_, o)| o).collect();
        prop_assert_eq!(v_offsets, x_offsets);
        prop_assert!(x64.code.code_size() > 0);

        // And the virtual-ISA code still executes to the interpreter's
        // checksum.
        let reference = run(EngineConfig::interpreter("int"), &module, a, b);
        let jit = run(EngineConfig::baseline("allopt", CompilerOptions::allopt()), &module, a, b);
        prop_assert_eq!(jit, reference);
    }
}

proptest! {
    // Forcing OSR compiles the optimizing tier for every case×config pair,
    // so this arm runs fewer cases than the plain differential tests.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On-stack replacement must be semantically invisible: generated loop
    /// kernels — whose bodies trap, touch memory, and open nested control —
    /// produce identical results and traps whether the whole run stays in
    /// one tier or the frame is replaced at the first back edge.
    #[test]
    fn generated_hot_loops_agree_under_forced_osr(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        a in any::<i32>(),
        b in any::<i32>(),
        iters in 1i32..24,
    ) {
        let module = build_looped_program(&steps, iters);
        wasm::validate::validate(&module).expect("generated loop validates");
        let reference = run(EngineConfig::interpreter("int"), &module, a, b);
        for config in common::all_tier_backend_configs() {
            let name = config.name.clone();
            let got = run(config.with_osr(0), &module, a, b);
            prop_assert_eq!(
                &got, &reference,
                "configuration {} diverges under forced OSR", name
            );
        }
    }
}

/// Coverage accounting: the generated corpus provably exercises everything
/// [`generator_registry`] declares, and together with the conformance
/// crate's exhaustive module it covers the engine's whole opcode set.
#[test]
fn opcode_coverage_is_complete() {
    use proptest::test_runner::TestRng;

    let mut census = std::collections::BTreeMap::new();
    let mut rng = TestRng::deterministic();
    let strategy = proptest::collection::vec(step_strategy(), 1..40);
    for _ in 0..128 {
        let steps = strategy.generate(&mut rng);
        let module = build_program(&steps);
        for (byte, count) in conform::coverage::opcode_census(&module) {
            *census.entry(byte).or_insert(0u32) += count;
        }
    }

    // The generator emits everything it claims to emit.
    let missing_from_registry: Vec<Opcode> = generator_registry()
        .into_iter()
        .filter(|op| !census.contains_key(&op.to_byte()))
        .collect();
    assert!(
        missing_from_registry.is_empty(),
        "generator registry opcodes never emitted: {missing_from_registry:?}"
    );

    // Together with the exhaustive conformance module, the corpus covers the
    // engine's entire implemented opcode set.
    for (byte, count) in conform::coverage::opcode_census(&conform::coverage::exhaustive_module()) {
        *census.entry(byte).or_insert(0) += count;
    }
    let missing = conform::coverage::missing_opcodes(&census);
    assert!(missing.is_empty(), "opcodes never exercised: {missing:?}");
}

/// The exhaustive module itself satisfies the fuzzer's round-trip and
/// cross-matrix invariants.
#[test]
fn exhaustive_module_satisfies_the_fuzz_invariants() {
    let module = conform::coverage::exhaustive_module();
    wasm::validate::validate(&module).expect("validates");
    let bytes = wasm::encode::encode(&module);
    let decoded = wasm::decode::decode(&bytes).expect("decodes");
    let text = wasm::wat::print::print_module(&decoded);
    let reparsed =
        wasm::wat::parse_module(&text).unwrap_or_else(|e| panic!("{}", e.describe(&text)));
    assert_eq!(bytes, wasm::encode::encode(&reparsed));

    let mut results = Vec::new();
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let r = common::run_export_checksum(config, &reparsed, "main", &[])
            .unwrap_or_else(|e| panic!("[{name}] trap: {e}"));
        results.push((name, r));
    }
    for (name, value) in &results {
        assert_eq!(value, &results[0].1, "{name} diverges");
    }
}
