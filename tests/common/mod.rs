//! Shared helpers for the workspace-level integration tests.
//!
//! Before this module existed, the instantiate-and-call pattern and the fib
//! workload were copy-pasted across `differential.rs`, `lazy_compile.rs`,
//! `pipeline_cache.rs`, and `tiering_and_gc.rs`, and each file hand-rolled
//! its own configuration list. The canonical tier×backend matrix lives in
//! `conform::runner::all_configs` (the conformance corpus runs under exactly
//! the same configurations); this module re-exports it alongside the shared
//! run helpers.

// Integration tests compile this module independently, and each uses a
// different subset of the helpers.
#![allow(dead_code)]

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use machine::inst::TrapCode;
use machine::values::WasmValue;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, ValueType};
use wasm::Module;

/// The canonical tier×backend configuration matrix: interpreter, baseline
/// eager/lazy on the virtual-ISA and x64 backends, the tiered engine, and
/// the three-tier (optimizing-promotion) engine on both backends.
pub fn all_tier_backend_configs() -> Vec<EngineConfig> {
    conform::runner::all_configs()
}

/// Instantiates `module` under `config` (no imports, no instrumentation) and
/// calls the export `name`.
///
/// # Panics
///
/// Panics if instantiation fails — tests pass known-good modules.
pub fn run_export(
    config: EngineConfig,
    module: &Module,
    name: &str,
    args: &[WasmValue],
) -> Result<Vec<WasmValue>, TrapCode> {
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(module, Imports::new(), Instrumentation::none())
        .expect("module instantiates");
    engine.call_export(&mut instance, name, args)
}

/// Like [`run_export`] but returns only the first result, as most benchmark
/// entry points produce a single checksum.
pub fn run_export_checksum(
    config: EngineConfig,
    module: &Module,
    name: &str,
    args: &[WasmValue],
) -> Result<WasmValue, TrapCode> {
    run_export(config, module, name, args).map(|r| r[0])
}

/// Like [`run_export`] but under the metering variant of `config` with a
/// fuel budget armed: returns the call result alongside the fuel consumed
/// (the full budget when the call ran out of fuel — exhaustion clamps
/// remaining fuel to zero, deterministically in every tier).
pub fn run_export_fueled(
    config: EngineConfig,
    module: &Module,
    name: &str,
    args: &[WasmValue],
    fuel: u64,
) -> (Result<Vec<WasmValue>, TrapCode>, u64) {
    let engine = Engine::new(config.with_metering());
    let mut instance = engine
        .instantiate(module, Imports::new(), Instrumentation::none())
        .expect("module instantiates");
    instance.set_fuel(fuel);
    let result = engine.call_export(&mut instance, name, args);
    (result, instance.fuel_consumed().unwrap_or(0))
}

/// fib(n) with recursive calls — the classic tier-up workload shared by the
/// tiering, pipeline, and cache tests.
pub fn fib_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    // if n < 2 return n; else return fib(n-1) + fib(n-2)
    c.local_get(0)
        .i32_const(2)
        .op(Opcode::I32LtS)
        .if_(BlockType::Empty)
        .local_get(0)
        .return_()
        .end()
        .local_get(0)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .call(0)
        .local_get(0)
        .i32_const(2)
        .op(Opcode::I32Sub)
        .call(0)
        .op(Opcode::I32Add);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![],
        c.finish(),
    );
    b.export_func("fib", f);
    b.finish()
}
