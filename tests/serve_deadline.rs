//! Deadline enforcement through the serving harness.
//!
//! A request with a wall-clock budget must come back `Interrupted` — not
//! hang, not get killed externally — and it must do so promptly: within the
//! epoch granularity (plus scheduling slack) of its deadline. The mechanism
//! is cooperative (the engine checks the epoch at loop back-edges and call
//! boundaries), so the test drives it across the tier×backend matrix to
//! prove every code path carries the checks. Requests without deadlines, or
//! with generous ones, must be unaffected.

mod common;

use machine::values::WasmValue;
use serve::{Request, RequestStatus, Server, ServerConfig};
use std::time::Duration;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::types::{BlockType, FuncType, ValueType};
use wasm::Module;

/// `main: [] -> [i32]` loops forever (the runaway tenant).
fn spin_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.loop_(BlockType::Empty).br(0).end().i32_const(0);
    let f = b.add_func(
        FuncType::new(vec![], vec![ValueType::I32]),
        vec![],
        c.finish(),
    );
    b.export_func("main", f);
    b.finish()
}

/// `main: [] -> [i32]` returns immediately (the well-behaved tenant).
fn quick_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.i32_const(11);
    let f = b.add_func(
        FuncType::new(vec![], vec![ValueType::I32]),
        vec![],
        c.finish(),
    );
    b.export_func("main", f);
    b.finish()
}

/// A runaway loop is interrupted within an epoch-granularity bound, in
/// every tier×backend configuration.
#[test]
fn runaway_requests_are_interrupted_within_the_granularity_bound() {
    let granularity = Duration::from_millis(2);
    let deadline = Duration::from_millis(20);
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let mut server = Server::new(
            ServerConfig {
                workers: 1,
                epoch_granularity: granularity,
                ..ServerConfig::default()
            },
            config.with_metering(),
        );
        let spin = server.register_app("spin", "main", spin_module()).unwrap();
        let started = std::time::Instant::now();
        let results = server.run(vec![Request::to_app(spin).with_deadline(deadline)]);
        let elapsed = started.elapsed();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(
            r.status,
            RequestStatus::Trapped(engine::TrapReason::Interrupted),
            "[{name}] a runaway request must be preempted"
        );
        assert!(r.deadline_expired, "[{name}] the timeout list saw it expire");
        // The overshoot is measured in whole epochs past the deadline and
        // bounded by the enforcement mechanism itself: the engine traps at
        // the first check site after the deadline epoch, so the request
        // retires within one granularity of its deadline plus scheduling
        // slack — never "whenever the loop felt like stopping".
        let overshoot = r
            .deadline_overshoot_epochs
            .unwrap_or_else(|| panic!("[{name}] an interrupted request must record its overshoot"));
        let slack_epochs = (Duration::from_millis(500).as_nanos()
            / granularity.as_nanos().max(1)) as u64;
        assert!(
            overshoot <= 1 + slack_epochs,
            "[{name}] retired {overshoot} epochs past its deadline"
        );
        // Lower bound: the interrupt cannot fire before the armed number of
        // ticks has elapsed... minus one granularity, because the first tick
        // may already be partially spent when the deadline is armed.
        assert!(
            r.service_wall + granularity >= deadline,
            "[{name}] interrupted after {:?}, before the {deadline:?} budget",
            r.service_wall
        );
        // Upper bound: enforcement is granular, not instant — one tick past
        // the deadline plus generous scheduling slack for a loaded CI host.
        // The point is "tens of milliseconds", not "whenever the batch
        // happens to end".
        let slack = Duration::from_millis(500);
        assert!(
            elapsed < deadline + granularity + slack,
            "[{name}] interrupt took {elapsed:?}, way past deadline {deadline:?}"
        );
        assert_eq!(server.timeouts().expired_count(), 1, "[{name}]");
        assert_eq!(server.timeouts().pending(), 0, "[{name}]");
    }
}

/// Deadlines are per-request isolation, not collective punishment: in a
/// mixed batch the runaway request is interrupted while well-behaved
/// requests (with and without deadlines) complete normally — and the
/// interrupted request's recycled instance serves later requests fine.
#[test]
fn mixed_batches_only_interrupt_the_runaway() {
    let mut server = Server::new(
        ServerConfig {
            workers: 2,
            epoch_granularity: Duration::from_millis(2),
            ..ServerConfig::default()
        },
        engine::EngineConfig::baseline("spc", spc::CompilerOptions::allopt()).with_metering(),
    );
    let spin = server.register_app("spin", "main", spin_module()).unwrap();
    let quick = server.register_app("quick", "main", quick_module()).unwrap();
    let requests = vec![
        Request::to_app(quick).with_deadline(Duration::from_secs(60)),
        Request::to_app(spin).with_deadline(Duration::from_millis(15)),
        Request::to_app(quick),
        // Reuses the instance the interrupted spin checked back in (same
        // app pool), proving an interrupt does not poison the pool.
        Request::to_app(spin).with_deadline(Duration::from_millis(15)),
        Request::to_app(quick).with_deadline(Duration::from_secs(60)),
    ];
    let results = server.run(requests);
    assert_eq!(results.len(), 5);
    for (i, expect_ok) in [(0usize, true), (1, false), (2, true), (3, false), (4, true)] {
        let r = &results[i];
        if expect_ok {
            assert_eq!(
                r.status,
                RequestStatus::Ok(vec![WasmValue::I32(11)]),
                "request {i}"
            );
            assert!(!r.deadline_expired, "request {i}");
            assert_eq!(r.deadline_overshoot_epochs, None, "request {i}");
        } else {
            assert_eq!(
                r.status,
                RequestStatus::Trapped(engine::TrapReason::Interrupted),
                "request {i}"
            );
            assert!(r.deadline_expired, "request {i}");
            assert!(r.deadline_overshoot_epochs.is_some(), "request {i}");
        }
    }
    assert_eq!(server.timeouts().expired_count(), 2);
    assert_eq!(server.timeouts().in_time_count(), 2, "undeadlined requests are untracked");
}

/// Every retired request lands in the flight recorder as one JSON
/// access-log line: successes with latency and warmth, fuel-starved
/// requests with their consumption, interrupted requests with their
/// deadline overshoot, and traps with the symbolicated backtrace. The ring
/// is bounded, and the `serve.deadline_overshoot` histogram records every
/// expiry.
#[test]
fn the_flight_recorder_captures_structured_access_log_lines() {
    let telemetry = telemetry::Telemetry::enabled();
    let mut server = Server::new(
        ServerConfig {
            workers: 1,
            epoch_granularity: Duration::from_millis(2),
            telemetry: telemetry.clone(),
            flight_recorder_capacity: 3,
            ..ServerConfig::default()
        },
        engine::EngineConfig::baseline("spc", spc::CompilerOptions::allopt()).with_metering(),
    );
    let boom_text = r#"
        (module $app
          (func $inner (result i32)
            i32.const 1
            i32.const 0
            i32.div_s)
          (func $boom (export "main") (result i32)
            call $inner))
    "#;
    let boom = wasm::wat::parse_module(boom_text).expect("boom module parses");
    let quick = server.register_app("quick", "main", quick_module()).unwrap();
    let spin = server.register_app("spin", "main", spin_module()).unwrap();
    let boom = server.register_app("boom", "main", boom).unwrap();
    let results = server.run(vec![
        Request::to_app(quick),
        Request::to_app(quick),
        Request::to_app(boom),
        Request::to_app(spin).with_fuel(1_000),
        Request::to_app(spin).with_deadline(Duration::from_millis(10)),
    ]);
    assert_eq!(results.len(), 5);

    // The trapped request's result carries the symbolicated diagnostics.
    let trap = results[2].trap.as_ref().expect("trap diagnostics captured");
    assert_eq!(trap.reason, engine::TrapReason::DivisionByZero);
    let names: Vec<Option<&str>> = trap
        .backtrace
        .frames()
        .iter()
        .map(|f| f.name.as_deref())
        .collect();
    assert_eq!(names, [Some("inner"), Some("boom")]);

    // The ring retained only the 3 most recent of the 5 lines.
    let recorder = server.flight_recorder();
    assert_eq!(recorder.recorded(), 5);
    assert_eq!(recorder.len(), 3);
    let dump = recorder.dump();
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(lines.len(), 3);
    // Line 0: the div-by-zero trap, backtrace symbolicated from the name
    // section, app resolved to its registered name.
    assert!(lines[0].contains("\"request\":2,\"app\":2,\"app_name\":\"boom\""), "{}", lines[0]);
    assert!(lines[0].contains("\"status\":\"trap\""), "{}", lines[0]);
    assert!(
        lines[0].contains("\"reason\":\"integer divide by zero\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("\"name\":\"inner\""), "{}", lines[0]);
    // Line 1: fuel exhaustion with the exact consumption.
    assert!(lines[1].contains("\"request\":3"), "{}", lines[1]);
    assert!(lines[1].contains("\"reason\":\"all fuel consumed\""), "{}", lines[1]);
    assert!(lines[1].contains("\"fuel_consumed\":1000"), "{}", lines[1]);
    // Line 2: the interrupted request records a concrete overshoot.
    assert!(lines[2].contains("\"request\":4"), "{}", lines[2]);
    assert!(lines[2].contains("\"reason\":\"interrupt\""), "{}", lines[2]);
    assert!(lines[2].contains("\"deadline_expired\":true"), "{}", lines[2]);
    assert!(
        !lines[2].contains("\"deadline_overshoot_epochs\":null"),
        "{}",
        lines[2]
    );

    // The overshoot histogram saw exactly the one expired deadline.
    let snapshot = telemetry.metrics().expect("metrics registry").snapshot();
    let overshoot = snapshot
        .histograms
        .iter()
        .find(|(name, _)| name.as_str() == "serve.deadline_overshoot")
        .map(|(_, h)| h.clone())
        .expect("serve.deadline_overshoot histogram recorded");
    assert_eq!(overshoot.count, 1);
}

/// Fuel budgets ride the same request path: a starved request traps
/// `OutOfFuel` deterministically (same consumption in every tier), and the
/// pool hands the next request a freshly-armed-free instance.
#[test]
fn fuel_budgets_bind_per_request_across_the_matrix() {
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let mut server = Server::new(
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
            config.with_metering(),
        );
        let spin = server.register_app("spin", "main", spin_module()).unwrap();
        let results = server.run(vec![
            Request::to_app(spin).with_fuel(1_000),
            Request::to_app(spin).with_fuel(1_000),
        ]);
        for r in &results {
            assert_eq!(
                r.status,
                RequestStatus::Trapped(engine::TrapReason::OutOfFuel),
                "[{name}] request {}",
                r.request_id
            );
            assert_eq!(
                r.fuel_consumed,
                Some(1_000),
                "[{name}] exhaustion consumes exactly the budget"
            );
            assert!(!r.deadline_expired, "[{name}] no deadline was armed");
        }
    }
}
