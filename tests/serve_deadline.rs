//! Deadline enforcement through the serving harness.
//!
//! A request with a wall-clock budget must come back `Interrupted` — not
//! hang, not get killed externally — and it must do so promptly: within the
//! epoch granularity (plus scheduling slack) of its deadline. The mechanism
//! is cooperative (the engine checks the epoch at loop back-edges and call
//! boundaries), so the test drives it across the tier×backend matrix to
//! prove every code path carries the checks. Requests without deadlines, or
//! with generous ones, must be unaffected.

mod common;

use machine::values::WasmValue;
use serve::{Request, RequestStatus, Server, ServerConfig};
use std::time::Duration;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::types::{BlockType, FuncType, ValueType};
use wasm::Module;

/// `main: [] -> [i32]` loops forever (the runaway tenant).
fn spin_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.loop_(BlockType::Empty).br(0).end().i32_const(0);
    let f = b.add_func(
        FuncType::new(vec![], vec![ValueType::I32]),
        vec![],
        c.finish(),
    );
    b.export_func("main", f);
    b.finish()
}

/// `main: [] -> [i32]` returns immediately (the well-behaved tenant).
fn quick_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.i32_const(11);
    let f = b.add_func(
        FuncType::new(vec![], vec![ValueType::I32]),
        vec![],
        c.finish(),
    );
    b.export_func("main", f);
    b.finish()
}

/// A runaway loop is interrupted within an epoch-granularity bound, in
/// every tier×backend configuration.
#[test]
fn runaway_requests_are_interrupted_within_the_granularity_bound() {
    let granularity = Duration::from_millis(2);
    let deadline = Duration::from_millis(20);
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let mut server = Server::new(
            ServerConfig {
                workers: 1,
                epoch_granularity: granularity,
                ..ServerConfig::default()
            },
            config.with_metering(),
        );
        let spin = server.register_app("spin", "main", spin_module()).unwrap();
        let started = std::time::Instant::now();
        let results = server.run(vec![Request::to_app(spin).with_deadline(deadline)]);
        let elapsed = started.elapsed();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(
            r.status,
            RequestStatus::Trapped(engine::TrapReason::Interrupted),
            "[{name}] a runaway request must be preempted"
        );
        assert!(r.deadline_expired, "[{name}] the timeout list saw it expire");
        // Lower bound: the interrupt cannot fire before the armed number of
        // ticks has elapsed... minus one granularity, because the first tick
        // may already be partially spent when the deadline is armed.
        assert!(
            r.service_wall + granularity >= deadline,
            "[{name}] interrupted after {:?}, before the {deadline:?} budget",
            r.service_wall
        );
        // Upper bound: enforcement is granular, not instant — one tick past
        // the deadline plus generous scheduling slack for a loaded CI host.
        // The point is "tens of milliseconds", not "whenever the batch
        // happens to end".
        let slack = Duration::from_millis(500);
        assert!(
            elapsed < deadline + granularity + slack,
            "[{name}] interrupt took {elapsed:?}, way past deadline {deadline:?}"
        );
        assert_eq!(server.timeouts().expired_count(), 1, "[{name}]");
        assert_eq!(server.timeouts().pending(), 0, "[{name}]");
    }
}

/// Deadlines are per-request isolation, not collective punishment: in a
/// mixed batch the runaway request is interrupted while well-behaved
/// requests (with and without deadlines) complete normally — and the
/// interrupted request's recycled instance serves later requests fine.
#[test]
fn mixed_batches_only_interrupt_the_runaway() {
    let mut server = Server::new(
        ServerConfig {
            workers: 2,
            epoch_granularity: Duration::from_millis(2),
            ..ServerConfig::default()
        },
        engine::EngineConfig::baseline("spc", spc::CompilerOptions::allopt()).with_metering(),
    );
    let spin = server.register_app("spin", "main", spin_module()).unwrap();
    let quick = server.register_app("quick", "main", quick_module()).unwrap();
    let requests = vec![
        Request::to_app(quick).with_deadline(Duration::from_secs(60)),
        Request::to_app(spin).with_deadline(Duration::from_millis(15)),
        Request::to_app(quick),
        // Reuses the instance the interrupted spin checked back in (same
        // app pool), proving an interrupt does not poison the pool.
        Request::to_app(spin).with_deadline(Duration::from_millis(15)),
        Request::to_app(quick).with_deadline(Duration::from_secs(60)),
    ];
    let results = server.run(requests);
    assert_eq!(results.len(), 5);
    for (i, expect_ok) in [(0usize, true), (1, false), (2, true), (3, false), (4, true)] {
        let r = &results[i];
        if expect_ok {
            assert_eq!(
                r.status,
                RequestStatus::Ok(vec![WasmValue::I32(11)]),
                "request {i}"
            );
            assert!(!r.deadline_expired, "request {i}");
        } else {
            assert_eq!(
                r.status,
                RequestStatus::Trapped(engine::TrapReason::Interrupted),
                "request {i}"
            );
            assert!(r.deadline_expired, "request {i}");
        }
    }
    assert_eq!(server.timeouts().expired_count(), 2);
    assert_eq!(server.timeouts().in_time_count(), 2, "undeadlined requests are untracked");
}

/// Fuel budgets ride the same request path: a starved request traps
/// `OutOfFuel` deterministically (same consumption in every tier), and the
/// pool hands the next request a freshly-armed-free instance.
#[test]
fn fuel_budgets_bind_per_request_across_the_matrix() {
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let mut server = Server::new(
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
            config.with_metering(),
        );
        let spin = server.register_app("spin", "main", spin_module()).unwrap();
        let results = server.run(vec![
            Request::to_app(spin).with_fuel(1_000),
            Request::to_app(spin).with_fuel(1_000),
        ]);
        for r in &results {
            assert_eq!(
                r.status,
                RequestStatus::Trapped(engine::TrapReason::OutOfFuel),
                "[{name}] request {}",
                r.request_id
            );
            assert_eq!(
                r.fuel_consumed,
                Some(1_000),
                "[{name}] exhaustion consumes exactly the budget"
            );
            assert!(!r.deadline_expired, "[{name}] no deadline was armed");
        }
    }
}
