//! Differential testing across execution tiers.
//!
//! Every benchmark line item is executed by the in-place interpreter, by the
//! baseline compiler in its optimization and tagging configurations, by the
//! six production design profiles, by the optimizing tier, and by the tiered
//! configuration. All of them must produce exactly the same checksum — the
//! strongest end-to-end statement that the compilers are semantics-preserving.

mod common;

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use machine::values::WasmValue;
use spc::CompilerOptions;
use suites::{all_suites, BenchmarkItem, Scale};

fn run_item(config: EngineConfig, item: &BenchmarkItem) -> Result<WasmValue, String> {
    common::run_export_checksum(config, &item.module, BenchmarkItem::ENTRY, &[])
        .map_err(|e| format!("{}/{}: trap: {e}", item.suite, item.name))
}

fn reference_results() -> Vec<(String, WasmValue)> {
    let mut out = Vec::new();
    for suite in all_suites(Scale::Test) {
        for item in &suite.items {
            let value = run_item(EngineConfig::interpreter("wizeng-int"), item)
                .unwrap_or_else(|e| panic!("{e}"));
            out.push((format!("{}/{}", item.suite, item.name), value));
        }
    }
    out
}

fn check_config_against_interpreter(config_name: &str, make: impl Fn() -> EngineConfig) {
    let reference = reference_results();
    let mut index = 0;
    for suite in all_suites(Scale::Test) {
        for item in &suite.items {
            let expected = &reference[index];
            index += 1;
            let got = run_item(make(), item).unwrap_or_else(|e| panic!("[{config_name}] {e}"));
            assert_eq!(
                &got, &expected.1,
                "[{config_name}] {} disagrees with the interpreter",
                expected.0
            );
        }
    }
}

#[test]
fn baseline_allopt_matches_interpreter_on_all_78_items() {
    check_config_against_interpreter("allopt", || {
        EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt())
    });
}

#[test]
fn baseline_optimization_ablations_match_interpreter() {
    for options in CompilerOptions::figure4_configs() {
        let name = options.name.clone();
        check_config_against_interpreter(&name, || {
            EngineConfig::baseline(&options.name, options.clone())
        });
    }
}

#[test]
fn value_tag_configurations_match_interpreter() {
    for options in CompilerOptions::figure5_configs() {
        let name = options.name.clone();
        check_config_against_interpreter(&name, || {
            EngineConfig::baseline(&options.name, options.clone())
        });
    }
}

#[test]
fn production_design_profiles_match_interpreter() {
    for profile in spc::all_profiles() {
        let name = profile.name;
        check_config_against_interpreter(name, || {
            EngineConfig::baseline(profile.name, profile.options.clone())
        });
    }
}

#[test]
fn optimizing_tier_matches_interpreter() {
    check_config_against_interpreter("optimizing", || EngineConfig::optimizing("optimizing"));
}

#[test]
fn tiered_engine_matches_interpreter() {
    check_config_against_interpreter("tiered", || {
        EngineConfig::tiered("tiered", 1, CompilerOptions::allopt())
    });
}

#[test]
fn tier_backend_matrix_agrees_on_all_suite_items() {
    // The same matrix the conformance corpus runs under: interpreter,
    // eager/lazy baseline on both masm backends, and the tiered engine.
    let reference = reference_results();
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let mut index = 0;
        for suite in all_suites(Scale::Test) {
            for item in &suite.items {
                let expected = &reference[index];
                index += 1;
                let got =
                    run_item(config.clone(), item).unwrap_or_else(|e| panic!("[{name}] {e}"));
                assert_eq!(
                    &got, &expected.1,
                    "[{name}] {} disagrees with the interpreter",
                    expected.0
                );
            }
        }
    }
}

#[test]
fn lazy_compilation_matches_eager() {
    let suites = all_suites(Scale::Test);
    let item = &suites[0].items[0];
    let eager = run_item(
        EngineConfig::baseline("eager", CompilerOptions::allopt()),
        item,
    )
    .unwrap();
    let lazy = run_item(
        EngineConfig::baseline("lazy", CompilerOptions::allopt()).with_lazy_compile(true),
        item,
    )
    .unwrap();
    assert_eq!(eager, lazy);
}

#[test]
fn execution_cycles_show_the_expected_tier_ordering() {
    // The interpreter must execute many more cycles than baseline-compiled
    // code, which in turn should not beat the optimizing tier. Checked on a
    // compute-heavy item so the ordering is unambiguous.
    let suites = all_suites(Scale::Test);
    let item = suites[1]
        .items
        .iter()
        .find(|i| i.name == "chacha20")
        .expect("chacha20 exists");

    let cycles_for = |config: EngineConfig| {
        let engine = Engine::new(config);
        let mut instance = engine
            .instantiate(&item.module, Imports::new(), Instrumentation::none())
            .unwrap();
        engine
            .call_export(&mut instance, BenchmarkItem::ENTRY, &[])
            .unwrap();
        instance.metrics.exec_cycles
    };

    let interp = cycles_for(EngineConfig::interpreter("wizeng-int"));
    let baseline = cycles_for(EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt()));
    let optimizing = cycles_for(EngineConfig::optimizing("optimizing"));
    assert!(
        interp > baseline * 3,
        "interpreter ({interp}) should be much slower than baseline ({baseline})"
    );
    assert!(
        optimizing <= baseline,
        "optimizing tier ({optimizing}) should not be slower than baseline ({baseline})"
    );
}
