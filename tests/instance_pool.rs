//! Pool-reset differential: a recycled instance is indistinguishable from a
//! cold one.
//!
//! The snapshot-instantiation contract is that `InstancePool::checkout`'s
//! warm path (memcpy-reset to the captured image) produces *exactly* the
//! state a cold instantiation would — results bit-identical, trap reasons
//! identical — across the full tier×backend conformance matrix. The nastiest
//! case is deliberate: a request that runs out of fuel halfway through a
//! loop of memory writes checks a dirty, trapped instance back in, and the
//! next occupant must still observe pristine state.

mod common;

use engine::{Engine, Imports, InstancePool, Instrumentation, TrapReason};
use machine::inst::TrapCode;
use machine::values::WasmValue;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::module::ConstExpr;
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, GlobalType, Limits, ValueType};
use wasm::Module;

/// A module whose observable behavior depends on every kind of instance
/// state a reset must restore:
///
/// * `main: [] -> [i32]` folds the first 32 bytes of memory into a checksum
///   while *overwriting* them, mixes in a mutable global (also updated), and
///   routes the final add through `call_indirect` — so a second call on the
///   same instance returns a different number, and any state the reset
///   missed shifts the checksum;
/// * `burn: [] -> []` scribbles an increasing counter into memory forever —
///   under a fuel budget it traps `OutOfFuel` mid-write, leaving the
///   instance maximally dirty;
/// * `boom: [] -> []` clobbers memory and hits `unreachable`, for the
///   trap-reason comparison.
fn stateful_module() -> Module {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::bounded(1, 2));
    b.add_data(0, ConstExpr::I32(0), (1u8..=32).collect());
    b.add_global(GlobalType::mutable(ValueType::I32), ConstExpr::I32(7));
    b.add_table(ValueType::FuncRef, Limits::bounded(1, 1));
    let add_ty = b.add_type(FuncType::new(
        vec![ValueType::I32, ValueType::I32],
        vec![ValueType::I32],
    ));
    let add = {
        let mut c = CodeBuilder::new();
        c.local_get(0).local_get(1).op(Opcode::I32Add);
        b.add_func(
            FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        )
    };
    b.add_elem(0, ConstExpr::I32(0), vec![add]);
    let main = {
        // locals: 0 = i, 1 = sum
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .i32_const(32)
            .op(Opcode::I32GeS)
            .br_if(1)
            // sum += mem[i]
            .local_get(1)
            .local_get(0)
            .mem(Opcode::I32Load, 2, 0)
            .op(Opcode::I32Add)
            .local_set(1)
            // mem[i] = sum (dirties what the next call reads)
            .local_get(0)
            .local_get(1)
            .mem(Opcode::I32Store, 2, 0)
            .local_get(0)
            .i32_const(4)
            .op(Opcode::I32Add)
            .local_set(0)
            .br(0)
            .end()
            .end()
            // sum += g0; g0 = sum
            .local_get(1)
            .global_get(0)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(1)
            .global_set(0)
            // return add(sum, 3) through the table
            .local_get(1)
            .i32_const(3)
            .i32_const(0)
            .call_indirect(add_ty, 0);
        b.add_func(
            FuncType::new(vec![], vec![ValueType::I32]),
            vec![ValueType::I32, ValueType::I32],
            c.finish(),
        )
    };
    let burn = {
        let mut c = CodeBuilder::new();
        c.loop_(BlockType::Empty)
            .i32_const(0)
            .local_get(0)
            .mem(Opcode::I32Store, 2, 0)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Add)
            .local_set(0)
            .br(0)
            .end();
        b.add_func(
            FuncType::new(vec![], vec![]),
            vec![ValueType::I32],
            c.finish(),
        )
    };
    let boom = {
        let mut c = CodeBuilder::new();
        c.i32_const(0)
            .i32_const(-1)
            .mem(Opcode::I32Store, 2, 0)
            .unreachable();
        b.add_func(FuncType::new(vec![], vec![]), vec![], c.finish())
    };
    b.export_func("main", main);
    b.export_func("burn", burn);
    b.export_func("boom", boom);
    b.finish()
}

/// The differential itself, per configuration: cold results and trap
/// reasons versus a pooled instance recycled through progressively dirtier
/// checkins, including mid-loop `OutOfFuel` and epoch-deadline
/// `Interrupted` traps.
#[test]
fn pooled_reset_matches_cold_instantiation_in_every_config() {
    let module = stateful_module();
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let config = config.with_metering();

        // Cold references, from throwaway instances.
        let cold_first = common::run_export(config.clone(), &module, "main", &[])
            .unwrap_or_else(|e| panic!("[{name}] cold main trapped: {e}"));
        let cold_engine = Engine::new(config.clone());
        let mut cold = cold_engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("cold instantiation");
        let first = cold_engine.call_export(&mut cold, "main", &[]).unwrap();
        let second = cold_engine.call_export(&mut cold, "main", &[]).unwrap();
        assert_eq!(first, cold_first, "[{name}] cold runs are deterministic");
        assert_ne!(
            first, second,
            "[{name}] the workload must be stateful or this test proves nothing"
        );
        let cold_boom = cold_engine
            .call_export(&mut cold, "boom", &[])
            .expect_err("boom traps");

        let pool = InstancePool::new(Engine::new(config), module.clone(), 4)
            .unwrap_or_else(|e| panic!("[{name}] pool: {e}"));

        // Round 1: recycled construction instance equals cold.
        {
            let mut inst = pool.checkout().unwrap();
            assert!(inst.was_warm(), "[{name}]");
            let got = pool.engine().call_export(&mut inst, "main", &[]).unwrap();
            assert_eq!(got, cold_first, "[{name}] warm result diverges from cold");
            // Dirty it further before checkin.
            pool.engine().call_export(&mut inst, "main", &[]).unwrap();
        }

        // Round 2: previous occupant ran twice; reset still restores.
        {
            let mut inst = pool.checkout().unwrap();
            assert!(inst.was_warm(), "[{name}]");
            let got = pool.engine().call_export(&mut inst, "main", &[]).unwrap();
            assert_eq!(got, cold_first, "[{name}] reset missed dirty state");
            // Check in mid-trap: boom clobbers memory then hits
            // unreachable, and the trap reason must match the cold one.
            let trap = pool
                .engine()
                .call_export(&mut inst, "boom", &[])
                .expect_err("boom traps");
            assert_eq!(trap, cold_boom, "[{name}] trap codes diverge");
            assert_eq!(
                TrapReason::from(trap),
                TrapReason::Unreachable,
                "[{name}]"
            );
        }

        // Round 3: a fuel-starved burn leaves memory mid-scribble.
        {
            let mut inst = pool.checkout().unwrap();
            assert!(inst.was_warm(), "[{name}]");
            inst.set_fuel(500);
            let trap = pool
                .engine()
                .call_export(&mut inst, "burn", &[])
                .expect_err("burn must exhaust its budget");
            assert_eq!(trap, TrapCode::OutOfFuel, "[{name}]");
            assert_eq!(inst.fuel_remaining(), Some(0), "[{name}]");
            // The scribble really happened: mem[0] is no longer 0x04030201.
            let dirty = inst.capture_image();
            assert_ne!(
                dirty.memory().expect("has memory").load(0, 0, 4).unwrap(),
                0x0403_0201,
                "[{name}] burn must dirty memory before trapping"
            );
        }

        // Round 4: after the dirty trapped checkin, still bit-identical to
        // cold — and the fuel arming did not leak into the next occupant.
        {
            let mut inst = pool.checkout().unwrap();
            assert!(inst.was_warm(), "[{name}]");
            assert_eq!(inst.fuel_remaining(), None, "[{name}] fuel arming leaked");
            let got = pool.engine().call_export(&mut inst, "main", &[]).unwrap();
            assert_eq!(
                got, cold_first,
                "[{name}] reset after OutOfFuel diverges from cold"
            );
        }

        // Round 5: an epoch-deadline interrupt also leaves memory
        // mid-scribble — the same dirty-checkin shape as OutOfFuel, but the
        // trap arrives from the shared epoch, not the instance's budget.
        {
            let mut inst = pool.checkout().unwrap();
            assert!(inst.was_warm(), "[{name}]");
            inst.set_epoch_deadline(pool.engine().epoch().load(Ordering::Relaxed) + 1);
            let epoch = Arc::clone(pool.engine().epoch());
            let supervisor = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                epoch.fetch_add(1, Ordering::Relaxed);
            });
            let trap = pool
                .engine()
                .call_export(&mut inst, "burn", &[])
                .expect_err("burn must be preempted");
            supervisor.join().expect("supervisor thread");
            assert_eq!(trap, TrapCode::Interrupted, "[{name}]");
            assert_eq!(TrapReason::from(trap), TrapReason::Interrupted, "[{name}]");
            let dirty = inst.capture_image();
            assert_ne!(
                dirty.memory().expect("has memory").load(0, 0, 4).unwrap(),
                0x0403_0201,
                "[{name}] burn must dirty memory before the interrupt"
            );
        }

        // Round 6: the interrupted, dirty checkin resets bit-identically,
        // and the deadline arming did not leak — the epoch is still past
        // the old deadline, so a leak would re-trap `main` immediately.
        {
            let mut inst = pool.checkout().unwrap();
            assert!(inst.was_warm(), "[{name}]");
            let got = pool
                .engine()
                .call_export(&mut inst, "main", &[])
                .unwrap_or_else(|e| {
                    panic!("[{name}] deadline arming leaked into the next occupant: {e}")
                });
            assert_eq!(
                got, cold_first,
                "[{name}] reset after Interrupted diverges from cold"
            );
        }

        let stats = pool.stats();
        assert_eq!(stats.warm_checkouts, 6, "[{name}]");
        assert_eq!(stats.cold_checkouts, 0, "[{name}]");
    }
}

/// The checkout results themselves agree across the whole matrix: every
/// configuration's pooled instance computes the same checksum.
#[test]
fn pooled_checksums_agree_across_the_matrix() {
    let module = stateful_module();
    let mut reference: Option<Vec<WasmValue>> = None;
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let pool = InstancePool::new(Engine::new(config), module.clone(), 2)
            .unwrap_or_else(|e| panic!("[{name}] pool: {e}"));
        for _ in 0..3 {
            let mut inst = pool.checkout().unwrap();
            let got = pool.engine().call_export(&mut inst, "main", &[]).unwrap();
            match &reference {
                Some(r) => assert_eq!(&got, r, "[{name}] diverges from the matrix"),
                None => reference = Some(got),
            }
        }
    }
}

/// The snapshot image itself is faithful: capture → restore round-trips the
/// exact bytes, and `MemoryImage::build` (used by both instantiation and
/// pooling) equals what instantiation produced.
#[test]
fn capture_image_round_trips_through_reset() {
    let module = stateful_module();
    let engine = Engine::new(engine::EngineConfig::default());
    let mut inst = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("instantiates");
    let pristine = inst.capture_image();
    engine.call_export(&mut inst, "main", &[]).unwrap();
    let dirty = inst.capture_image();
    assert_ne!(
        pristine.memory().unwrap().bytes(),
        dirty.memory().unwrap().bytes(),
        "main dirties memory"
    );
    inst.reset_from_image(&pristine, 0);
    let restored = inst.capture_image();
    assert_eq!(
        pristine.memory().unwrap().bytes(),
        restored.memory().unwrap().bytes()
    );
    assert_eq!(pristine.globals().len(), restored.globals().len());
    for (a, b) in pristine.globals().iter().zip(restored.globals()) {
        assert_eq!(a.value(), b.value());
    }
    assert!(inst.metrics.cache_hit, "a reset counts as a warm path");
}
