//! Differential testing of the two `Masm` backends.
//!
//! The single-pass compiler emits exclusively through the macro-assembler
//! trait, so the virtual-ISA backend (executed by the simulator) and the
//! x86-64 backend (real machine bytes) must agree on everything
//! backend-independent: the number of macro operations, the label
//! structure, the bytecode offsets in the source map, and the call/probe
//! metadata. This is the test that promotes the x86-64 encoder from demo to
//! backend: it must compile every function of all three synthetic suites
//! without panicking.

use engine::{CodeBackend, Engine, EngineConfig, Imports, Instrumentation};
use machine::x64_masm::X64Masm;
use machine::values::WasmValue;
use spc::{CompilerOptions, ProbeKind, ProbeMode, ProbeSite, ProbeSites, SinglePassCompiler};
use suites::{all_suites, BenchmarkItem, Scale};
use wasm::validate::validate;
use wasm::Module;

/// Compiles every defined function of `module` with both backends and
/// cross-checks the backend-independent structure. Returns the number of
/// functions compared.
fn compare_backends(module: &Module, probes: &ProbeSites, options: CompilerOptions) -> usize {
    let info = validate(module).expect("module validates");
    let compiler = SinglePassCompiler::new(options);
    let mut compared = 0;
    for defined in 0..module.funcs.len() as u32 {
        let func_index = module.defined_to_func_index(defined);
        let finfo = &info.funcs[defined as usize];
        let virt = compiler
            .compile(module, func_index, finfo, probes)
            .expect("virtual-ISA backend compiles");
        let x64 = compiler
            .compile_with(X64Masm::new(), module, func_index, finfo, probes)
            .expect("x86-64 backend compiles");

        // The same translation drove both backends: macro-operation counts
        // and frame layout are identical.
        assert_eq!(virt.stats.machine_insts, x64.stats.machine_insts);
        assert_eq!(virt.frame_slots, x64.frame_slots);
        assert_eq!(virt.num_locals, x64.num_locals);

        // Label structure: same labels, bound in the same order.
        let vt = virt.code.label_targets();
        let xt = x64.code.label_targets();
        assert_eq!(vt.len(), xt.len(), "label counts match");
        for i in 0..vt.len() {
            assert!(
                xt[i] <= x64.code.code_size(),
                "x64 label L{i} must land inside the code"
            );
            for j in 0..vt.len() {
                assert_eq!(
                    vt[i] <= vt[j],
                    xt[i] <= xt[j],
                    "labels L{i}/L{j} must be ordered identically in both backends"
                );
            }
        }

        // Source maps record the same bytecode-offset sequence (anchored at
        // different code positions: instruction indices vs byte offsets).
        let v_offsets: Vec<u32> = virt.code.source_map().iter().map(|&(_, o)| o).collect();
        let x_offsets: Vec<u32> = x64.code.source_map().iter().map(|&(_, o)| o).collect();
        assert_eq!(v_offsets, x_offsets, "source maps agree on bytecode offsets");

        // Call and probe metadata: same sites with the same payloads.
        let mut v_calls: Vec<u32> =
            virt.call_sites.values().map(|c| c.callee_slot_base).collect();
        let mut x_calls: Vec<u32> =
            x64.call_sites.values().map(|c| c.callee_slot_base).collect();
        v_calls.sort_unstable();
        x_calls.sort_unstable();
        assert_eq!(v_calls, x_calls, "call-site metadata agrees");
        let mut v_probes: Vec<(u32, u32)> = virt
            .probe_sites
            .values()
            .map(|p| (p.offset, p.operand_height))
            .collect();
        let mut x_probes: Vec<(u32, u32)> = x64
            .probe_sites
            .values()
            .map(|p| (p.offset, p.operand_height))
            .collect();
        v_probes.sort_unstable();
        x_probes.sort_unstable();
        assert_eq!(v_probes, x_probes, "probe-site metadata agrees");
        assert_eq!(virt.stackmaps.len(), x64.stackmaps.len());

        // The x86-64 backend produced real bytes and kept its metadata keys
        // (byte offsets) inside them.
        if !virt.code.is_empty() {
            assert!(x64.code.code_size() > 0, "non-empty code on both backends");
        }
        for &site in x64.call_sites.keys().chain(x64.probe_sites.keys()) {
            assert!(site < x64.code.code_size(), "site index inside the code");
        }
        compared += 1;
    }
    compared
}

#[test]
fn x64_backend_compiles_all_three_suites() {
    let mut functions = 0;
    for suite in all_suites(Scale::Test) {
        for item in &suite.items {
            functions += compare_backends(
                &item.module,
                &ProbeSites::none(),
                CompilerOptions::allopt(),
            );
        }
    }
    assert!(functions >= 78, "every line item has at least its entry function");
}

#[test]
fn backends_agree_under_probes_and_tag_strategies() {
    // A small function with known instruction offsets, probed at three
    // sites with three probe kinds — exercising the probe expansions, tag
    // stores, and immediate forms of both backends.
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::opcode::Opcode;
    use wasm::types::{FuncType, ValueType};
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    // Offsets: 0 = local.get, 2 = i32.const, 4 = i32.add, 5 = local.tee, ...
    c.local_get(0)
        .i32_const(5)
        .op(Opcode::I32Add)
        .local_tee(0)
        .drop_()
        .local_get(0);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![],
        c.finish(),
    );
    b.export_func("f", f);
    let module = b.finish();

    let mut probes = ProbeSites::none();
    probes.insert(0, ProbeSite { probe_id: 0, kind: ProbeKind::Generic });
    probes.insert(2, ProbeSite { probe_id: 1, kind: ProbeKind::Counter { counter_id: 1 } });
    probes.insert(4, ProbeSite { probe_id: 2, kind: ProbeKind::TopOfStack });
    for options in [
        CompilerOptions::allopt(),
        CompilerOptions {
            probe_mode: ProbeMode::Runtime,
            ..CompilerOptions::allopt()
        },
        CompilerOptions::with_tagging(spc::TagStrategy::Eager, "eager"),
        CompilerOptions::with_tagging(spc::TagStrategy::Stackmaps, "maps"),
        CompilerOptions::nok(),
    ] {
        let compared = compare_backends(&module, &probes, options);
        assert_eq!(compared, 1);
    }
}

#[test]
fn x64_backend_selection_preserves_execution_checksums() {
    // Selecting the x86-64 backend changes what the code-size metrics
    // measure, never what executes: checksums must match the interpreter.
    let run = |config: EngineConfig, item: &BenchmarkItem| -> WasmValue {
        let engine = Engine::new(config);
        let mut instance = engine
            .instantiate(&item.module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        engine
            .call_export(&mut instance, BenchmarkItem::ENTRY, &[])
            .expect("runs")[0]
    };
    for item in &suites::ostrich::suite(Scale::Test).items {
        let reference = run(EngineConfig::interpreter("int"), item);
        let x64_backend = run(
            EngineConfig::baseline("spc-x64", CompilerOptions::allopt())
                .with_backend(CodeBackend::X64),
            item,
        );
        assert_eq!(
            x64_backend, reference,
            "{}: x64-backend config must execute identically",
            item.name
        );
    }
}

#[test]
fn x64_backend_reports_larger_real_code_sizes() {
    // Real encodings are strictly positive and differ from the virtual
    // ISA's estimates, which is the point of per-backend size reporting.
    let item = &suites::libsodium::suite(Scale::Test).items[0];
    let measure = |backend: CodeBackend| -> u64 {
        let engine = Engine::new(
            EngineConfig::baseline("spc", CompilerOptions::allopt()).with_backend(backend),
        );
        let instance = engine
            .instantiate(&item.module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        instance.metrics.compiled_machine_bytes
    };
    let virtual_bytes = measure(CodeBackend::VirtualIsa);
    let x64_bytes = measure(CodeBackend::X64);
    assert!(virtual_bytes > 0);
    assert!(x64_bytes > 0);
    assert_ne!(
        virtual_bytes, x64_bytes,
        "real encodings are measured, not the estimate"
    );
}
