//! End-to-end tests for the compilation-pipeline subsystem: the keyed code
//! cache (shared compiled modules across instantiations), multi-worker
//! eager compilation through the engine, background tier-up, and the
//! `EngineConfig`-plumbed GC heap threshold.

mod common;

use common::fib_module;
use engine::{
    BackgroundCompiler, CodeCache, Engine, EngineConfig, Imports, Instrumentation,
};
use machine::values::WasmValue;
use spc::{CompilerOptions, TagStrategy};
use std::sync::Arc;
use std::time::Duration;
use suites::Scale;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::types::{FuncType, ValueType};
use wasm::Module;

#[test]
fn warm_instantiation_compiles_exactly_once_and_shares_the_artifact() {
    let module = fib_module();
    let cache = Arc::new(CodeCache::new());
    let engine = Engine::new(EngineConfig::baseline("cached", CompilerOptions::allopt()))
        .with_code_cache(Arc::clone(&cache));

    // Cold: miss, full compile.
    let mut cold = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    assert!(!cold.metrics.cache_hit);
    assert_eq!(cold.metrics.functions_compiled, 1);
    assert!(cold.metrics.compile_wall > Duration::ZERO);
    assert_eq!((cache.hits(), cache.misses()), (0, 1));

    // Warm: hit, zero compiles, the very same artifact.
    let mut warm = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    assert!(warm.metrics.cache_hit);
    assert_eq!(
        warm.metrics.functions_compiled, 0,
        "the same module under the same config compiles exactly once"
    );
    assert_eq!(warm.metrics.total_compile_wall(), Duration::ZERO);
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert_eq!(cache.len(), 1);
    assert!(
        Arc::ptr_eq(cold.artifact(), warm.artifact()),
        "both instances execute one shared copy of the compiled code"
    );

    // Both instances run, independently and correctly.
    let a = engine.call_export(&mut cold, "fib", &[WasmValue::I32(12)]).unwrap();
    let b = engine.call_export(&mut warm, "fib", &[WasmValue::I32(12)]).unwrap();
    assert_eq!(a, vec![WasmValue::I32(144)]);
    assert_eq!(a, b);
}

#[test]
fn cache_distinguishes_configurations_and_instrumentation() {
    let module = fib_module();
    let cache = Arc::new(CodeCache::new());
    let allopt = Engine::new(EngineConfig::baseline("a", CompilerOptions::allopt()))
        .with_code_cache(Arc::clone(&cache));
    let notags = Engine::new(EngineConfig::baseline(
        "b",
        CompilerOptions::with_tagging(TagStrategy::None, "notags"),
    ))
    .with_code_cache(Arc::clone(&cache));

    allopt
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    let i2 = notags
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    assert!(!i2.metrics.cache_hit, "different options fingerprint differently");
    assert_eq!(cache.len(), 2);

    // Instrumentation is baked into code, so probed instantiations get
    // their own entry…
    let probed = allopt
        .instantiate(&module, Imports::new(), Instrumentation::branch_monitor(&module))
        .unwrap();
    assert!(!probed.metrics.cache_hit);
    assert_eq!(cache.len(), 3);
    // …and an identically-probed one shares it.
    let probed_again = allopt
        .instantiate(&module, Imports::new(), Instrumentation::branch_monitor(&module))
        .unwrap();
    assert!(probed_again.metrics.cache_hit);
}

/// Baseline-only and opt-enabled configurations must never share a cached
/// artifact: the optimizing tier's code slots are part of the artifact, so
/// aliasing them would hand optimizing-tier code to an engine that never
/// asked for it (and vice versa).
#[test]
fn cache_keys_separate_baseline_and_opt_artifacts() {
    let module = fib_module();
    let cache = Arc::new(CodeCache::new());
    let tiered = EngineConfig::tiered("t", 2, CompilerOptions::allopt());
    let with_opt = tiered.clone().with_opt_tier(4);
    let plain_engine = Engine::new(tiered).with_code_cache(Arc::clone(&cache));
    let opt_engine = Engine::new(with_opt.clone()).with_code_cache(Arc::clone(&cache));

    let mut plain = plain_engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    let mut opt = opt_engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    assert!(!opt.metrics.cache_hit, "the opt axis is part of the key");
    assert_eq!(cache.len(), 2, "two distinct artifacts");
    assert!(
        !Arc::ptr_eq(plain.artifact(), opt.artifact()),
        "baseline and opt artifacts never alias"
    );

    // Drive both engines past every threshold; only the opt engine's
    // artifact may ever hold optimizing-tier code.
    for _ in 0..8 {
        let a = plain_engine.call_export(&mut plain, "fib", &[WasmValue::I32(10)]).unwrap();
        let b = opt_engine.call_export(&mut opt, "fib", &[WasmValue::I32(10)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, vec![WasmValue::I32(55)]);
    }
    assert_eq!(plain.artifact().opt_compiled_count(), 0);
    assert_eq!(opt.artifact().opt_compiled_count(), 1);

    // A second opt-enabled engine over the same cache shares the opt
    // artifact (including the already-promoted code).
    let warm = Engine::new(with_opt)
        .with_code_cache(Arc::clone(&cache))
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    assert!(warm.metrics.cache_hit);
    assert!(Arc::ptr_eq(warm.artifact(), opt.artifact()));
    assert_eq!(cache.len(), 2);
}

/// The optimizing tier promotes through the background pool exactly like the
/// baseline tier: the engine enqueues and keeps running in the best
/// published tier; the promotion lands atomically and a later call picks it
/// up.
#[test]
fn background_promotion_to_the_opt_tier_publishes_atomically() {
    let module = fib_module();
    let pool = Arc::new(BackgroundCompiler::new(2));
    let config = EngineConfig::tiered("bg-opt", 1, CompilerOptions::allopt()).with_opt_tier(3);
    let engine = Engine::new(config).with_background_compiler(Arc::clone(&pool));
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();

    // Cross both thresholds, waiting for the pool between calls so each
    // promotion is observable at the next call boundary.
    for n in 0..8 {
        let r = engine.call_export(&mut instance, "fib", &[WasmValue::I32(10)]).unwrap();
        assert_eq!(r, vec![WasmValue::I32(55)], "call {n}");
        pool.wait_idle();
    }
    assert_eq!(
        instance.artifact().opt_compiled_count(),
        1,
        "the hot function was promoted off-thread"
    );
    assert!(instance.compiled_code(0).is_some(), "baseline code also published");
    assert_eq!(
        pool.functions_compiled(),
        2,
        "one baseline compile and one optimizing promotion"
    );
    assert!(instance.metrics.opt_compile_wall > Duration::ZERO);
    assert!(instance.metrics.tiered_up_functions >= 2, "{:?}", instance.metrics);

    // And the optimized code agrees with everything else, of course.
    let r = engine.call_export(&mut instance, "fib", &[WasmValue::I32(15)]).unwrap();
    assert_eq!(r, vec![WasmValue::I32(610)]);
    assert!(instance.metrics.opt_exec_cycles > 0);
}

#[test]
fn multi_worker_instantiation_runs_all_suites_correctly() {
    // The engine-level parallel path: instantiate with a worker pool and
    // check results and metrics against the serial path, per suite item.
    let serial = Engine::new(EngineConfig::baseline("w1", CompilerOptions::allopt()));
    let parallel = Engine::new(
        EngineConfig::baseline("w4", CompilerOptions::allopt()).with_compile_workers(4),
    );
    for suite in suites::all_suites(Scale::Test) {
        for item in &suite.items {
            let mut a = serial
                .instantiate(&item.module, Imports::new(), Instrumentation::none())
                .unwrap();
            let mut b = parallel
                .instantiate(&item.module, Imports::new(), Instrumentation::none())
                .unwrap();
            assert_eq!(a.metrics.functions_compiled, b.metrics.functions_compiled);
            assert_eq!(a.metrics.compiled_machine_bytes, b.metrics.compiled_machine_bytes);
            assert_eq!(a.metrics.compiled_wasm_bytes, b.metrics.compiled_wasm_bytes);
            assert_eq!(a.metrics.tag_stores_emitted, b.metrics.tag_stores_emitted);
            let ra = serial.call_export(&mut a, "main", &[]).unwrap();
            let rb = parallel.call_export(&mut b, "main", &[]).unwrap();
            assert_eq!(ra, rb, "{}/{}", suite.name, item.name);
            assert_eq!(a.metrics.exec_cycles, b.metrics.exec_cycles);
        }
    }
}

#[test]
fn background_tier_up_publishes_while_the_interpreter_keeps_running() {
    let module = fib_module();
    let pool = Arc::new(BackgroundCompiler::new(2));
    let engine = Engine::new(EngineConfig::tiered("bg-tiered", 3, CompilerOptions::allopt()))
        .with_background_compiler(Arc::clone(&pool));
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();

    // The recursive workload crosses the threshold mid-run; with a
    // background pool the engine enqueues the compile and keeps
    // interpreting instead of blocking, so the run completes either way.
    let r = engine.call_export(&mut instance, "fib", &[WasmValue::I32(12)]).unwrap();
    assert_eq!(r, vec![WasmValue::I32(144)]);
    assert!(pool.jobs_queued() >= 1, "the hot function was enqueued");
    assert_eq!(
        instance.metrics.compile_wall,
        Duration::ZERO,
        "nothing compiles eagerly under the tiered config"
    );

    // Once the background compile lands, the next call observes the
    // published slot, switches to JIT code, and attributes the off-thread
    // compile time to this instance's deferred bucket.
    pool.wait_idle();
    assert_eq!(pool.functions_compiled(), 1);
    let r = engine.call_export(&mut instance, "fib", &[WasmValue::I32(12)]).unwrap();
    assert_eq!(r, vec![WasmValue::I32(144)]);
    assert!(instance.compiled_code(0).is_some(), "published into the shared artifact");
    assert_eq!(instance.metrics.functions_compiled, 1);
    assert!(instance.metrics.lazy_compile_wall > Duration::ZERO);

    // The interpreter and the JIT agree, as always.
    let jit = engine.call_export(&mut instance, "fib", &[WasmValue::I32(15)]).unwrap();
    assert_eq!(jit, vec![WasmValue::I32(610)]);
}

/// A module whose exported `churn` allocates `n` short-lived host objects
/// through an imported allocator, then reports the live count.
fn alloc_module() -> Module {
    let mut b = ModuleBuilder::new();
    let alloc = b.import_func(
        "host",
        "alloc",
        FuncType::new(vec![ValueType::I32], vec![ValueType::ExternRef]),
    );
    let live = b.import_func("host", "live", FuncType::new(vec![], vec![ValueType::I32]));
    let mut c = CodeBuilder::new();
    // for i in 0..8 { drop(alloc(i)) } — every allocation is garbage by the
    // next call site; then ask the host how many objects survived.
    for i in 0..8 {
        c.i32_const(i).call(alloc).drop_();
    }
    c.call(live);
    let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
    b.export_func("churn", f);
    b.finish()
}

fn run_churn(config: EngineConfig) -> (u64, i32) {
    let imports = Imports::new()
        .func("host", "alloc", |heap, args| {
            Ok(vec![WasmValue::ExternRef(Some(
                heap.alloc(args[0].unwrap_i32() as u64),
            ))])
        })
        .func("host", "live", |heap, _| {
            Ok(vec![WasmValue::I32(heap.live_count() as i32)])
        });
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&alloc_module(), imports, Instrumentation::none())
        .unwrap();
    let live = engine.call_export(&mut instance, "churn", &[]).unwrap()[0];
    (
        instance.heap.collections(),
        match live {
            WasmValue::I32(v) => v,
            _ => -1,
        },
    )
}

#[test]
fn gc_threshold_flows_from_config_and_defers_collection() {
    let base = EngineConfig::baseline("gc", CompilerOptions::allopt());
    // Threshold 0 (the default): collection is never requested.
    let (collections, live) = run_churn(base.clone());
    assert_eq!(collections, 0);
    assert_eq!(live, 8, "nothing was ever reclaimed");
    // A threshold higher than the allocation count also defers every
    // collection.
    let (collections, live) = run_churn(base.clone().with_gc_threshold(100));
    assert_eq!(collections, 0, "a high threshold defers collection");
    assert_eq!(live, 8);
    // A low threshold kicks in once enough objects are live and reclaims
    // the garbage.
    let (collections, live) = run_churn(base.with_gc_threshold(3));
    assert!(collections > 0, "a low threshold triggers collection");
    assert!(live < 8, "short-lived allocations were reclaimed");
}
