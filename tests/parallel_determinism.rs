//! Differential determinism tests for the parallel compile pipeline: at any
//! worker count, over all three suites and both backends, the pipeline must
//! produce artifacts byte-identical to the serial path — same virtual-ISA
//! instructions, label targets, source maps, stackmaps, call/probe metadata,
//! and (under the x86-64 backend) the same real machine bytes.
//!
//! This is the property that makes the rest of the subsystem sound: because
//! each function's compilation is a pure function of immutable inputs, code
//! compiled on an instantiate-time worker, a background worker, or the
//! execution thread is interchangeable, and a publication race between them
//! is harmless.

use engine::pipeline::{compile_eager, CompiledModule};
use engine::{CodeBackend, EngineConfig, Instrumentation, Telemetry};
use spc::CompilerOptions;
use suites::Scale;

/// Compiles every function of `module` under `config` and returns the filled
/// artifact.
fn compile_all(config: &EngineConfig, module: &wasm::Module) -> CompiledModule {
    let artifact = CompiledModule::build(module.clone()).expect("suite modules validate");
    compile_eager(config, &artifact, &Instrumentation::none(), &Telemetry::disabled())
        .expect("suite modules compile");
    assert_eq!(
        artifact.compiled_count(),
        artifact.num_defined() as usize,
        "eager compilation fills every slot"
    );
    artifact
}

/// Asserts that two fully-compiled artifacts are byte-identical.
fn assert_identical(a: &CompiledModule, b: &CompiledModule, what: &str) {
    assert_eq!(a.num_defined(), b.num_defined());
    for defined in 0..a.num_defined() {
        let fa = a.artifact(defined).unwrap();
        let fb = b.artifact(defined).unwrap();
        // The executable virtual-ISA artifact: instructions, label targets,
        // source map (CodeBuffer equality covers all three), stackmaps, and
        // the engine metadata keyed off site indices.
        assert_eq!(fa.function.code, fb.function.code, "{what}: code of function {defined}");
        assert_eq!(
            fa.function.stackmaps, fb.function.stackmaps,
            "{what}: stackmaps of function {defined}"
        );
        assert_eq!(
            fa.function.call_sites, fb.function.call_sites,
            "{what}: call sites of function {defined}"
        );
        assert_eq!(
            fa.function.probe_sites, fb.function.probe_sites,
            "{what}: probe sites of function {defined}"
        );
        assert_eq!(fa.function.frame_slots, fb.function.frame_slots);
        assert_eq!(fa.function.stats, fb.function.stats);
        assert_eq!(fa.machine_bytes, fb.machine_bytes, "{what}: function {defined}");
        // The real x86-64 encoding, when the backend emitted one (X64Code
        // equality covers bytes, label targets, source map, relocations).
        assert_eq!(
            fa.x64_code, fb.x64_code,
            "{what}: x86-64 bytes of function {defined}"
        );
    }
}

fn config_for(backend: CodeBackend, workers: usize) -> EngineConfig {
    EngineConfig::baseline("determinism", CompilerOptions::allopt())
        .with_backend(backend)
        .with_compile_workers(workers)
}

#[test]
fn parallel_compilation_is_byte_identical_across_worker_counts() {
    for backend in [CodeBackend::VirtualIsa, CodeBackend::X64] {
        for suite in suites::all_suites(Scale::Test) {
            for item in &suite.items {
                let serial = compile_all(&config_for(backend, 1), &item.module);
                for workers in [2, 8] {
                    let parallel = compile_all(&config_for(backend, workers), &item.module);
                    let what = format!(
                        "{:?} {}/{} at {workers} workers",
                        backend, suite.name, item.name
                    );
                    assert_identical(&serial, &parallel, &what);
                }
            }
        }
    }
}

#[test]
fn pipeline_serial_path_matches_direct_compiler_invocation() {
    // The 1-worker pipeline is the reference for the parallel test above;
    // anchor it to the compiler invoked directly, the way the pre-pipeline
    // engine did.
    let options = CompilerOptions::allopt();
    let config = config_for(CodeBackend::VirtualIsa, 1);
    for suite in suites::all_suites(Scale::Test) {
        for item in &suite.items {
            let artifact = compile_all(&config, &item.module);
            let info = wasm::validate::validate(&item.module).unwrap();
            for defined in 0..artifact.num_defined() {
                let func_index = item.module.defined_to_func_index(defined);
                let direct = spc::SinglePassCompiler::new(options.clone())
                    .compile(
                        &item.module,
                        func_index,
                        &info.funcs[defined as usize],
                        &spc::ProbeSites::none(),
                    )
                    .unwrap();
                let piped = artifact.code(defined).unwrap();
                assert_eq!(
                    direct.code, piped.code,
                    "{}/{} function {defined}",
                    suite.name, item.name
                );
            }
        }
    }
}
