//! End-to-end tests for the telemetry layer: concurrent cache-counter
//! accuracy, sampling-profiler attribution across tiers and backends, trace
//! coverage of the serving request lifecycle, and the zero-cost contract of
//! a disabled handle.

mod common;

use common::fib_module;
use engine::{CodeBackend, CodeCache, Engine, EngineConfig, Imports, Instrumentation, Telemetry};
use machine::values::WasmValue;
use serve::deadline::EpochTicker;
use serve::{Request, RequestStatus, Server, ServerConfig};
use spc::CompilerOptions;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{EventKind, Tier};
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, ValueType};
use wasm::Module;

/// A module whose exported `main` returns `seed` — distinct seeds produce
/// distinct module bodies, hence distinct cache keys.
fn const_module(seed: i32) -> Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.i32_const(seed);
    let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
    b.export_func("main", f);
    b.finish()
}

/// `hot(n)` spins an LCG countdown loop; `main` calls a cold helper once and
/// then `hot`. Function indices are (cold, hot, main) = (0, 1, 2).
fn hot_loop_module(iters: i32) -> Module {
    let mut b = ModuleBuilder::new();
    let cold = {
        let mut c = CodeBuilder::new();
        c.local_get(0).i32_const(3).op(Opcode::I32Mul);
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        )
    };
    let hot = {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(1)
            .i32_const(1103515245)
            .op(Opcode::I32Mul)
            .i32_const(12345)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(1);
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![ValueType::I32],
            c.finish(),
        )
    };
    let main = {
        let mut c = CodeBuilder::new();
        c.i32_const(7)
            .call(cold)
            .i32_const(iters)
            .call(hot)
            .op(Opcode::I32Add);
        b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish())
    };
    b.export_func("main", main);
    b.finish()
}

#[test]
fn concurrent_cache_counters_stay_exact() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 8;
    let modules: Vec<Module> = (0..3).map(|i| const_module(100 + i)).collect();
    let cache = Arc::new(CodeCache::new());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let modules = &modules;
            scope.spawn(move || {
                let engine =
                    Engine::new(EngineConfig::baseline("cached", CompilerOptions::allopt()))
                        .with_code_cache(cache);
                for round in 0..ROUNDS {
                    // Walk the modules in a thread-dependent order so hits
                    // and misses interleave across threads.
                    let module = &modules[(t + round) % modules.len()];
                    let mut instance = engine
                        .instantiate(module, Imports::new(), Instrumentation::none())
                        .expect("instantiates");
                    engine
                        .call_export(&mut instance, "main", &[])
                        .expect("runs");
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * ROUNDS) as u64,
        "every instantiation is exactly one lookup"
    );
    assert_eq!(
        stats.entries,
        modules.len() as u64,
        "one entry per distinct module under one configuration"
    );
    // Each distinct module misses at least once (first compile), and the
    // remaining lookups can only be hits or racing first-compile misses.
    assert!(stats.misses >= modules.len() as u64);
    assert!(stats.hits > 0, "warm instantiations actually hit");
}

#[test]
fn profiler_attributes_the_hot_loop_across_tiers_and_backends() {
    const HOT_FUNC: u32 = 1;
    const MIN_SAMPLES: u64 = 8;
    let module = hot_loop_module(120_000);
    let tiers: [(EngineConfig, Tier); 3] = [
        (EngineConfig::interpreter("int"), Tier::Interp),
        (
            EngineConfig::baseline("spc", CompilerOptions::allopt()),
            Tier::Baseline,
        ),
        (EngineConfig::optimizing("opt"), Tier::Opt),
    ];
    let matrix = tiers.into_iter().flat_map(|(config, tier)| {
        [CodeBackend::VirtualIsa, CodeBackend::X64]
            .map(|backend| (config.clone().with_backend(backend), tier, backend))
    });
    for (config, expected_tier, backend) in matrix {
        let name = format!("{}/{backend:?}", config.name);
        let engine = Engine::new(config.with_metering().with_telemetry())
            .with_epoch(Arc::new(AtomicU64::new(0)));
        let ticker = EpochTicker::start(Arc::clone(engine.epoch()), Duration::from_micros(150));
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        let profiler = engine.telemetry().profiler().expect("telemetry is enabled");
        let mut calls = 0usize;
        while profiler.total_samples() < MIN_SAMPLES && calls < 400 {
            instance.set_fuel(u64::MAX / 2);
            engine
                .call_export(&mut instance, "main", &[])
                .expect("hot module runs");
            calls += 1;
        }
        drop(ticker);
        let total = profiler.total_samples();
        assert!(
            total >= MIN_SAMPLES,
            "{name}: only {total} samples after {calls} calls"
        );
        let share = profiler.share(HOT_FUNC);
        assert!(
            share >= 0.9,
            "{name}: hot-loop share {:.1}% < 90% over {total} samples",
            share * 100.0
        );
        let top = profiler.snapshot().into_iter().next().expect("has samples");
        assert_eq!(top.func, HOT_FUNC, "{name}: top function is the hot loop");
        assert_eq!(top.tier, expected_tier, "{name}: samples land in the executing tier");
    }
}

/// `rec` burns all its time in branchy recursion — no loops anywhere, so
/// the in-loop meter-check sampling sites never fire. Function indices are
/// (cold, rec, main) = (0, 1, 2).
fn deep_recursion_module(depth: i32) -> Module {
    let mut b = ModuleBuilder::new();
    let cold = {
        let mut c = CodeBuilder::new();
        c.local_get(0).i32_const(3).op(Opcode::I32Mul);
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        )
    };
    // rec(n) = n < 2 ? n : rec(n-1) + rec(n-2)  (Fibonacci call tree)
    let rec = 1;
    let rec = {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .i32_const(2)
            .op(Opcode::I32LtS)
            .if_(BlockType::Value(ValueType::I32))
            .local_get(0)
            .else_()
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .call(rec)
            .local_get(0)
            .i32_const(2)
            .op(Opcode::I32Sub)
            .call(rec)
            .op(Opcode::I32Add)
            .end();
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        )
    };
    let main = {
        let mut c = CodeBuilder::new();
        c.i32_const(7)
            .call(cold)
            .i32_const(depth)
            .call(rec)
            .op(Opcode::I32Add);
        b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish())
    };
    b.export_func("main", main);
    b.finish()
}

/// Regression for the frame-exit sampling path: a kernel with *no* loop
/// back-edges must still attribute its time to the recursive hot function,
/// because returns and call boundaries are sample points too.
#[test]
fn profiler_attributes_deep_recursion_without_back_edges() {
    const REC_FUNC: u32 = 1;
    const MIN_SAMPLES: u64 = 8;
    let module = deep_recursion_module(21);
    let tiers: [(EngineConfig, Tier); 3] = [
        (EngineConfig::interpreter("int"), Tier::Interp),
        (
            EngineConfig::baseline("spc", CompilerOptions::allopt()),
            Tier::Baseline,
        ),
        (EngineConfig::optimizing("opt"), Tier::Opt),
    ];
    let matrix = tiers.into_iter().flat_map(|(config, tier)| {
        [CodeBackend::VirtualIsa, CodeBackend::X64]
            .map(|backend| (config.clone().with_backend(backend), tier, backend))
    });
    for (config, expected_tier, backend) in matrix {
        let name = format!("{}/{backend:?}", config.name);
        let engine = Engine::new(config.with_metering().with_telemetry())
            .with_epoch(Arc::new(AtomicU64::new(0)));
        let ticker = EpochTicker::start(Arc::clone(engine.epoch()), Duration::from_micros(150));
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        let profiler = engine.telemetry().profiler().expect("telemetry is enabled");
        let mut calls = 0usize;
        while profiler.total_samples() < MIN_SAMPLES && calls < 400 {
            instance.set_fuel(u64::MAX / 2);
            engine
                .call_export(&mut instance, "main", &[])
                .expect("recursion kernel runs");
            calls += 1;
        }
        drop(ticker);
        let total = profiler.total_samples();
        assert!(
            total >= MIN_SAMPLES,
            "{name}: only {total} samples after {calls} calls"
        );
        let share = profiler.share(REC_FUNC);
        assert!(
            share >= 0.9,
            "{name}: recursive-kernel share {:.1}% < 90% over {total} samples",
            share * 100.0
        );
        let top = profiler.snapshot().into_iter().next().expect("has samples");
        assert_eq!(top.func, REC_FUNC, "{name}: top function is the recursive kernel");
        assert_eq!(top.tier, expected_tier, "{name}: samples land in the executing tier");
    }
}

#[test]
fn serving_batch_traces_the_request_lifecycle() {
    let telemetry = Telemetry::enabled();
    let mut server = Server::new(
        ServerConfig {
            workers: 2,
            telemetry: telemetry.clone(),
            ..ServerConfig::default()
        },
        EngineConfig::baseline("spc", CompilerOptions::allopt()),
    );
    let apps = [
        server
            .register_app("a", "main", const_module(11))
            .expect("registers"),
        server
            .register_app("b", "main", const_module(22))
            .expect("registers"),
    ];
    let requests: Vec<Request> = (0..8).map(|i| Request::to_app(apps[i % 2])).collect();
    let results = server.run(requests);
    assert!(results.iter().all(|r| matches!(r.status, RequestStatus::Ok(_))));

    let rings = telemetry.drain();
    let mut compile_ends = 0;
    let mut checkouts = 0;
    let (mut enqueued, mut started, mut finished, mut finished_ok) = (0, 0, 0, 0);
    for (_, events, _) in &rings {
        for event in events {
            match event.kind {
                EventKind::CompileEnd { .. } => compile_ends += 1,
                EventKind::PoolCheckout { .. } => checkouts += 1,
                EventKind::ServeEnqueue { .. } => enqueued += 1,
                EventKind::ServeStart { .. } => started += 1,
                EventKind::ServeFinish { ok, .. } => {
                    finished += 1;
                    finished_ok += ok as u32;
                }
                _ => {}
            }
        }
    }
    assert!(compile_ends >= 1, "the apps' compiles are traced");
    assert_eq!(checkouts, 8, "one pool checkout per request");
    assert_eq!((enqueued, started, finished), (8, 8, 8));
    assert_eq!(finished_ok, 8);
    assert_eq!(telemetry.dropped_events(), 0);

    let metrics = telemetry.metrics().expect("enabled").snapshot();
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(counter("serve.requests"), 8);
    assert_eq!(counter("serve.trapped"), 0);
    assert_eq!(
        counter("pool.warm_checkouts") + counter("pool.cold_checkouts"),
        8
    );
    let request_us = metrics
        .histograms
        .iter()
        .find(|(n, _)| n == "serve.request_us")
        .map(|(_, h)| h.clone())
        .expect("request latency histogram exists");
    assert_eq!(request_us.count, 8);

    // The drained events render into Chrome trace JSON with the serve spans.
    let trace = telemetry::trace::chrome_trace(&rings);
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("serve r0"));
    assert!(trace.contains("pool checkout"));
}

#[test]
fn disabled_telemetry_leaves_execution_cycles_untouched() {
    let module = fib_module();
    for (name, config) in [
        ("int", EngineConfig::interpreter("int")),
        ("spc", EngineConfig::baseline("spc", CompilerOptions::allopt())),
    ] {
        // Metering exercises the same check sites the sampler piggybacks on.
        let run = |config: EngineConfig| {
            let engine = Engine::new(config).with_epoch(Arc::new(AtomicU64::new(0)));
            let mut instance = engine
                .instantiate(&module, Imports::new(), Instrumentation::none())
                .expect("instantiates");
            instance.set_fuel(u64::MAX / 2);
            let result = engine
                .call_export(&mut instance, "fib", &[WasmValue::I32(15)])
                .expect("runs");
            (result, instance.metrics.exec_cycles)
        };
        let (plain_result, plain_cycles) = run(config.clone().with_metering());
        let (traced_result, traced_cycles) = run(config.with_metering().with_telemetry());
        assert_eq!(plain_result, traced_result, "{name}: same answer");
        assert_eq!(
            plain_cycles, traced_cycles,
            "{name}: telemetry charges zero simulated cycles"
        );
    }
}
