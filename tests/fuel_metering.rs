//! Fuel metering and preemption across the tier matrix.
//!
//! Three claims anchor the multi-tenant layer: (1) fuel consumption is
//! bit-identical in every tier×backend configuration, *including* runs that
//! tier up mid-execution; (2) a runaway loop is preemptible via the epoch
//! protocol on both macro-assembler backends; (3) tenant resource ceilings
//! bind at `memory.grow` and at instantiation. The conformance corpus
//! (`crates/conform/scripts/fuel_metering.wast`) states exact budgets; this
//! file exercises the engine-level machinery the scripts cannot reach.

mod common;

use engine::{Engine, EngineConfig, Imports, Instrumentation, ResourceLimits, TrapReason};
use machine::inst::TrapCode;
use machine::values::WasmValue;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, Limits, ValueType};
use wasm::Module;

/// driver(k, n): calls worker(n) `k` times and sums the results. With the
/// tiered configurations' low thresholds the worker is interpreted first,
/// then baseline-compiled, then promoted to the optimizing tier — all within
/// a single driver invocation, so one call burns fuel across three tiers.
fn tier_up_module() -> Module {
    let mut b = ModuleBuilder::new();
    // worker(n): count down, returning the number of iterations.
    let worker = {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .local_get(1)
            .i32_const(1)
            .op(Opcode::I32Add)
            .local_set(1)
            .br(0)
            .end()
            .end()
            .local_get(1);
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![ValueType::I32],
            c.finish(),
        )
    };
    // driver(k, n): sum of k worker(n) calls.
    let driver = {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .local_get(2)
            .local_get(1)
            .call(worker)
            .op(Opcode::I32Add)
            .local_set(2)
            .br(0)
            .end()
            .end()
            .local_get(2);
        b.add_func(
            FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
            vec![ValueType::I32],
            c.finish(),
        )
    };
    b.export_func("driver", driver);
    b.finish()
}

/// An exported `spin` that loops forever, next to a well-behaved `ok`, so a
/// preempted instance can prove it is still usable afterwards.
fn infinite_loop_module() -> Module {
    let mut b = ModuleBuilder::new();
    let spin = {
        let mut c = CodeBuilder::new();
        c.loop_(BlockType::Empty).br(0).end();
        b.add_func(FuncType::new(vec![], vec![]), vec![], c.finish())
    };
    let ok = {
        let mut c = CodeBuilder::new();
        c.i32_const(7);
        b.add_func(
            FuncType::new(vec![], vec![ValueType::I32]),
            vec![],
            c.finish(),
        )
    };
    b.export_func("spin", spin);
    b.export_func("ok", ok);
    b.finish()
}

/// A module with an unbounded declared memory and a `grow` export.
fn grow_module() -> Module {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::at_least(1));
    let grow = {
        let mut c = CodeBuilder::new();
        c.local_get(0).memory_grow();
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        )
    };
    b.export_func("grow", grow);
    b.finish()
}

/// Fuel consumption is identical in every configuration even when the run
/// tiers up mid-execution: the tiered configurations promote the worker from
/// interpreter to baseline to optimizing code *during* the driver call, and
/// still consume exactly what the interpreter-only configuration consumes.
#[test]
fn fuel_is_deterministic_under_mid_execution_tier_up() {
    let module = tier_up_module();
    let args = [WasmValue::I32(10), WasmValue::I32(25)];

    // Ample budget: every config agrees on (result, consumed).
    let (reference, reference_fuel) = common::run_export_fueled(
        EngineConfig::interpreter("int-ref"),
        &module,
        "driver",
        &args,
        1_000_000,
    );
    assert_eq!(reference, Ok(vec![WasmValue::I32(250)]));
    assert!(reference_fuel > 0);
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let (result, fuel) =
            common::run_export_fueled(config, &module, "driver", &args, 1_000_000);
        assert_eq!(result, reference, "[{name}] result diverges");
        assert_eq!(fuel, reference_fuel, "[{name}] fuel diverges");
    }

    // Starve the run mid-way: every config traps OutOfFuel having consumed
    // exactly the budget — the same trap at the same point, even though the
    // tiered configs cross tier boundaries while burning it.
    let starved = reference_fuel / 2;
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let (result, fuel) =
            common::run_export_fueled(config, &module, "driver", &args, starved);
        assert_eq!(result, Err(TrapCode::OutOfFuel), "[{name}]");
        assert_eq!(fuel, starved, "[{name}] exhaustion must consume the whole budget");
    }

    // One unit short of the true cost also traps; the exact cost succeeds.
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let (result, _) =
            common::run_export_fueled(config.clone(), &module, "driver", &args, reference_fuel - 1);
        assert_eq!(result, Err(TrapCode::OutOfFuel), "[{name}]");
        let (result, fuel) =
            common::run_export_fueled(config, &module, "driver", &args, reference_fuel);
        assert_eq!(result, reference, "[{name}]");
        assert_eq!(fuel, reference_fuel, "[{name}]");
    }
}

/// A supervisor thread bumping the engine epoch preempts an infinite loop —
/// in the interpreter and in baseline-compiled code on both macro-assembler
/// backends — and the instance remains usable afterwards.
#[test]
fn epoch_preemption_stops_an_infinite_loop_on_both_backends() {
    let module = infinite_loop_module();
    for config in [
        EngineConfig::interpreter("int").with_metering(),
        EngineConfig::baseline("spc", spc::CompilerOptions::allopt()).with_metering(),
        EngineConfig::baseline("spc-x64", spc::CompilerOptions::allopt())
            .with_metering()
            .with_backend(engine::CodeBackend::X64),
    ] {
        let name = config.name.clone();
        let engine = Engine::new(config);
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        instance.set_epoch_deadline(engine.epoch().load(Ordering::Relaxed) + 1);

        let epoch = Arc::clone(engine.epoch());
        let supervisor = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            epoch.fetch_add(1, Ordering::Relaxed);
        });
        let code = engine
            .call_export(&mut instance, "spin", &[])
            .expect_err("the loop must be preempted");
        supervisor.join().expect("supervisor thread");
        assert_eq!(code, TrapCode::Interrupted, "[{name}]");
        assert_eq!(TrapReason::from(code), TrapReason::Interrupted);

        // The tenant is interrupted, not poisoned: clearing the deadline
        // makes the instance callable again.
        instance.clear_epoch_deadline();
        let out = engine
            .call_export(&mut instance, "ok", &[])
            .expect("runs after preemption");
        assert_eq!(out, vec![WasmValue::I32(7)], "[{name}]");
    }
}

/// The epoch is also observed at call boundaries, so deeply recursive code
/// that never loops is preemptible too.
#[test]
fn epoch_preemption_binds_at_call_boundaries() {
    let module = common::fib_module();
    let engine = Engine::new(EngineConfig::default());
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("instantiates");
    // Deadline already reached: the very first nested call traps. fib(20)
    // unmetered would make tens of thousands of calls.
    instance.set_epoch_deadline(0);
    engine.increment_epoch();
    let code = engine
        .call_export(&mut instance, "fib", &[WasmValue::I32(20)])
        .expect_err("preempted at a call boundary");
    assert_eq!(code, TrapCode::Interrupted);
}

/// Tenant memory ceilings bind at `memory.grow` in every configuration, even
/// when the module declares an unbounded memory.
#[test]
fn memory_grow_respects_tenant_limits_in_every_config() {
    let module = grow_module();
    let limits = ResourceLimits {
        memory_pages: Some(3),
        table_elements: None,
        call_depth: None,
    };
    for config in common::all_tier_backend_configs() {
        let name = config.name.clone();
        let engine = Engine::new(config.with_limits(limits));
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        let mut grow = |delta: i32| {
            engine
                .call_export(&mut instance, "grow", &[WasmValue::I32(delta)])
                .expect("grow never traps")[0]
        };
        assert_eq!(grow(1), WasmValue::I32(1), "[{name}] 1 -> 2 pages");
        assert_eq!(grow(1), WasmValue::I32(2), "[{name}] 2 -> 3 pages");
        assert_eq!(grow(1), WasmValue::I32(-1), "[{name}] ceiling reached");
        assert_eq!(grow(0), WasmValue::I32(3), "[{name}] size unchanged");
    }
}

/// A declared memory minimum above the tenant ceiling is refused at
/// instantiation, before any code runs.
#[test]
fn oversized_declared_minimum_fails_instantiation() {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::at_least(8));
    let module = b.finish();
    let engine = Engine::new(EngineConfig::default().with_limits(ResourceLimits {
        memory_pages: Some(2),
        table_elements: None,
        call_depth: None,
    }));
    let err = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect_err("minimum above the ceiling");
    assert!(err.to_string().contains("tenant limit"), "{err}");
}

/// Arming no fuel keeps execution unmetered even under a metering
/// configuration, and re-arming restores the full budget.
#[test]
fn fuel_is_opt_in_and_rearmable() {
    let module = tier_up_module();
    let engine = Engine::new(EngineConfig::default().with_metering());
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .expect("instantiates");
    let args = [WasmValue::I32(2), WasmValue::I32(5)];
    // Unarmed: runs to completion, nothing recorded.
    assert!(engine.call_export(&mut instance, "driver", &args).is_ok());
    assert_eq!(instance.fuel_remaining(), None);
    assert_eq!(instance.fuel_consumed(), None);
    // Armed: consumption is recorded; re-arming resets the budget.
    instance.set_fuel(10_000);
    assert!(engine.call_export(&mut instance, "driver", &args).is_ok());
    let consumed = instance.fuel_consumed().expect("armed");
    assert!(consumed > 0 && consumed < 10_000);
    instance.set_fuel(10_000);
    assert_eq!(instance.fuel_consumed(), Some(0));
}
