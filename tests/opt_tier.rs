//! Integration tests for the SSA optimizing tier: whole-suite agreement
//! with the lower tiers, the cycle-reduction claim behind `fig13_opt_tier`,
//! and the Masm-generality of the tier (real x86-64 sizes under the x64
//! backend).

mod common;

use engine::{CodeBackend, Engine, EngineConfig, Imports, Instrumentation};
use spc::CompilerOptions;
use suites::Scale;

/// Every suite item computes the same checksum in the optimizing tier as in
/// the interpreter and the baseline tier, and the optimizing tier executes
/// at least 20% fewer simulated cycles than the baseline on at least two of
/// the three suites (the `fig13_opt_tier` acceptance gate, at test scale).
#[test]
fn opt_tier_agrees_with_lower_tiers_and_cuts_cycles() {
    let interp = Engine::new(EngineConfig::interpreter("int"));
    let baseline = Engine::new(EngineConfig::baseline("spc", CompilerOptions::allopt()));
    let opt = Engine::new(EngineConfig::optimizing("opt"));

    let mut wins = 0;
    for suite in suites::all_suites(Scale::Test) {
        let mut baseline_cycles = 0u64;
        let mut opt_cycles = 0u64;
        for item in &suite.items {
            let run = |engine: &Engine| {
                let mut instance = engine
                    .instantiate(&item.module, Imports::new(), Instrumentation::none())
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", suite.name, item.name));
                let r = engine
                    .call_export(&mut instance, "main", &[])
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", suite.name, item.name));
                (r, instance.metrics.exec_cycles)
            };
            let (ri, _) = run(&interp);
            let (rb, cb) = run(&baseline);
            let (ro, co) = run(&opt);
            assert_eq!(ri, rb, "{}/{}", suite.name, item.name);
            assert_eq!(ri, ro, "{}/{}", suite.name, item.name);
            baseline_cycles += cb;
            opt_cycles += co;
        }
        assert!(
            opt_cycles < baseline_cycles,
            "{}: opt {} vs baseline {}",
            suite.name,
            opt_cycles,
            baseline_cycles
        );
        if opt_cycles * 10 <= baseline_cycles * 8 {
            wins += 1;
        }
    }
    assert!(wins >= 2, "opt must be >=20% faster on at least 2 of 3 suites");
}

/// The optimizing tier emits through the `Masm` boundary, so the x86-64
/// backend reports real encoded bytes for optimized code — and the virtual
/// and x64 runs execute identically (execution is always virtual-ISA).
#[test]
fn opt_tier_serves_both_backends() {
    let virt = Engine::new(EngineConfig::optimizing("opt"));
    let x64 = Engine::new(EngineConfig::optimizing("opt-x64").with_backend(CodeBackend::X64));
    let suite = suites::polybench::suite(Scale::Test);
    for item in suite.items.iter().take(6) {
        let run = |engine: &Engine| {
            let mut instance = engine
                .instantiate(&item.module, Imports::new(), Instrumentation::none())
                .unwrap();
            let r = engine.call_export(&mut instance, "main", &[]).unwrap();
            (r, instance.metrics.exec_cycles, instance.metrics.compiled_machine_bytes)
        };
        let (rv, cv, bytes_virtual) = run(&virt);
        let (rx, cx, bytes_x64) = run(&x64);
        assert_eq!(rv, rx, "{}", item.name);
        assert_eq!(cv, cx, "execution is backend-independent ({})", item.name);
        assert!(bytes_virtual > 0 && bytes_x64 > 0, "{}", item.name);
        assert_ne!(
            bytes_virtual, bytes_x64,
            "x64 sizes are real encodings, not the virtual estimate ({})",
            item.name
        );
    }
}

/// Promotion through all three tiers mid-workload: the three-tier engine
/// returns the same fib value on every call while the function climbs
/// interpreter → baseline → optimizing.
#[test]
fn three_tier_promotion_is_seamless_mid_workload() {
    let module = common::fib_module();
    let config = EngineConfig::tiered("t3", 1, CompilerOptions::allopt()).with_opt_tier(3);
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();
    for _ in 0..6 {
        let r = engine
            .call_export(&mut instance, "fib", &[machine::values::WasmValue::I32(12)])
            .unwrap();
        assert_eq!(r, vec![machine::values::WasmValue::I32(144)]);
    }
    assert_eq!(instance.artifact().opt_compiled_count(), 1);
    assert!(instance.metrics.opt_exec_cycles > 0);
    assert!(instance.metrics.tiered_up_functions >= 2);
}
