//! Integration tests for tier transfer (Fig. 2's frame compatibility) and
//! garbage collection with tags vs. stackmaps (Section IV-C).

mod common;

use common::fib_module;
use engine::{Engine, EngineConfig, Heap, Imports, Instrumentation, TrapReason};
use machine::values::WasmValue;
use spc::{CompilerOptions, TagStrategy};
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::module::ConstExpr;
use wasm::types::{FuncType, GlobalType, ValueType};

#[test]
fn recursive_calls_agree_across_tiers() {
    let module = fib_module();
    let mut results = Vec::new();
    for config in [
        EngineConfig::interpreter("int"),
        EngineConfig::baseline("jit", CompilerOptions::allopt()),
        EngineConfig::optimizing("opt"),
        EngineConfig::tiered("tiered", 3, CompilerOptions::allopt()),
        EngineConfig::tiered("tiered-opt", 2, CompilerOptions::allopt()).with_opt_tier(5),
    ] {
        let engine = Engine::new(config);
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .unwrap();
        let r = engine
            .call_export(&mut instance, "fib", &[WasmValue::I32(15)])
            .unwrap();
        results.push(r[0]);
    }
    assert!(results.iter().all(|r| *r == WasmValue::I32(610)), "{results:?}");
}

#[test]
fn tiered_engine_compiles_only_hot_functions() {
    let module = fib_module();
    let engine = Engine::new(EngineConfig::tiered("tiered", 5, CompilerOptions::allopt()));
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();

    // A cold call stays in the interpreter (fib(1) makes a single call).
    engine
        .call_export(&mut instance, "fib", &[WasmValue::I32(1)])
        .unwrap();
    assert!(instance.compiled_code(0).is_none(), "not hot yet");

    // Recursion makes the function hot; it tiers up mid-workload and the JIT
    // frames interoperate with the interpreter frames already on the stack.
    let r = engine
        .call_export(&mut instance, "fib", &[WasmValue::I32(12)])
        .unwrap();
    assert_eq!(r, vec![WasmValue::I32(144)]);
    assert!(instance.compiled_code(0).is_some(), "tiered up");
    assert!(instance.call_count(0) > 5);
    assert!(instance.metrics.functions_compiled == 1);
}

#[test]
fn stack_overflow_is_a_trap_not_a_crash() {
    // Infinite recursion must produce a structured stack-exhaustion trap.
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.local_get(0).call(0);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![],
        c.finish(),
    );
    b.export_func("loop_forever", f);
    let module = b.finish();
    for config in [
        EngineConfig::interpreter("int"),
        EngineConfig::baseline("jit", CompilerOptions::allopt()),
    ] {
        let err = common::run_export(config, &module, "loop_forever", &[WasmValue::I32(0)])
            .unwrap_err();
        assert_eq!(err, machine::TrapCode::StackOverflow);
        assert_eq!(TrapReason::from(err), TrapReason::StackExhaustion);
        assert_eq!(TrapReason::from(err).wast_message(), "call stack exhausted");
    }
}

/// Every trap cause surfaces as the same structured [`TrapReason`] from every
/// tier×backend configuration — the engine result carries the cause, not a
/// string to scrape.
#[test]
fn trap_reasons_are_structured_and_tier_independent() {
    let module = wasm::wat::parse_module(
        r#"(module
             (memory 1)
             (table 2 funcref)
             (func (export "div0") (result i32)
               i32.const 1
               i32.const 0
               i32.div_s)
             (func (export "overflow") (result i32)
               i32.const -2147483648
               i32.const -1
               i32.div_s)
             (func (export "oob") (result i32)
               i32.const 65536
               i32.load)
             (func (export "boom") unreachable)
             (func (export "badconv") (result i32)
               f32.const nan
               i32.trunc_f32_s)
             (func (export "nullcall")
               i32.const 0
               call_indirect))"#,
    )
    .expect("parses");
    wasm::validate::validate(&module).expect("validates");
    let cases: &[(&str, TrapReason)] = &[
        ("div0", TrapReason::DivisionByZero),
        ("overflow", TrapReason::IntegerOverflow),
        ("oob", TrapReason::OutOfBoundsMemory),
        ("boom", TrapReason::Unreachable),
        ("badconv", TrapReason::InvalidConversion),
        ("nullcall", TrapReason::UninitializedElement),
    ];
    for config in common::all_tier_backend_configs() {
        for (export, expected) in cases {
            let err = common::run_export(config.clone(), &module, export, &[])
                .expect_err("must trap");
            assert_eq!(
                TrapReason::from(err),
                *expected,
                "[{}] {export}",
                config.name
            );
        }
    }
}

/// Tier-up is invisible: the same invocation must produce identical results
/// and identical [`TrapReason`]s before, during, and after every promotion —
/// interpreter → baseline → optimizing — including traps raised mid-way
/// through execution (after observable side effects like `memory.grow`).
#[test]
fn results_and_traps_are_identical_before_and_after_tier_up() {
    let module = wasm::wat::parse_module(
        r#"(module
             (memory 1)
             (func (export "sum") (param i32) (result i32)
               (local i32)
               block
                 loop
                   local.get 0
                   i32.eqz
                   br_if 1
                   local.get 1
                   local.get 0
                   i32.add
                   local.set 1
                   local.get 0
                   i32.const 1
                   i32.sub
                   local.set 0
                   br 0
                 end
               end
               local.get 1)
             (func (export "trap_mid") (param i32) (result i32)
               ;; grows memory (observable), then traps iff the argument is 0.
               i32.const 1
               memory.grow
               drop
               i32.const 100
               local.get 0
               i32.div_u)
             (func (export "oob_after_work") (param i32) (result i32)
               ;; a loop of real work, then a load that goes out of bounds
               ;; once the parameter pushes the address past the memory.
               local.get 0
               i32.const 65536
               i32.mul
               i32.load))"#,
    )
    .expect("parses");
    wasm::validate::validate(&module).expect("validates");

    // Reference behaviour from the interpreter.
    let int_engine = Engine::new(EngineConfig::interpreter("int"));
    let mut int_instance = int_engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();

    // Three-tier engine with low thresholds: across ten repetitions every
    // function is interpreted, then baseline-compiled, then optimized.
    let config = EngineConfig::tiered("tiered-opt", 2, CompilerOptions::allopt()).with_opt_tier(4);
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&module, Imports::new(), Instrumentation::none())
        .unwrap();

    for round in 0..10 {
        for (export, arg) in [
            ("sum", 25),
            ("trap_mid", 7),
            ("trap_mid", 0),
            ("oob_after_work", 0),
            ("oob_after_work", 3),
        ] {
            let expected = int_engine.call_export(&mut int_instance, export, &[WasmValue::I32(arg)]);
            let actual = engine.call_export(&mut instance, export, &[WasmValue::I32(arg)]);
            match (&expected, &actual) {
                (Ok(e), Ok(a)) => assert_eq!(e, a, "round {round}: {export}({arg})"),
                (Err(e), Err(a)) => assert_eq!(
                    TrapReason::from(*e),
                    TrapReason::from(*a),
                    "round {round}: {export}({arg})"
                ),
                other => panic!("round {round}: {export}({arg}) diverged: {other:?}"),
            }
        }
    }
    // All three exports were promoted twice (interp→baseline, baseline→opt)
    // and the optimizing compiles are accounted in their own buckets.
    assert!(
        instance.metrics.tiered_up_functions >= 6,
        "expected 2 promotions per function: {:?}",
        instance.metrics
    );
    assert!(
        instance.metrics.opt_compile_wall > std::time::Duration::ZERO,
        "{:?}",
        instance.metrics
    );
    assert!(
        instance.metrics.opt_exec_cycles > 0,
        "the later rounds must have executed optimizing-tier code: {:?}",
        instance.metrics
    );
    assert!(instance.metrics.opt_exec_cycles <= instance.metrics.exec_cycles);
    assert_eq!(instance.artifact().opt_compiled_count(), 3);
}

/// A module that keeps references alive in locals and globals across calls
/// while allocating garbage.
fn gc_module() -> wasm::Module {
    let mut b = ModuleBuilder::new();
    let alloc = b.import_func(
        "host",
        "alloc",
        FuncType::new(vec![ValueType::I32], vec![ValueType::ExternRef]),
    );
    let live_check = b.import_func(
        "host",
        "live",
        FuncType::new(vec![], vec![ValueType::I32]),
    );
    let g = b.add_global(
        GlobalType::mutable(ValueType::ExternRef),
        ConstExpr::RefNull(ValueType::ExternRef),
    );
    let mut c = CodeBuilder::new();
    // Two garbage allocations first, then one kept in a local and one kept in
    // a global. Collections are triggered at the later call sites, where the
    // garbage is unreachable from any frame slot, local, or global.
    c.i32_const(30).call(alloc).drop_();
    c.i32_const(40).call(alloc).drop_();
    c.i32_const(10).call(alloc).local_set(1);
    c.i32_const(20).call(alloc).global_set(g);
    // Another call so the GC (triggered at call sites) can run with the live
    // refs only reachable from the frame and the global.
    c.call(live_check);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::ExternRef],
        c.finish(),
    );
    b.export_func("churn", f);
    b.finish()
}

fn run_gc(strategy: TagStrategy) -> (u64, u64, i32) {
    let module = gc_module();
    let options = CompilerOptions {
        tagging: strategy,
        ..CompilerOptions::allopt()
    };
    let engine = Engine::new(EngineConfig::baseline("gc-test", options));
    let imports = Imports::new()
        .func("host", "alloc", |heap, args| {
            Ok(vec![WasmValue::ExternRef(Some(
                heap.alloc(args[0].unwrap_i32() as u64),
            ))])
        })
        .func("host", "live", |heap, _| {
            Ok(vec![WasmValue::I32(heap.live_count() as i32)])
        });
    let mut instance = engine
        .instantiate(&module, imports, Instrumentation::none())
        .unwrap();
    // Collect aggressively: every call site with at least one live object.
    instance.heap = Heap::with_threshold(1);
    let live_at_end = engine
        .call_export(&mut instance, "churn", &[WasmValue::I32(0)])
        .unwrap()[0];
    (
        instance.heap.collections(),
        instance.heap.total_freed(),
        match live_at_end {
            WasmValue::I32(v) => v,
            _ => -1,
        },
    )
}

#[test]
fn gc_keeps_exactly_the_live_objects_with_value_tags() {
    let (collections, freed, live) = run_gc(TagStrategy::OnDemand);
    assert!(collections > 0, "the heap threshold forces collections");
    assert!(freed >= 1, "garbage allocations are reclaimed");
    assert_eq!(live, 2, "the local-held and global-held objects survive");
}

#[test]
fn gc_keeps_exactly_the_live_objects_with_stackmaps() {
    let (collections, freed, live) = run_gc(TagStrategy::Stackmaps);
    assert!(collections > 0);
    assert!(freed >= 1);
    assert_eq!(live, 2);
}

#[test]
fn branch_monitor_counts_match_across_tiers() {
    // The same branchy program must report identical branch profiles whether
    // probes fire from the interpreter, from runtime-call probes in JIT code,
    // or from intrinsified probes.
    let suite = suites::ostrich::suite(suites::Scale::Test);
    let item = suite.items.iter().find(|i| i.name == "bfs").unwrap();
    let mut observations = Vec::new();
    for config in [
        EngineConfig::interpreter("int"),
        EngineConfig::baseline(
            "jit",
            CompilerOptions {
                probe_mode: spc::ProbeMode::Runtime,
                ..CompilerOptions::allopt()
            },
        ),
        EngineConfig::baseline("optjit", CompilerOptions::allopt()),
    ] {
        let engine = Engine::new(config);
        let monitor = Instrumentation::branch_monitor(&item.module);
        let mut instance = engine.instantiate(&item.module, Imports::new(), monitor).unwrap();
        engine
            .call_export(&mut instance, "main", &[])
            .unwrap();
        observations.push(instance.instrumentation.branch_monitor_data().total_observations());
    }
    assert!(observations[0] > 0);
    assert_eq!(observations[0], observations[1], "int vs jit");
    assert_eq!(observations[0], observations[2], "int vs optjit");
}
