//! Quickstart: build a module, compile it with the single-pass compiler, and
//! run it in both tiers.
//!
//! This example mirrors the paper's Fig. 1: it prints the Wasm function, the
//! machine code the baseline compiler emits for it (with constants folded and
//! immediates selected), and then executes it under both the interpreter and
//! the baseline compiler.
//!
//! Run with: `cargo run --example quickstart`

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use machine::values::WasmValue;
use spc::{CompilerOptions, ProbeSites, SinglePassCompiler};
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, ValueType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small function with a loop: sum the integers 1..=n, plus a folded
    // constant expression (3 * 4) added at the end.
    let mut b = ModuleBuilder::new();
    let mut code = CodeBuilder::new();
    code.block(BlockType::Empty)
        .loop_(BlockType::Empty)
        .local_get(0)
        .op(Opcode::I32Eqz)
        .br_if(1)
        .local_get(1)
        .local_get(0)
        .op(Opcode::I32Add)
        .local_set(1)
        .local_get(0)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .local_set(0)
        .br(0)
        .end()
        .end()
        .local_get(1)
        .i32_const(3)
        .i32_const(4)
        .op(Opcode::I32Mul)
        .op(Opcode::I32Add);
    let sum = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32],
        code.finish(),
    );
    b.export_func("sum_plus_12", sum);
    let module = b.finish();

    // Show what the single-pass compiler produces (cf. the paper's Fig. 1).
    let info = wasm::validate::validate(&module)?;
    let compiled = SinglePassCompiler::new(CompilerOptions::allopt()).compile(
        &module,
        sum,
        &info.funcs[0],
        &ProbeSites::none(),
    )?;
    println!("=== single-pass compiler output (allopt) ===");
    println!("{}", compiled.code.disassemble());
    println!(
        "stats: {} machine insts, {} bytes, {} constants folded, {} immediates selected, {} tag stores",
        compiled.stats.machine_insts,
        compiled.stats.code_size_bytes,
        compiled.stats.constants_folded,
        compiled.stats.immediate_selections,
        compiled.stats.tag_stores,
    );

    // Execute under the interpreter and under the baseline compiler.
    for config in [
        EngineConfig::interpreter("wizeng-int"),
        EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt()),
    ] {
        let engine = Engine::new(config);
        let mut instance = engine.instantiate(&module, Imports::new(), Instrumentation::none())?;
        let result =
            engine.call_export(&mut instance, "sum_plus_12", &[WasmValue::I32(100)])?;
        println!(
            "{:<12} sum_plus_12(100) = {:?}   ({} cycles, {} µs compile)",
            engine.config().name,
            result[0],
            instance.metrics.exec_cycles,
            instance.metrics.total_compile_wall().as_micros(),
        );
    }
    Ok(())
}
