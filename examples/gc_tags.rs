//! Garbage collection with value tags versus stackmaps.
//!
//! Builds a module that receives host object references (`externref`), stores
//! them in locals and globals across calls, and triggers collections. The
//! same program runs under Wizard-SPC's value-tag strategy and under the
//! stackmap strategy used by the web-engine baselines; both must keep exactly
//! the live objects alive (Section IV-C of the paper).
//!
//! Run with: `cargo run --example gc_tags`

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use machine::values::WasmValue;
use spc::{CompilerOptions, TagStrategy};
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::module::ConstExpr;
use wasm::types::{FuncType, GlobalType, ValueType};

fn build_module() -> wasm::Module {
    let mut b = ModuleBuilder::new();
    // Host imports: allocate an object, and force a GC.
    let alloc = b.import_func(
        "host",
        "alloc",
        FuncType::new(vec![ValueType::I32], vec![ValueType::ExternRef]),
    );
    let collect = b.import_func("host", "collect", FuncType::new(vec![], vec![ValueType::I32]));
    let g = b.add_global(
        GlobalType::mutable(ValueType::ExternRef),
        ConstExpr::RefNull(ValueType::ExternRef),
    );

    // keep_alive(n): allocates two objects, keeps one in a local and one in a
    // global, drops a third, forces a collection, and reports how many were
    // freed.
    let mut c = CodeBuilder::new();
    c.i32_const(3).call(alloc).drop_(); // garbage
    c.i32_const(1).call(alloc).local_set(1); // local 1: live (in a local)
    c.i32_const(2).call(alloc).global_set(g); // global: live
    c.call(collect); // returns the number of live objects
    let keep = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::ExternRef],
        c.finish(),
    );
    b.export_func("keep_alive", keep);
    b.finish()
}

fn run(strategy: TagStrategy, name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let module = build_module();
    let options = CompilerOptions {
        tagging: strategy,
        ..CompilerOptions::allopt()
    };
    let engine = Engine::new(EngineConfig::baseline(name, options));
    let imports = Imports::new()
        .func("host", "alloc", |heap, args| {
            let payload = args[0].unwrap_i32() as u64;
            Ok(vec![WasmValue::ExternRef(Some(heap.alloc(payload)))])
        })
        .func("host", "collect", |heap, _args| {
            // Roots are collected by the engine at call sites; here we only
            // report liveness after the engine-triggered collection.
            Ok(vec![WasmValue::I32(heap.live_count() as i32)])
        });
    let mut instance = engine.instantiate(&module, imports, Instrumentation::none())?;
    // Trip the collector on every allocation so the call-site scan runs.
    instance.heap = engine::Heap::with_threshold(1);
    let live = engine.call_export(&mut instance, "keep_alive", &[WasmValue::I32(0)])?;
    println!(
        "{name:<22} collections: {:>2}   objects still live when queried: {:?}   freed so far: {}",
        instance.heap.collections(),
        live[0],
        instance.heap.total_freed(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GC root scanning with the two strategies from the paper:\n");
    run(TagStrategy::OnDemand, "value tags (wizard)")?;
    run(TagStrategy::Stackmaps, "stackmaps (liftoff)")?;
    println!();
    println!("Both strategies must find the reference held in a local and the one held in");
    println!("a global, while the dropped object is reclaimed.");
    Ok(())
}
