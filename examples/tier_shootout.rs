//! Tier shootout: run one line item from each suite under the interpreter,
//! every baseline-compiler design profile, and the optimizing tier, printing
//! a miniature SQ-space (compile speed vs. speedup) — the paper's Figs. 7-9
//! in one screen.
//!
//! Run with: `cargo run --example tier_shootout`

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use suites::{BenchmarkItem, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suites = suites::all_suites(Scale::Test);
    let picks = [
        &suites[0].items[0],  // polybench/gemm
        &suites[1].items[2],  // libsodium/chacha20
        &suites[2].items[2],  // ostrich/bfs
    ];

    for item in picks {
        println!("=== {}/{} ({} bytes) ===", item.suite, item.name, item.encoded_size());
        let interp_cycles = run(&EngineConfig::interpreter("wizeng-int"), item)?.0;
        println!(
            "{:<16} {:>14} cycles  {:>9}  {:>12}",
            "engine", "execution", "speedup", "compile µs"
        );
        println!(
            "{:<16} {:>14} {:>9} {:>12}",
            "wizeng-int", interp_cycles, "1.00x", "-"
        );
        let mut configs: Vec<EngineConfig> = spc::all_profiles()
            .into_iter()
            .map(|p| EngineConfig::baseline(p.name, p.options))
            .collect();
        configs.push(EngineConfig::optimizing("optimizing"));
        for config in configs {
            let (cycles, compile_us) = run(&config, item)?;
            println!(
                "{:<16} {:>14} {:>8.2}x {:>12}",
                config.name,
                cycles,
                interp_cycles as f64 / cycles as f64,
                compile_us,
            );
        }
        println!();
    }
    Ok(())
}

fn run(
    config: &EngineConfig,
    item: &suites::BenchmarkItem,
) -> Result<(u64, u128), Box<dyn std::error::Error>> {
    let engine = Engine::new(config.clone());
    let mut instance = engine.instantiate(&item.module, Imports::new(), Instrumentation::none())?;
    engine.call_export(&mut instance, BenchmarkItem::ENTRY, &[])?;
    Ok((
        instance.metrics.exec_cycles,
        instance.metrics.total_compile_wall().as_micros(),
    ))
}
