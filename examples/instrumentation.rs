//! Instrumentation: attach the branch monitor to a workload and compare the
//! cost of probes in the interpreter against unoptimized and optimized JIT
//! probes (the paper's Section IV-D / Fig. 6 scenario).
//!
//! Run with: `cargo run --example instrumentation`

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use spc::{CompilerOptions, ProbeMode};
use suites::{BenchmarkItem, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Use the BFS-like Ostrich item: lots of data-dependent branches.
    let suite = suites::ostrich::suite(Scale::Test);
    let item = suite
        .items
        .iter()
        .find(|i| i.name == "bfs")
        .expect("bfs line item exists");

    let configs = vec![
        ("int", EngineConfig::interpreter("wizeng-int")),
        (
            "jit (runtime probes)",
            EngineConfig::baseline(
                "jit",
                CompilerOptions {
                    probe_mode: ProbeMode::Runtime,
                    ..CompilerOptions::allopt()
                },
            ),
        ),
        (
            "optjit (intrinsified)",
            EngineConfig::baseline("optjit", CompilerOptions::allopt()),
        ),
    ];

    println!("branch monitor on ostrich/bfs ({} bytes of Wasm)\n", item.encoded_size());
    for (label, config) in configs {
        let engine = Engine::new(config.clone());

        // Uninstrumented baseline for this tier.
        let mut plain = engine.instantiate(&item.module, Imports::new(), Instrumentation::none())?;
        engine.call_export(&mut plain, BenchmarkItem::ENTRY, &[])?;

        // Instrumented run.
        let monitor = Instrumentation::branch_monitor(&item.module);
        let mut traced = engine.instantiate(&item.module, Imports::new(), monitor)?;
        engine.call_export(&mut traced, BenchmarkItem::ENTRY, &[])?;

        let data = traced.instrumentation.branch_monitor_data();
        let overhead = traced.metrics.exec_cycles as f64 / plain.metrics.exec_cycles as f64;
        println!("{label:<22} {:>12} cycles plain, {:>12} instrumented  ({:.2}x)",
            plain.metrics.exec_cycles, traced.metrics.exec_cycles, overhead);
        println!(
            "{:<22} observed {} branch sites, {} total branch outcomes",
            "",
            data.site_count(),
            data.total_observations()
        );
    }
    println!();
    println!("The intrinsified configuration skips the runtime lookup and frame-accessor");
    println!("allocation by passing the top-of-stack value directly to the monitor.");
    Ok(())
}
