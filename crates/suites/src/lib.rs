//! Synthetic benchmark suites modelled after the three suites of the paper's
//! evaluation: PolyBenchC (numerical kernels), Libsodium (cryptographic
//! primitives), and Ostrich (mixed numerical/graph kernels).
//!
//! Each suite produces the same number of line items as the paper (28, 39,
//! and 11 respectively). Line items are genuine Wasm modules built through
//! the `wasm` crate's builder, with instruction mixes chosen to match the
//! character of the original suite; see DESIGN.md for the substitution
//! argument. Every module exports `main: [] -> [i32]` returning a checksum,
//! which the differential tests compare exactly across execution tiers.

#![warn(missing_docs)]

pub mod kernels;
pub mod libsodium;
pub mod ostrich;
pub mod polybench;

pub use kernels::Scale;
use wasm::Module;

/// One benchmark line item: a named module belonging to a suite.
#[derive(Debug, Clone)]
pub struct BenchmarkItem {
    /// The suite this item belongs to (`"polybench"`, `"libsodium"`,
    /// `"ostrich"`).
    pub suite: &'static str,
    /// The line-item name (e.g. `"gemm"`).
    pub name: String,
    /// The generated module.
    pub module: Module,
}

impl BenchmarkItem {
    /// The exported entry point every item provides.
    pub const ENTRY: &'static str = "main";

    /// The size of this item's module in binary-format bytes.
    pub fn encoded_size(&self) -> usize {
        wasm::encode::encode(&self.module).len()
    }
}

/// A named suite of line items.
#[derive(Debug, Clone)]
pub struct Suite {
    /// The suite name.
    pub name: &'static str,
    /// The line items, in a stable order.
    pub items: Vec<BenchmarkItem>,
}

impl Suite {
    /// Number of line items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the suite has no items (never the case for the built-ins).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Builds all three suites at the given scale. The paper's line-item counts
/// are preserved: 28 + 39 + 11 = 78 items.
pub fn all_suites(scale: Scale) -> Vec<Suite> {
    vec![
        polybench::suite(scale),
        libsodium::suite(scale),
        ostrich::suite(scale),
    ]
}

/// The smallest possible module used to measure pure VM startup time
/// (the paper's `Mnop`): a single exported function that immediately returns.
pub fn nop_module() -> Module {
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::FuncType;
    let mut b = ModuleBuilder::new();
    let f = b.add_func(FuncType::new(vec![], vec![]), vec![], CodeBuilder::new().finish());
    b.export_func("main", f);
    b.finish()
}

/// Derives the paper's `m0` from a line item: the same module with an early
/// return inserted at the start of its entry function, so it undergoes the
/// same loading and compilation but executes almost nothing.
pub fn early_return_variant(module: &Module) -> Module {
    use wasm::opcode::Opcode;
    let mut m = module.clone();
    if let Some(entry) = m.exported_func("main") {
        let defined = (entry - m.num_imported_funcs()) as usize;
        if let Some(decl) = m.funcs.get_mut(defined) {
            // Prepend `i32.const 0; return` (the entry returns i32).
            let mut code = vec![Opcode::I32Const.to_byte(), 0x00, Opcode::Return.to_byte()];
            code.extend_from_slice(&decl.code);
            decl.code = code;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::validate::validate;

    #[test]
    fn suite_sizes_match_the_paper() {
        let suites = all_suites(Scale::Test);
        assert_eq!(suites.len(), 3);
        assert_eq!(suites[0].name, "polybench");
        assert_eq!(suites[0].len(), 28);
        assert_eq!(suites[1].name, "libsodium");
        assert_eq!(suites[1].len(), 39);
        assert_eq!(suites[2].name, "ostrich");
        assert_eq!(suites[2].len(), 11);
        let total: usize = suites.iter().map(|s| s.len()).sum();
        assert_eq!(total, 78);
    }

    #[test]
    fn every_item_validates_and_exports_main() {
        for suite in all_suites(Scale::Test) {
            for item in &suite.items {
                validate(&item.module).unwrap_or_else(|e| panic!("{}/{}: {e}", suite.name, item.name));
                assert!(item.module.exported_func(BenchmarkItem::ENTRY).is_some());
                assert!(item.encoded_size() > 100, "{} is non-trivial", item.name);
                assert!(!suite.is_empty());
            }
        }
    }

    #[test]
    fn item_names_are_unique_within_each_suite() {
        for suite in all_suites(Scale::Test) {
            let mut names: Vec<_> = suite.items.iter().map(|i| i.name.clone()).collect();
            let before = names.len();
            names.sort();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate names in {}", suite.name);
        }
    }

    #[test]
    fn nop_module_is_tiny_and_valid() {
        let m = nop_module();
        validate(&m).unwrap();
        let size = wasm::encode::encode(&m).len();
        assert!(size < 128, "Mnop should be tiny, got {size} bytes");
    }

    #[test]
    fn early_return_variant_still_validates() {
        let item = &polybench::suite(Scale::Test).items[0];
        let m0 = early_return_variant(&item.module);
        validate(&m0).expect("m0 validates");
        assert_eq!(m0.total_code_bytes(), item.module.total_code_bytes() + 3);
    }
}
