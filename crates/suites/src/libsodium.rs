//! The Libsodium-like suite: 39 cryptographic-primitive line items.
//!
//! Libsodium's benchmarks exercise stream ciphers, hashes, MACs, and
//! public-key primitives. Their inner loops are dominated by 32-bit and
//! 64-bit add-rotate-xor (ARX) mixing, multiplication-based hashing over
//! buffers, and wide-integer accumulation — the shapes synthesized here.

use crate::kernels::{self, Scale};
use crate::{BenchmarkItem, Suite};

/// Builds the 39-item Libsodium-like suite.
pub fn suite(scale: Scale) -> Suite {
    let arx = |r: u32| kernels::arx_rounds(scale.iterations(r));
    let hash = |w: u32, p: u32| kernels::hash_stream(scale.length(w), scale.iterations(p));
    let wide = |r: u32| kernels::wide_mix(scale.iterations(r));

    let items: Vec<(&'static str, wasm::Module)> = vec![
        ("aead_chacha20poly1305", arx(120_000)),
        ("aead_xchacha20poly1305", arx(130_000)),
        ("chacha20", arx(100_000)),
        ("xchacha20", arx(110_000)),
        ("salsa20", arx(90_000)),
        ("xsalsa20", arx(95_000)),
        ("salsa2012", arx(60_000)),
        ("salsa208", arx(40_000)),
        ("stream_chacha20_ietf", arx(105_000)),
        ("stream_salsa20_xor", arx(92_000)),
        ("hchacha20", arx(70_000)),
        ("core_hsalsa20", arx(65_000)),
        ("onetimeauth_poly1305", wide(140_000)),
        ("auth_hmacsha256", hash(4096, 24)),
        ("auth_hmacsha512", hash(4096, 30)),
        ("auth_hmacsha512256", hash(4096, 27)),
        ("hash_sha256", hash(8192, 16)),
        ("hash_sha512", hash(8192, 20)),
        ("generichash_blake2b", hash(6144, 22)),
        ("generichash_blake2b_salt", hash(6144, 24)),
        ("shorthash_siphash24", wide(120_000)),
        ("shorthash_siphashx24", wide(128_000)),
        ("secretbox_xsalsa20poly1305", arx(85_000)),
        ("secretbox_easy", arx(88_000)),
        ("box_curve25519xsalsa20poly1305", wide(150_000)),
        ("box_easy", wide(145_000)),
        ("scalarmult_curve25519", wide(180_000)),
        ("sign_ed25519", wide(160_000)),
        ("sign_ed25519_open", wide(155_000)),
        ("kdf_blake2b", hash(2048, 28)),
        ("kx_client_session_keys", wide(100_000)),
        ("pwhash_argon2i", hash(16384, 12)),
        ("pwhash_argon2id", hash(16384, 14)),
        ("pwhash_scryptsalsa208sha256", hash(12288, 13)),
        ("secretstream_xchacha20poly1305", arx(125_000)),
        ("stream_xchacha20_xor", arx(115_000)),
        ("verify_16", hash(1024, 32)),
        ("verify_32", hash(1536, 32)),
        ("verify_64", hash(2048, 32)),
    ];
    Suite {
        name: "libsodium",
        items: items
            .into_iter()
            .map(|(name, module)| BenchmarkItem {
                suite: "libsodium",
                name: name.to_string(),
                module,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_39_items_with_crypto_names() {
        let s = suite(Scale::Test);
        assert_eq!(s.len(), 39);
        assert!(s.items.iter().any(|i| i.name == "chacha20"));
        assert!(s.items.iter().any(|i| i.name == "hash_sha512"));
        assert!(s.items.iter().all(|i| i.suite == "libsodium"));
    }
}
