//! The Ostrich-like suite: 11 mixed numerical/graph line items.
//!
//! Ostrich collects numerical-computing kernels from the "dwarfs" taxonomy:
//! n-body, sparse/graph traversals, stencils, and dense linear algebra. The
//! synthesized items mix floating-point arithmetic, data-dependent control
//! flow, and memory-bound loops accordingly.

use crate::kernels::{self, Scale};
use crate::{BenchmarkItem, Suite};

/// Builds the 11-item Ostrich-like suite.
pub fn suite(scale: Scale) -> Suite {
    let items: Vec<(&'static str, wasm::Module)> = vec![
        (
            "nbody",
            kernels::float_nbody(scale.length(96), scale.iterations(24)),
        ),
        (
            "lavamd",
            kernels::float_nbody(scale.length(64), scale.iterations(32)),
        ),
        (
            "bfs",
            kernels::graph_walk(scale.length(4096), scale.iterations(300_000)),
        ),
        (
            "pagerank",
            kernels::graph_walk(scale.length(8192), scale.iterations(260_000)),
        ),
        (
            "spmv",
            kernels::graph_walk(scale.length(16384), scale.iterations(220_000)),
        ),
        ("lud", kernels::dense_matmul(scale.length(28))),
        ("backprop", kernels::dense_matmul(scale.length(24))),
        (
            "hotspot",
            kernels::stencil1d(scale.length(1536), scale.iterations(48)),
        ),
        (
            "srad",
            kernels::stencil1d(scale.length(1280), scale.iterations(56)),
        ),
        (
            "fft",
            kernels::wide_mix(scale.iterations(200_000)),
        ),
        (
            "nw",
            kernels::triad(scale.length(3072)),
        ),
    ];
    Suite {
        name: "ostrich",
        items: items
            .into_iter()
            .map(|(name, module)| BenchmarkItem {
                suite: "ostrich",
                name: name.to_string(),
                module,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_11_items_with_ostrich_names() {
        let s = suite(Scale::Test);
        assert_eq!(s.len(), 11);
        assert!(s.items.iter().any(|i| i.name == "nbody"));
        assert!(s.items.iter().any(|i| i.name == "bfs"));
        assert!(s.items.iter().all(|i| i.suite == "ostrich"));
    }
}
