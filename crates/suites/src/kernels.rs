//! Parametric kernel generators used to synthesize benchmark line items.
//!
//! The real benchmark suites (PolyBenchC, Libsodium, Ostrich) are C programs
//! compiled to Wasm; this reproduction synthesizes modules with the same
//! *kinds* of inner loops — dense linear algebra, stencils, streaming
//! reductions, ARX crypto rounds, hash mixing, pointer chasing, and n-body
//! style float math — directly through the module builder. Every module
//! exports a `main: [] -> [i32]` entry returning a checksum so results can be
//! compared exactly across execution tiers, plus an internal `kernel`
//! function so cross-function calls are exercised.

use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, Limits, ValueType};
use wasm::Module;

/// Size scale for generated workloads, so unit tests can run the same
/// generators quickly while benchmark harnesses use larger problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny problems for unit and differential tests.
    Test,
    /// The default problem sizes used by the figure harnesses.
    Default,
}

impl Scale {
    /// Scales a default iteration count down for tests.
    pub fn iterations(self, default: u32) -> u32 {
        match self {
            Scale::Test => (default / 16).max(2),
            Scale::Default => default,
        }
    }

    /// Scales a default array length down for tests.
    pub fn length(self, default: u32) -> u32 {
        match self {
            Scale::Test => (default / 8).max(4),
            Scale::Default => default,
        }
    }
}

/// Emits `for (local i = start; i < bound_local; i++) { body }` where
/// `bound` is an i32 local index.
pub fn emit_for(
    c: &mut CodeBuilder,
    i: u32,
    start: i32,
    bound: u32,
    body: impl FnOnce(&mut CodeBuilder),
) {
    c.i32_const(start).local_set(i);
    c.block(BlockType::Empty).loop_(BlockType::Empty);
    c.local_get(i).local_get(bound).op(Opcode::I32GeU).br_if(1);
    body(c);
    c.local_get(i).i32_const(1).op(Opcode::I32Add).local_set(i);
    c.br(0).end().end();
}

/// Emits an LCG step: `seed = seed * 1103515245 + 12345` on local `seed`.
fn emit_lcg_step(c: &mut CodeBuilder, seed: u32) {
    c.local_get(seed)
        .i32_const(1103515245)
        .op(Opcode::I32Mul)
        .i32_const(12345)
        .op(Opcode::I32Add)
        .local_set(seed);
}

fn pages_for_bytes(bytes: u64) -> u32 {
    bytes.div_ceil(65536).max(1) as u32
}

/// Builds a module skeleton: memory sized for `mem_bytes`, an `init` function
/// that fills `[0, fill_words)` i32 words with LCG values, the given kernel
/// function, and a `main` that calls `init`, then `kernel`, and returns the
/// kernel's i32 checksum.
fn wrap_kernel(
    mem_bytes: u64,
    fill_words: u32,
    kernel_sig: FuncType,
    kernel_locals: Vec<ValueType>,
    kernel_code: Vec<u8>,
    kernel_arg: i32,
) -> Module {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::at_least(pages_for_bytes(mem_bytes)));

    // init: fill memory with deterministic pseudo-random words.
    let init = {
        let mut c = CodeBuilder::new();
        let i = 0u32; // local 0: index
        let seed = 1u32; // local 1: lcg state
        let bound = 2u32; // local 2: bound
        c.i32_const(987654321).local_set(seed);
        c.i32_const(fill_words as i32).local_set(bound);
        emit_for(&mut c, i, 0, bound, |c| {
            emit_lcg_step(c, seed);
            // mem[i*4] = seed
            c.local_get(i)
                .i32_const(4)
                .op(Opcode::I32Mul)
                .local_get(seed)
                .mem(Opcode::I32Store, 2, 0);
        });
        b.add_func(
            FuncType::new(vec![], vec![]),
            vec![ValueType::I32, ValueType::I32, ValueType::I32],
            c.finish(),
        )
    };

    let kernel = b.add_func(kernel_sig, kernel_locals, kernel_code);

    // main: init(); return kernel(arg)
    let main = {
        let mut c = CodeBuilder::new();
        c.call(init);
        c.i32_const(kernel_arg).call(kernel);
        b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish())
    };
    b.export_func("main", main);
    b.export_func("kernel", kernel);
    b.finish()
}

/// Dense matrix multiply (`C = A * B`) over i32 elements: the classic
/// PolyBench `gemm` shape with a three-deep loop nest.
pub fn dense_matmul(n: u32) -> Module {
    // Memory layout: A at 0, B at n*n*4, C at 2*n*n*4.
    let nn = (n * n) as u64;
    let mut c = CodeBuilder::new();
    // Locals: 0 = n (param), 1 = i, 2 = j, 3 = k, 4 = acc, 5 = checksum, 6 = bound
    let (narg, i, j, k, acc, sum, bound) = (0u32, 1u32, 2u32, 3u32, 4u32, 5u32, 6u32);
    let a_base = 0i32;
    let b_base = (nn * 4) as i32;
    let c_base = (2 * nn * 4) as i32;
    c.local_get(narg).local_set(bound);
    emit_for(&mut c, i, 0, bound, |c| {
        emit_for(c, j, 0, bound, |c| {
            c.i32_const(0).local_set(acc);
            emit_for(c, k, 0, bound, |c| {
                // acc += A[i*n+k] * B[k*n+j]
                c.local_get(i)
                    .local_get(narg)
                    .op(Opcode::I32Mul)
                    .local_get(k)
                    .op(Opcode::I32Add)
                    .i32_const(4)
                    .op(Opcode::I32Mul)
                    .mem(Opcode::I32Load, 2, a_base as u32);
                c.local_get(k)
                    .local_get(narg)
                    .op(Opcode::I32Mul)
                    .local_get(j)
                    .op(Opcode::I32Add)
                    .i32_const(4)
                    .op(Opcode::I32Mul)
                    .mem(Opcode::I32Load, 2, b_base as u32);
                c.op(Opcode::I32Mul).local_get(acc).op(Opcode::I32Add).local_set(acc);
            });
            // C[i*n+j] = acc; checksum ^= acc
            c.local_get(i)
                .local_get(narg)
                .op(Opcode::I32Mul)
                .local_get(j)
                .op(Opcode::I32Add)
                .i32_const(4)
                .op(Opcode::I32Mul)
                .local_get(acc)
                .mem(Opcode::I32Store, 2, c_base as u32);
            c.local_get(sum).local_get(acc).op(Opcode::I32Xor).local_set(sum);
        });
    });
    c.local_get(sum);
    wrap_kernel(
        3 * nn * 4 + 4096,
        (2 * nn) as u32,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32; 6],
        c.finish(),
        n as i32,
    )
}

/// A 1-D Jacobi-style stencil over i32 elements, iterated `iters` times.
pub fn stencil1d(n: u32, iters: u32) -> Module {
    let mut c = CodeBuilder::new();
    // Locals: 0 = n, 1 = t, 2 = i, 3 = sum, 4 = bound_t, 5 = bound_i
    let (narg, t, i, sum, bound_t, bound_i) = (0u32, 1u32, 2u32, 3u32, 4u32, 5u32);
    c.i32_const(iters as i32).local_set(bound_t);
    c.local_get(narg).i32_const(2).op(Opcode::I32Sub).local_set(bound_i);
    emit_for(&mut c, t, 0, bound_t, |c| {
        emit_for(c, i, 0, bound_i, |c| {
            // b[i+1] = (a[i] + a[i+1] + a[i+2]) / 3   (b stored after a)
            c.local_get(i)
                .i32_const(4)
                .op(Opcode::I32Mul)
                .mem(Opcode::I32Load, 2, 0);
            c.local_get(i)
                .i32_const(4)
                .op(Opcode::I32Mul)
                .mem(Opcode::I32Load, 2, 4);
            c.op(Opcode::I32Add);
            c.local_get(i)
                .i32_const(4)
                .op(Opcode::I32Mul)
                .mem(Opcode::I32Load, 2, 8);
            c.op(Opcode::I32Add).i32_const(3).op(Opcode::I32DivS).local_set(sum);
            c.local_get(i)
                .i32_const(4)
                .op(Opcode::I32Mul)
                .local_get(sum)
                .mem(Opcode::I32Store, 2, (n * 4) + 4);
        });
        // copy back one representative element to keep iterations dependent
        c.i32_const(0)
            .i32_const(4)
            .mem(Opcode::I32Load, 2, n * 4 + 4)
            .mem(Opcode::I32Store, 2, 4);
    });
    c.i32_const(8).mem(Opcode::I32Load, 2, n * 4).local_get(sum).op(Opcode::I32Add);
    wrap_kernel(
        (2 * n as u64 + 8) * 4,
        n,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32; 5],
        c.finish(),
        n as i32,
    )
}

/// A streaming triad (`a[i] = b[i] + s * c[i]`) plus reduction, the shape of
/// PolyBench's vector kernels.
pub fn triad(n: u32) -> Module {
    let mut c = CodeBuilder::new();
    let (narg, i, sum, bound) = (0u32, 1u32, 2u32, 3u32);
    let b_off = n * 4;
    let c_off = 2 * n * 4;
    c.local_get(narg).local_set(bound);
    emit_for(&mut c, i, 0, bound, |c| {
        c.local_get(i).i32_const(4).op(Opcode::I32Mul).local_tee(sum);
        // a[i] = b[i] + 3 * c[i]
        c.local_get(sum).mem(Opcode::I32Load, 2, b_off);
        c.local_get(sum)
            .mem(Opcode::I32Load, 2, c_off)
            .i32_const(3)
            .op(Opcode::I32Mul)
            .op(Opcode::I32Add);
        c.mem(Opcode::I32Store, 2, 0);
    });
    // reduce
    c.i32_const(0).local_set(sum);
    emit_for(&mut c, i, 0, bound, |c| {
        c.local_get(i)
            .i32_const(4)
            .op(Opcode::I32Mul)
            .mem(Opcode::I32Load, 2, 0)
            .local_get(sum)
            .op(Opcode::I32Add)
            .local_set(sum);
    });
    c.local_get(sum);
    wrap_kernel(
        3 * n as u64 * 4 + 64,
        3 * n,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32; 3],
        c.finish(),
        n as i32,
    )
}

/// ARX (add-rotate-xor) rounds over locals: the shape of a ChaCha/Salsa
/// quarter-round loop. Purely register traffic, no memory.
pub fn arx_rounds(rounds: u32) -> Module {
    let mut c = CodeBuilder::new();
    // Locals: 0 = rounds (param), 1 = r, 2..6 = state a,b,cc,d, 7 = bound
    let (rarg, r, a, b, cc, d, bound) = (0u32, 1u32, 2u32, 3u32, 4u32, 5u32, 6u32);
    c.i32_const(0x61707865).local_set(a);
    c.i32_const(0x3320646e).local_set(b);
    c.i32_const(0x79622d32).local_set(cc);
    c.i32_const(0x6b206574).local_set(d);
    c.local_get(rarg).local_set(bound);
    emit_for(&mut c, r, 0, bound, |c| {
        // a += b; d ^= a; d = rotl(d, 16)
        c.local_get(a).local_get(b).op(Opcode::I32Add).local_set(a);
        c.local_get(d).local_get(a).op(Opcode::I32Xor).i32_const(16).op(Opcode::I32Rotl).local_set(d);
        // cc += d; b ^= cc; b = rotl(b, 12)
        c.local_get(cc).local_get(d).op(Opcode::I32Add).local_set(cc);
        c.local_get(b).local_get(cc).op(Opcode::I32Xor).i32_const(12).op(Opcode::I32Rotl).local_set(b);
        // a += b; d ^= a; d = rotl(d, 8)
        c.local_get(a).local_get(b).op(Opcode::I32Add).local_set(a);
        c.local_get(d).local_get(a).op(Opcode::I32Xor).i32_const(8).op(Opcode::I32Rotl).local_set(d);
        // cc += d; b ^= cc; b = rotl(b, 7)
        c.local_get(cc).local_get(d).op(Opcode::I32Add).local_set(cc);
        c.local_get(b).local_get(cc).op(Opcode::I32Xor).i32_const(7).op(Opcode::I32Rotl).local_set(b);
    });
    c.local_get(a)
        .local_get(b)
        .op(Opcode::I32Xor)
        .local_get(cc)
        .op(Opcode::I32Xor)
        .local_get(d)
        .op(Opcode::I32Xor);
    wrap_kernel(
        4096,
        16,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32; 6],
        c.finish(),
        rounds as i32,
    )
}

/// Hash-style mixing over a memory buffer (absorb words, mix, accumulate):
/// the shape of SHA/Blake compression loops in libsodium.
pub fn hash_stream(words: u32, passes: u32) -> Module {
    let mut c = CodeBuilder::new();
    // Locals: 0 = words, 1 = p, 2 = i, 3 = h, 4 = w, 5 = bound_p, 6 = bound_i
    let (warg, p, i, h, w, bound_p, bound_i) = (0u32, 1u32, 2u32, 3u32, 4u32, 5u32, 6u32);
    c.i32_const(0x811C9DC5u32 as i32).local_set(h);
    c.i32_const(passes as i32).local_set(bound_p);
    c.local_get(warg).local_set(bound_i);
    emit_for(&mut c, p, 0, bound_p, |c| {
        emit_for(c, i, 0, bound_i, |c| {
            c.local_get(i)
                .i32_const(4)
                .op(Opcode::I32Mul)
                .mem(Opcode::I32Load, 2, 0)
                .local_set(w);
            // h = (h ^ w) * 16777619; h = rotl(h, 13) - w
            c.local_get(h)
                .local_get(w)
                .op(Opcode::I32Xor)
                .i32_const(16777619)
                .op(Opcode::I32Mul)
                .local_set(h);
            c.local_get(h)
                .i32_const(13)
                .op(Opcode::I32Rotl)
                .local_get(w)
                .op(Opcode::I32Sub)
                .local_set(h);
        });
    });
    c.local_get(h);
    wrap_kernel(
        words as u64 * 4 + 64,
        words,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32; 6],
        c.finish(),
        words as i32,
    )
}

/// 64-bit arithmetic mixing (the shape of poly1305 / siphash inner loops).
pub fn wide_mix(rounds: u32) -> Module {
    let mut c = CodeBuilder::new();
    // Locals: 0 = rounds, 1 = r, 2 = bound, 3..4 = i64 state
    let (rarg, r, bound) = (0u32, 1u32, 2u32);
    let (x, y) = (3u32, 4u32);
    c.i64_const(0x736f6d6570736575).local_set(x);
    c.i64_const(0x646f72616e646f6d).local_set(y);
    c.local_get(rarg).local_set(bound);
    emit_for(&mut c, r, 0, bound, |c| {
        c.local_get(x).local_get(y).op(Opcode::I64Add).local_set(x);
        c.local_get(y).i64_const(13).op(Opcode::I64Rotl).local_get(x).op(Opcode::I64Xor).local_set(y);
        c.local_get(x).i64_const(32).op(Opcode::I64Rotl).local_set(x);
        c.local_get(x).local_get(y).op(Opcode::I64Mul).i64_const(0x9E3779B97F4A7C15u64 as i64).op(Opcode::I64Xor).local_set(x);
    });
    c.local_get(x).local_get(y).op(Opcode::I64Xor).op(Opcode::I32WrapI64);
    wrap_kernel(
        4096,
        16,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32, ValueType::I32, ValueType::I64, ValueType::I64],
        c.finish(),
        rounds as i32,
    )
}

/// Floating-point n-body style computation (the shape of Ostrich's nbody and
/// lavamd kernels): pairwise f64 interactions over arrays.
pub fn float_nbody(bodies: u32, steps: u32) -> Module {
    let mut c = CodeBuilder::new();
    // Locals: 0 = bodies, 1 = s, 2 = i, 3 = j, 4 = f64 acc, 5 = f64 dx, 6 = bound_s, 7 = bound_i
    let (narg, s, i, j, bound_s, bound_i) = (0u32, 1u32, 2u32, 3u32, 6u32, 7u32);
    let (acc, dx) = (4u32, 5u32);
    // Memory layout: LCG words at 0, positions (f64) at `pos`, velocities at `vel`.
    let pos = 8192u32;
    let vel = pos + bodies * 8;
    c.i32_const(steps as i32).local_set(bound_s);
    c.local_get(narg).local_set(bound_i);
    // Derive well-formed positions from the integer LCG words so no NaNs can
    // appear in the float math.
    emit_for(&mut c, i, 0, bound_i, |c| {
        c.local_get(i).i32_const(8).op(Opcode::I32Mul);
        c.local_get(i)
            .i32_const(4)
            .op(Opcode::I32Mul)
            .mem(Opcode::I32Load, 2, 0)
            .op(Opcode::F64ConvertI32S)
            .f64_const(1e-6)
            .op(Opcode::F64Mul);
        c.mem(Opcode::F64Store, 3, pos);
    });
    emit_for(&mut c, s, 0, bound_s, |c| {
        emit_for(c, i, 0, bound_i, |c| {
            c.f64_const(0.0).local_set(acc);
            emit_for(c, j, 0, bound_i, |c| {
                // dx = pos[i] - pos[j]; acc += dx * dx + 0.5
                c.local_get(i)
                    .i32_const(8)
                    .op(Opcode::I32Mul)
                    .mem(Opcode::F64Load, 3, pos);
                c.local_get(j)
                    .i32_const(8)
                    .op(Opcode::I32Mul)
                    .mem(Opcode::F64Load, 3, pos);
                c.op(Opcode::F64Sub).local_tee(dx);
                c.local_get(dx).op(Opcode::F64Mul).f64_const(0.5).op(Opcode::F64Add);
                c.local_get(acc).op(Opcode::F64Add).local_set(acc);
            });
            // vel[i] += acc * 0.01
            c.local_get(i)
                .i32_const(8)
                .op(Opcode::I32Mul)
                .local_get(i)
                .i32_const(8)
                .op(Opcode::I32Mul)
                .mem(Opcode::F64Load, 3, vel)
                .local_get(acc)
                .f64_const(0.01)
                .op(Opcode::F64Mul)
                .op(Opcode::F64Add)
                .mem(Opcode::F64Store, 3, vel);
        });
    });
    // checksum: i32 truncation of sum of velocities (bounded)
    c.f64_const(0.0).local_set(acc);
    emit_for(&mut c, i, 0, bound_i, |c| {
        c.local_get(i)
            .i32_const(8)
            .op(Opcode::I32Mul)
            .mem(Opcode::F64Load, 3, vel)
            .local_get(acc)
            .op(Opcode::F64Add)
            .local_set(acc);
    });
    c.local_get(acc)
        .f64_const(1e12)
        .op(Opcode::F64Min)
        .f64_const(-1e12)
        .op(Opcode::F64Max)
        .op(Opcode::I32TruncF64S);
    wrap_kernel(
        pos as u64 + bodies as u64 * 16 + 4096,
        bodies,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![
            ValueType::I32,
            ValueType::I32,
            ValueType::I32,
            ValueType::F64,
            ValueType::F64,
            ValueType::I32,
            ValueType::I32,
        ],
        c.finish(),
        bodies as i32,
    )
}

/// Pointer-chasing / index-walking kernel (the shape of BFS and sparse
/// traversals in Ostrich): data-dependent loads and branches.
pub fn graph_walk(nodes: u32, steps: u32) -> Module {
    let mut c = CodeBuilder::new();
    // Locals: 0 = nodes, 1 = s, 2 = idx, 3 = count, 4 = bound
    let (narg, s, idx, count, bound) = (0u32, 1u32, 2u32, 3u32, 4u32);
    c.i32_const(steps as i32).local_set(bound);
    c.i32_const(0).local_set(idx);
    emit_for(&mut c, s, 0, bound, |c| {
        // idx = mem[idx*4] % nodes ; count += (idx & 1) ? idx : 1
        c.local_get(idx)
            .i32_const(4)
            .op(Opcode::I32Mul)
            .mem(Opcode::I32Load, 2, 0)
            .local_get(narg)
            .op(Opcode::I32RemU)
            .local_set(idx);
        c.local_get(idx)
            .i32_const(1)
            .op(Opcode::I32And)
            .if_(BlockType::Value(ValueType::I32))
            .local_get(idx)
            .else_()
            .i32_const(1)
            .end()
            .local_get(count)
            .op(Opcode::I32Add)
            .local_set(count);
    });
    c.local_get(count);
    wrap_kernel(
        nodes as u64 * 4 + 64,
        nodes,
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32; 4],
        c.finish(),
        nodes as i32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::validate::validate;

    #[test]
    fn all_kernels_produce_valid_modules() {
        let modules = [
            ("matmul", dense_matmul(8)),
            ("stencil", stencil1d(32, 4)),
            ("triad", triad(32)),
            ("arx", arx_rounds(16)),
            ("hash", hash_stream(32, 2)),
            ("wide", wide_mix(16)),
            ("nbody", float_nbody(6, 2)),
            ("graph", graph_walk(16, 32)),
        ];
        for (name, module) in modules {
            validate(&module).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(module.exported_func("main").is_some(), "{name}");
            assert!(module.exported_func("kernel").is_some(), "{name}");
            assert!(module.total_code_bytes() > 50, "{name} is non-trivial");
        }
    }

    #[test]
    fn scale_reduces_sizes() {
        assert!(Scale::Test.iterations(1000) < Scale::Default.iterations(1000));
        assert!(Scale::Test.length(1000) < Scale::Default.length(1000));
        assert!(Scale::Test.iterations(8) >= 2);
        assert!(Scale::Test.length(8) >= 4);
    }

    #[test]
    fn encoded_modules_roundtrip() {
        let module = triad(16);
        let bytes = wasm::encode::encode(&module);
        let decoded = wasm::decode::decode(&bytes).unwrap();
        assert_eq!(decoded.funcs.len(), module.funcs.len());
        validate(&decoded).unwrap();
    }
}
