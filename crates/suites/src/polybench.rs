//! The PolyBenchC-like suite: 28 numerical line items.
//!
//! PolyBenchC consists of dense linear-algebra and stencil kernels. The
//! synthesized line items reproduce those loop shapes (triple-nested matrix
//! products, 1-D/2-D-style stencils, and streaming vector kernels) at a range
//! of problem sizes so per-suite averages and min/max error bars are
//! meaningful.

use crate::kernels::{self, Scale};
use crate::{BenchmarkItem, Suite};

/// Builds the 28-item PolyBenchC-like suite.
pub fn suite(scale: Scale) -> Suite {
    let mm = |n: u32| kernels::dense_matmul(scale.length(n));
    let st = |n: u32, it: u32| kernels::stencil1d(scale.length(n), scale.iterations(it));
    let tr = |n: u32| kernels::triad(scale.length(n));

    let items: Vec<(&'static str, wasm::Module)> = vec![
        ("gemm", mm(24)),
        ("2mm", mm(20)),
        ("3mm", mm(18)),
        ("syrk", mm(22)),
        ("syr2k", mm(26)),
        ("trmm", mm(16)),
        ("symm", mm(21)),
        ("doitgen", mm(14)),
        ("lu", mm(19)),
        ("ludcmp", mm(17)),
        ("cholesky", mm(15)),
        ("gramschmidt", mm(13)),
        ("correlation", mm(23)),
        ("covariance", mm(25)),
        ("floyd-warshall", mm(12)),
        ("nussinov", mm(11)),
        ("jacobi-1d", st(512, 64)),
        ("jacobi-2d", st(768, 48)),
        ("seidel-2d", st(640, 56)),
        ("fdtd-2d", st(896, 40)),
        ("heat-3d", st(448, 72)),
        ("adi", st(384, 80)),
        ("deriche", st(1024, 32)),
        ("atax", tr(2048)),
        ("bicg", tr(1792)),
        ("mvt", tr(2304)),
        ("gesummv", tr(1536)),
        ("trisolv", tr(1280)),
    ];
    Suite {
        name: "polybench",
        items: items
            .into_iter()
            .map(|(name, module)| BenchmarkItem {
                suite: "polybench",
                name: name.to_string(),
                module,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_28_items_with_polybench_names() {
        let s = suite(Scale::Test);
        assert_eq!(s.len(), 28);
        assert!(s.items.iter().any(|i| i.name == "gemm"));
        assert!(s.items.iter().any(|i| i.name == "jacobi-2d"));
        assert!(s.items.iter().all(|i| i.suite == "polybench"));
    }
}
