//! The sampling profiler's aggregation side: per-(function, tier) sample
//! counts and a text flame report.
//!
//! Samples are *driven* by the epoch machinery in the engine — every time an
//! execution loop notices the shared epoch advanced, it reports the function
//! and tier it is currently in. This module only aggregates: a sample is one
//! `HashMap` bump under a mutex, which is fine because samples arrive at
//! epoch granularity (≥100µs), not per instruction.

use crate::event::Tier;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Aggregated sampling profile over every activation a sink observed.
#[derive(Debug, Default)]
pub struct Profiler {
    samples: Mutex<HashMap<(u32, Tier), u64>>,
    total: AtomicU64,
}

/// One row of a profile: a (function, tier) bucket and its sample count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Function index (module function space).
    pub func: u32,
    /// Tier the samples were taken in.
    pub tier: Tier,
    /// Samples attributed to this bucket.
    pub samples: u64,
}

impl Profiler {
    /// An empty profile.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Records one sample of `func` executing in `tier`.
    pub fn record(&self, func: u32, tier: Tier) {
        *self
            .samples
            .lock()
            .expect("profiler poisoned")
            .entry((func, tier))
            .or_insert(0) += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far, across all buckets.
    pub fn total_samples(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Every bucket, hottest first (ties broken by function then tier for
    /// deterministic reports).
    pub fn snapshot(&self) -> Vec<ProfileEntry> {
        let mut rows: Vec<ProfileEntry> = self
            .samples
            .lock()
            .expect("profiler poisoned")
            .iter()
            .map(|(&(func, tier), &samples)| ProfileEntry { func, tier, samples })
            .collect();
        rows.sort_by(|a, b| {
            b.samples
                .cmp(&a.samples)
                .then(a.func.cmp(&b.func))
                .then(a.tier.cmp(&b.tier))
        });
        rows
    }

    /// Fraction of all samples attributed to `func` (any tier), in `[0, 1]`.
    pub fn share(&self, func: u32) -> f64 {
        let total = self.total_samples();
        if total == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .samples
            .lock()
            .expect("profiler poisoned")
            .iter()
            .filter(|&(&(f, _), _)| f == func)
            .map(|(_, &n)| n)
            .sum();
        hits as f64 / total as f64
    }

    /// A text flame report, hottest bucket first, with a proportional bar.
    /// `name` resolves a function index to a display name (return the index
    /// as a string when no name section exists).
    pub fn flame_report(&self, name: &dyn Fn(u32) -> String) -> String {
        let rows = self.snapshot();
        let total = self.total_samples();
        let mut out = String::new();
        out.push_str(&format!("sampling profile — {total} samples\n"));
        if total == 0 {
            return out;
        }
        let widest = rows
            .iter()
            .map(|r| name(r.func).len() + r.tier.label().len() + 1)
            .max()
            .unwrap_or(0);
        for row in rows {
            let pct = row.samples as f64 * 100.0 / total as f64;
            let bar_len = ((pct / 100.0) * 40.0).round() as usize;
            let label = format!("{}/{}", name(row.func), row.tier.label());
            out.push_str(&format!(
                "  {label:<widest$}  {samples:>8}  {pct:>6.2}%  {bar}\n",
                samples = row.samples,
                bar = "#".repeat(bar_len.max(1)),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_function_and_tier() {
        let p = Profiler::new();
        for _ in 0..9 {
            p.record(3, Tier::Opt);
        }
        p.record(3, Tier::Baseline);
        p.record(7, Tier::Interp);
        assert_eq!(p.total_samples(), 11);
        let rows = p.snapshot();
        assert_eq!(rows[0], ProfileEntry { func: 3, tier: Tier::Opt, samples: 9 });
        assert_eq!(rows.len(), 3);
        assert!((p.share(3) - 10.0 / 11.0).abs() < 1e-12);
        assert_eq!(p.share(99), 0.0);
    }

    #[test]
    fn flame_report_is_ranked_and_labelled() {
        let p = Profiler::new();
        for _ in 0..30 {
            p.record(0, Tier::Opt);
        }
        p.record(1, Tier::Interp);
        let report = p.flame_report(&|f| format!("f{f}"));
        let hot_line = report.lines().nth(1).unwrap();
        assert!(hot_line.contains("f0/opt"), "hottest first: {report}");
        assert!(hot_line.contains("30"));
        assert!(report.contains("f1/interp"));
        assert!(report.starts_with("sampling profile — 31 samples"));
    }

    #[test]
    fn empty_profile_reports_gracefully() {
        let p = Profiler::new();
        assert_eq!(p.snapshot(), vec![]);
        assert_eq!(p.flame_report(&|f| f.to_string()), "sampling profile — 0 samples\n");
    }
}
