//! Engine-wide observability: structured tracing, a metrics registry, and
//! the aggregation side of the epoch-driven sampling profiler.
//!
//! The crate is a *leaf* — it depends on nothing in the workspace, so every
//! layer (machine, interp, engine, serve, bench) can report into it without
//! dependency cycles. The engine threads one [`Telemetry`] handle through
//! execution, the compilation pipeline, the code cache, instance pools, and
//! the serving layer; everything those layers can say about themselves is a
//! typed [`EventKind`].
//!
//! Three pillars:
//!
//! - **Structured tracing** — each thread that emits events gets its own
//!   bounded, lock-free SPSC [`EventRing`]; [`Telemetry::drain`] collects the
//!   rings and [`chrome_trace`] renders them as Chrome trace-event JSON, so
//!   a whole serving run opens in Perfetto as per-worker timelines.
//! - **Metrics** — a [`MetricsRegistry`] of named atomic counters, gauges,
//!   and log₂-bucketed histograms; [`MetricsRegistry::snapshot`] feeds the
//!   `BENCH_*.json` reports.
//! - **Sampling profile** — the engine's execution loops report the current
//!   (function, tier) whenever the shared epoch advances; the [`Profiler`]
//!   aggregates those samples into per-function×tier counts and a text
//!   flame report.
//!
//! # The zero-cost-when-disabled contract
//!
//! A disabled handle ([`Telemetry::disabled`], also the `Default`) holds no
//! sink: every `emit` is one `Option` test on a `None` that never changes,
//! and the engine additionally gates its event construction on
//! [`Telemetry::is_enabled`]. Nothing in this crate ever charges simulated
//! cycles — enabling telemetry must not perturb the deterministic
//! `exec_cycles` measurements the paper's figures are built on (the fig16
//! gate enforces both properties).
//!
//! # Example
//!
//! ```
//! use telemetry::{EventKind, Telemetry, Tier};
//!
//! let telemetry = Telemetry::enabled();
//! telemetry.emit(EventKind::CacheLookup { hit: false });
//! telemetry.record_sample(3, Tier::Baseline);
//! if let Some(metrics) = telemetry.metrics() {
//!     metrics.counter("requests").inc();
//! }
//! let trace = telemetry.chrome_trace();
//! assert!(trace.contains("cache miss"));
//! assert_eq!(telemetry.profiler().unwrap().total_samples(), 1);
//! ```

#![warn(missing_docs)]

mod event;
mod metrics;
mod profile;
mod ring;
pub mod trace;

pub use event::{Backend, EventKind, Tier, TraceEvent};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use profile::{ProfileEntry, Profiler};
pub use ring::EventRing;
pub use trace::chrome_trace;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Distinguishes sinks in the thread-local ring registry: a thread can emit
/// into several engines' sinks over its lifetime.
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's rings, keyed by sink id. Small linear scan — a thread
    /// rarely talks to more than a couple of live sinks.
    static RINGS: RefCell<Vec<(u64, Arc<EventRing>)>> = const { RefCell::new(Vec::new()) };
}

/// The shared collection point behind an enabled [`Telemetry`] handle.
///
/// Owns the ring registry (one SPSC ring per emitting thread), the metrics
/// registry, the sampling profile, and the monotonic clock events are
/// stamped with.
pub struct TelemetrySink {
    id: u64,
    start: Instant,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<EventRing>>>,
    metrics: MetricsRegistry,
    profiler: Profiler,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("id", &self.id)
            .field("ring_capacity", &self.ring_capacity)
            .finish_non_exhaustive()
    }
}

impl TelemetrySink {
    fn new(ring_capacity: usize) -> TelemetrySink {
        TelemetrySink {
            id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            ring_capacity,
            rings: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
            profiler: Profiler::new(),
        }
    }

    /// Microseconds since the sink was created — the clock every event is
    /// stamped with.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn emit(&self, kind: EventKind) {
        let event = TraceEvent { t_us: self.now_us(), kind };
        RINGS.with(|cell| {
            let mut local = cell.borrow_mut();
            if let Some((_, ring)) = local.iter().find(|(id, _)| *id == self.id) {
                ring.push(event);
                return;
            }
            // First event from this thread into this sink: register a ring.
            // Entries whose sink has dropped its registry (our clone is the
            // last Arc) are dead weight — clear them while we're here.
            local.retain(|(_, ring)| Arc::strong_count(ring) > 1);
            let thread = std::thread::current();
            let label = thread
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("{:?}", thread.id()));
            let ring = Arc::new(EventRing::new(label, self.ring_capacity));
            self.rings.lock().expect("telemetry ring registry poisoned").push(Arc::clone(&ring));
            ring.push(event);
            local.push((self.id, ring));
        });
    }

    fn drain(&self) -> Vec<(String, Vec<TraceEvent>, u64)> {
        let rings = self.rings.lock().expect("telemetry ring registry poisoned");
        rings
            .iter()
            .map(|ring| {
                let mut events = Vec::with_capacity(ring.len());
                ring.drain_into(&mut events);
                (ring.label().to_string(), events, ring.dropped())
            })
            .collect()
    }

    fn dropped_events(&self) -> u64 {
        self.rings
            .lock()
            .expect("telemetry ring registry poisoned")
            .iter()
            .map(|ring| ring.dropped())
            .sum()
    }
}

/// A cheap, cloneable handle to a telemetry sink — or to nothing.
///
/// The engine, pipeline, pool, and serving layers all hold one of these.
/// Clones share the same sink, so a serving stack with one `Telemetry`
/// threaded through it produces a single coherent trace. The default handle
/// is disabled: emitting through it is a no-op behind one branch.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<TelemetrySink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.sink {
            Some(sink) => f.debug_tuple("Telemetry").field(sink).finish(),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// The no-op handle: every operation is a branch on `None`.
    pub fn disabled() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A handle with a fresh sink and [`DEFAULT_RING_CAPACITY`] rings.
    pub fn enabled() -> Telemetry {
        Telemetry::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A handle with a fresh sink whose per-thread rings hold
    /// `ring_capacity` events.
    pub fn with_ring_capacity(ring_capacity: usize) -> Telemetry {
        Telemetry { sink: Some(Arc::new(TelemetrySink::new(ring_capacity))) }
    }

    /// True when a sink is attached. Hot paths use this to skip event
    /// construction entirely.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records `kind` into this thread's ring (no-op when disabled).
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.emit(kind);
        }
    }

    /// Records one profiler sample of `func` running in `tier`, both in the
    /// aggregate profile and as a timeline event (no-op when disabled).
    #[inline]
    pub fn record_sample(&self, func: u32, tier: Tier) {
        if let Some(sink) = &self.sink {
            sink.profiler.record(func, tier);
            sink.emit(EventKind::Sample { func, tier });
        }
    }

    /// The sink's metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.sink.as_deref().map(|sink| &sink.metrics)
    }

    /// The sink's sampling profile, when enabled.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.sink.as_deref().map(|sink| &sink.profiler)
    }

    /// Moves every buffered event out of every ring, as
    /// `(thread label, events, dropped)` triples ordered by ring
    /// registration; `dropped` is that ring's cumulative overflow count, so
    /// consumers can tell a quiet ring from a saturated one. Empty when
    /// disabled. Rings stay registered and keep collecting.
    pub fn drain(&self) -> Vec<(String, Vec<TraceEvent>, u64)> {
        self.sink.as_deref().map(TelemetrySink::drain).unwrap_or_default()
    }

    /// Drains all rings and renders them as Chrome trace-event JSON.
    pub fn chrome_trace(&self) -> String {
        trace::chrome_trace(&self.drain())
    }

    /// Total events discarded across all rings because a ring was full
    /// (0 when disabled).
    pub fn dropped_events(&self) -> u64 {
        self.sink.as_deref().map(TelemetrySink::dropped_events).unwrap_or(0)
    }

    /// Microseconds since the sink was created; 0 when disabled. Event
    /// producers that measure spans (serve, compile) use this clock so their
    /// `dur_us` fields line up with ring timestamps.
    pub fn now_us(&self) -> u64 {
        self.sink.as_deref().map(TelemetrySink::now_us).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.emit(EventKind::FuelExhausted);
        t.record_sample(0, Tier::Interp);
        assert!(t.drain().is_empty());
        assert!(t.metrics().is_none());
        assert!(t.profiler().is_none());
        assert_eq!(t.dropped_events(), 0);
        assert_eq!(t.now_us(), 0);
        assert_eq!(format!("{t:?}"), "Telemetry(disabled)");
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.emit(EventKind::CacheLookup { hit: true });
        t.emit(EventKind::CacheLookup { hit: false });
        if let Some(m) = u.metrics() {
            m.counter("c").inc();
        }
        assert_eq!(t.metrics().unwrap().counter("c").get(), 1);
        let drained = t.drain();
        // Same thread → both events land in one ring, in order.
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].1.len(), 2);
        assert_eq!(drained[0].1[0].kind, EventKind::CacheLookup { hit: true });
        assert!(u.drain().iter().all(|(_, events, _)| events.is_empty()), "drain moved them out");
    }

    #[test]
    fn each_emitting_thread_gets_its_own_labelled_ring() {
        let t = Telemetry::enabled();
        t.emit(EventKind::FuelExhausted);
        let worker = {
            let t = t.clone();
            std::thread::Builder::new()
                .name("emitter".to_string())
                .spawn(move || {
                    for _ in 0..5 {
                        t.emit(EventKind::EpochInterrupt);
                    }
                })
                .unwrap()
        };
        worker.join().unwrap();
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        let named: Vec<&str> = drained.iter().map(|(label, _, _)| label.as_str()).collect();
        assert!(named.contains(&"emitter"), "rings carry thread names: {named:?}");
        let by_worker = drained.iter().find(|(label, _, _)| label == "emitter").unwrap();
        assert_eq!(by_worker.1.len(), 5);
    }

    #[test]
    fn two_sinks_on_one_thread_stay_separate() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        a.emit(EventKind::CacheLookup { hit: true });
        b.emit(EventKind::FuelExhausted);
        b.emit(EventKind::FuelExhausted);
        let da = a.drain();
        let db = b.drain();
        assert_eq!(da.iter().map(|(_, e, _)| e.len()).sum::<usize>(), 1);
        assert_eq!(db.iter().map(|(_, e, _)| e.len()).sum::<usize>(), 2);
        assert_eq!(da[0].1[0].kind, EventKind::CacheLookup { hit: true });
    }

    #[test]
    fn timestamps_are_monotonic_and_sample_events_hit_both_paths() {
        let t = Telemetry::enabled();
        t.record_sample(7, Tier::Opt);
        t.record_sample(7, Tier::Opt);
        t.record_sample(2, Tier::Interp);
        assert_eq!(t.profiler().unwrap().total_samples(), 3);
        assert!(t.profiler().unwrap().share(7) > 0.6);
        let drained = t.drain();
        let events = &drained[0].1;
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert!(matches!(events[0].kind, EventKind::Sample { func: 7, tier: Tier::Opt }));
    }
}
