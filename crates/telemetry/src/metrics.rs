//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms, all plain atomics on the update path.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! the registered instrument, so hot paths look a name up once and then
//! update lock-free. [`MetricsRegistry::snapshot`] captures a point-in-time
//! view suitable for serializing into the `BENCH_*.json` perf-trajectory
//! reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Log₂ histogram buckets: values land in bucket `bit_length(value)`, so
/// bucket `i > 0` covers `[2^(i-1), 2^i)` and bucket 0 holds zeros.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed value (queue depths, pool occupancy, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in µs, fuel units,
/// byte counts). Recording is a handful of relaxed atomic updates; exact
/// percentiles are traded for fixed memory and lock-freedom — a percentile
/// query answers with its bucket's upper bound.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

/// The bucket a value lands in: its bit length (0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let core = &*self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0–100), answered as the upper bound of the
    /// bucket containing that rank — an overestimate by at most 2×, the
    /// resolution log bucketing buys its fixed footprint with. The true
    /// min/max are tracked exactly and clamp the answer.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A named collection of instruments.
///
/// Names are registered on first use; looking up an existing name returns a
/// handle to the same instrument, so independent call sites incrementing
/// `"serve.requests"` share one counter.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Captures every instrument's current value, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time view of a whole [`MetricsRegistry`], ready to serialize.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(2);
        reg.counter("a").inc();
        assert_eq!(reg.counter("a").get(), 3);
        reg.gauge("g").set(7);
        reg.gauge("g").add(-2);
        assert_eq!(reg.gauge("g").get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 5)]);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);

        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let (name, hs) = &snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1106);
        assert_eq!((hs.min, hs.max), (1, 1000));
        assert!((hs.mean() - 221.2).abs() < 1e-9);
        // p50 of [1,2,3,100,1000] has rank 3 → the bucket of 3 ([2,4)).
        assert_eq!(hs.percentile(50.0), 3);
        // p100 lands in 1000's bucket [512, 1024), clamped to max.
        assert_eq!(hs.percentile(100.0), 1000);
        assert_eq!(hs.percentile(0.0), 1, "clamped to true min");
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        let reg = MetricsRegistry::new();
        reg.histogram("h");
        let snap = reg.snapshot();
        let hs = &snap.histograms[0].1;
        assert_eq!((hs.count, hs.min, hs.max), (0, 0, 0));
        assert_eq!(hs.percentile(99.0), 0);
        assert_eq!(hs.mean(), 0.0);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hits");
                    let h = reg.histogram("lat");
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 4000);
        assert_eq!(reg.histogram("lat").count(), 4000);
    }
}
