//! Bounded, lock-free, single-producer event rings — one per
//! (thread, sink) pair.
//!
//! The producer side is the hot path: an `emit` from execution or a compile
//! worker must never take a lock or allocate. Each thread therefore owns its
//! ring exclusively for writes, and the ring is a classic SPSC circular
//! buffer: monotonically increasing `head` (writes) and `tail` (reads)
//! counters over a fixed slot array. The single consumer is the drain path
//! (trace export / inspection), serialized by the sink's registry mutex, so
//! both ends of the protocol have exactly one owner.
//!
//! When the ring is full the *newest* event is dropped and counted — bounded
//! memory beats complete history for an always-on tracing layer, and the
//! `dropped` counter keeps the loss observable.

use crate::event::TraceEvent;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One thread's bounded event buffer.
///
/// Safety protocol: exactly one thread calls [`EventRing::push`] (the thread
/// the ring was created for) and at most one thread at a time calls
/// [`EventRing::drain_into`] (the sink serializes drains behind its registry
/// lock). `head`/`tail` are monotonic counters; a slot is written only while
/// `head - tail < capacity` and read only while `tail < head`, so the two
/// sides never touch the same slot concurrently.
pub struct EventRing {
    label: String,
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Next write position (monotonic; slot index is `head % capacity`).
    head: AtomicUsize,
    /// Next read position (monotonic).
    tail: AtomicUsize,
    /// Events discarded because the ring was full.
    dropped: AtomicU64,
}

// SAFETY: the slot array is only accessed under the SPSC protocol described
// on the type — disjoint slots for concurrent producer/consumer, with
// release/acquire ordering on head/tail publishing the slot contents.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (minimum 8).
    pub fn new(label: String, capacity: usize) -> EventRing {
        let capacity = capacity.max(8);
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(TraceEvent::FILLER))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            label,
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The thread label the ring was registered under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends an event. Producer side: must only be called from the ring's
    /// owning thread. On a full ring the event is dropped (and counted), not
    /// blocked on — tracing must never stall execution.
    pub fn push(&self, event: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[head % self.slots.len()];
        // SAFETY: `head - tail < capacity`, so the consumer cannot be
        // reading this slot; this thread is the only producer.
        unsafe { *slot.get() = event };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Moves every buffered event into `out`, oldest first. Consumer side:
    /// callers must serialize (the sink drains under its registry lock).
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            let slot = &self.slots[tail % self.slots.len()];
            // SAFETY: `tail < head`, so the producer has finished writing
            // this slot (release store on head) and cannot overwrite it
            // until tail advances past it.
            out.push(unsafe { *slot.get() });
            tail = tail.wrapping_add(1);
            self.tail.store(tail, Ordering::Release);
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent {
            t_us: t,
            kind: EventKind::CacheLookup { hit: t.is_multiple_of(2) },
        }
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let ring = EventRing::new("t".into(), 16);
        for i in 0..10 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 10);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert!(ring.is_empty());
        assert_eq!(out.len(), 10);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.t_us, i as u64);
        }
        // Post-drain pushes wrap the slot array transparently.
        for i in 10..20 {
            ring.push(ev(i));
        }
        out.clear();
        ring.drain_into(&mut out);
        assert_eq!(out.first().map(|e| e.t_us), Some(10));
        assert_eq!(out.last().map(|e| e.t_us), Some(19));
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn a_full_ring_drops_newest_and_counts() {
        let ring = EventRing::new("t".into(), 8);
        for i in 0..12 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.dropped(), 4);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        // The oldest 8 survive; the overflow was dropped at the tail end.
        assert_eq!(out.iter().map(|e| e.t_us).collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producer_and_consumer_lose_nothing_when_not_full() {
        let ring = std::sync::Arc::new(EventRing::new("spsc".into(), 1 << 14));
        let producer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    ring.push(ev(i));
                }
            })
        };
        let mut seen: Vec<TraceEvent> = Vec::new();
        while seen.len() < 10_000 {
            ring.drain_into(&mut seen);
            std::thread::yield_now();
        }
        producer.join().unwrap();
        assert_eq!(ring.dropped(), 0);
        for (i, e) in seen.iter().enumerate() {
            assert_eq!(e.t_us, i as u64, "in-order, no tearing");
        }
    }
}
