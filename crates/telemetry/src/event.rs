//! The typed event model: everything the engine, pipeline, cache, pool, and
//! serving layers can say about themselves, as small `Copy` payloads.
//!
//! Events deliberately use only scalar fields and `&'static str` references
//! so a [`TraceEvent`](crate::TraceEvent) fits in a couple of machine words
//! and pushing one into a ring buffer is a handful of stores — no
//! allocation, no formatting, no locks on the producer side. Formatting
//! happens once, at export time ([`crate::trace`]).

/// The execution tier an event refers to, in the engine's promotion order.
///
/// A standalone copy of the engine's tier notions (interpreter frames plus
/// the two `CompileTier`s) so this crate stays a leaf dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// The in-place interpreter (tier 0).
    Interp,
    /// The single-pass baseline compiler (tier 1).
    Baseline,
    /// The SSA optimizing compiler (tier 2).
    Opt,
}

impl Tier {
    /// A short, stable label for reports and trace names.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Interp => "interp",
            Tier::Baseline => "baseline",
            Tier::Opt => "opt",
        }
    }
}

/// The macro-assembler backend a compilation event ran through — a leaf-crate
/// mirror of the machine crate's `CodeBackend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The virtual-ISA simulator backend.
    VirtualIsa,
    /// The real x86-64 byte emitter.
    X64,
}

impl Backend {
    /// A short, stable label for reports and trace names.
    pub fn label(self) -> &'static str {
        match self {
            Backend::VirtualIsa => "virt",
            Backend::X64 => "x64",
        }
    }
}

/// One structured event. All payloads are `Copy`; durations and sizes are
/// carried inline so the consumer never has to correlate ring positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A compilation of one function began on this thread.
    CompileStart {
        /// Function index (module function space).
        func: u32,
        /// Tier being compiled for.
        tier: Tier,
        /// Backend emitting the code.
        backend: Backend,
    },
    /// A compilation finished; the matching [`EventKind::CompileStart`] is
    /// `dur_us` earlier on the same thread.
    CompileEnd {
        /// Function index (module function space).
        func: u32,
        /// Tier compiled for.
        tier: Tier,
        /// Backend that emitted the code.
        backend: Backend,
        /// Wasm bytes of the function body.
        wasm_bytes: u32,
        /// Machine-code bytes produced.
        machine_bytes: u32,
        /// Compilation wall time in microseconds.
        dur_us: u64,
    },
    /// A code-cache lookup at instantiation.
    CacheLookup {
        /// True for a hit (artifact reused), false for a miss.
        hit: bool,
    },
    /// Newly-compiled code for a function was published into the shared
    /// artifact (a tier-up/lazy compilation became visible to executions).
    TierUp {
        /// Function index (module function space).
        func: u32,
        /// The tier the published code belongs to.
        tier: Tier,
    },
    /// Execution trapped. Carries the innermost backtrace frame so the
    /// timeline pinpoints the fault without a side channel to the full
    /// diagnostics (which live on the instance); payloads stay `Copy`.
    Trap {
        /// The spec-style trap message (`TrapReason::wast_message`).
        reason: &'static str,
        /// Function index of the innermost (faulting) frame.
        func: u32,
        /// Wasm bytecode offset of the faulting instruction within it.
        offset: u32,
        /// True activation-stack depth at trap time (counting frames a
        /// truncated backtrace dropped).
        depth: u32,
    },
    /// A fuel budget ran out (`OutOfFuel`).
    FuelExhausted,
    /// An epoch deadline preempted execution (`Interrupted`).
    EpochInterrupt,
    /// An instance-pool checkout.
    PoolCheckout {
        /// The pool's label (the serving layer sets it to the app index).
        app: u32,
        /// True for the snapshot-reset path, false for a cold instantiation.
        warm: bool,
    },
    /// A request entered a worker mailbox.
    ServeEnqueue {
        /// Position of the request in its batch.
        request: u32,
        /// Target app index.
        app: u32,
    },
    /// A worker started executing a request.
    ServeStart {
        /// Position of the request in its batch.
        request: u32,
        /// Target app index.
        app: u32,
    },
    /// A worker finished a request; the matching [`EventKind::ServeStart`]
    /// is `dur_us` earlier on the same thread.
    ServeFinish {
        /// Position of the request in its batch.
        request: u32,
        /// Target app index.
        app: u32,
        /// True if the request returned normally.
        ok: bool,
        /// Service wall time in microseconds.
        dur_us: u64,
    },
    /// A running activation was transferred mid-loop into optimizing-tier
    /// code (on-stack replacement).
    OsrEnter {
        /// Function index (module function space).
        func: u32,
        /// Bytecode offset of the loop-body start the frame entered at.
        offset: u32,
    },
    /// The sampling profiler observed an activation (also aggregated in
    /// [`crate::Profiler`]; the ring copy keeps samples on the timeline).
    Sample {
        /// Function index of the sampled activation.
        func: u32,
        /// Tier the activation was executing in.
        tier: Tier,
    },
}

/// One timestamped event as stored in a ring buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the sink's creation (monotonic).
    pub t_us: u64,
    /// The typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The inert slot filler rings initialize with; never observed by a
    /// consumer (the head/tail protocol only reads written slots).
    pub(crate) const FILLER: TraceEvent = TraceEvent {
        t_us: 0,
        kind: EventKind::FuelExhausted,
    };
}
