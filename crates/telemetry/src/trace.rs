//! Chrome trace-event JSON export.
//!
//! Turns drained event rings into the trace-event format that `chrome://
//! tracing` and Perfetto load directly: one `"M"` (metadata) record naming
//! each ring's thread, `"X"` (complete-span) records for events that carry
//! their own duration (compile end, serve finish), and `"i"` (instant)
//! records for everything else. Timestamps are the sink-relative
//! microsecond clock events were recorded with, so per-worker timelines line
//! up on a shared axis.
//!
//! The JSON is assembled by hand — the workspace is offline and carries no
//! serialization dependency; the format is shallow enough that an escape
//! helper and `format!` are the whole encoder.

use crate::event::{EventKind, TraceEvent};

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `name` and `args` fragments for one event, plus its span duration if
/// it closes one.
fn render(kind: &EventKind) -> (String, String, Option<u64>) {
    match kind {
        EventKind::CompileStart { func, tier, backend } => (
            format!("compile f{func} {}", tier.label()),
            format!(
                "{{\"func\":{func},\"tier\":\"{}\",\"backend\":\"{}\",\"phase\":\"start\"}}",
                tier.label(),
                backend.label()
            ),
            None,
        ),
        EventKind::CompileEnd { func, tier, backend, wasm_bytes, machine_bytes, dur_us } => (
            format!("compile f{func} {}", tier.label()),
            format!(
                "{{\"func\":{func},\"tier\":\"{}\",\"backend\":\"{}\",\"wasm_bytes\":{wasm_bytes},\"machine_bytes\":{machine_bytes}}}",
                tier.label(),
                backend.label()
            ),
            Some(*dur_us),
        ),
        EventKind::CacheLookup { hit } => (
            format!("cache {}", if *hit { "hit" } else { "miss" }),
            format!("{{\"hit\":{hit}}}"),
            None,
        ),
        EventKind::TierUp { func, tier } => (
            format!("tier-up f{func} -> {}", tier.label()),
            format!("{{\"func\":{func},\"tier\":\"{}\"}}", tier.label()),
            None,
        ),
        EventKind::Trap { reason, func, offset, depth } => (
            format!("trap f{func}"),
            format!(
                "{{\"reason\":\"{}\",\"func\":{func},\"offset\":{offset},\"depth\":{depth}}}",
                escape(reason)
            ),
            None,
        ),
        EventKind::FuelExhausted => ("fuel exhausted".to_string(), "{}".to_string(), None),
        EventKind::EpochInterrupt => ("epoch interrupt".to_string(), "{}".to_string(), None),
        EventKind::PoolCheckout { app, warm } => (
            format!("pool checkout {}", if *warm { "warm" } else { "cold" }),
            format!("{{\"app\":{app},\"warm\":{warm}}}"),
            None,
        ),
        EventKind::ServeEnqueue { request, app } => (
            format!("enqueue r{request}"),
            format!("{{\"request\":{request},\"app\":{app}}}"),
            None,
        ),
        EventKind::ServeStart { request, app } => (
            format!("serve r{request}"),
            format!("{{\"request\":{request},\"app\":{app},\"phase\":\"start\"}}"),
            None,
        ),
        EventKind::ServeFinish { request, app, ok, dur_us } => (
            format!("serve r{request}"),
            format!("{{\"request\":{request},\"app\":{app},\"ok\":{ok}}}"),
            Some(*dur_us),
        ),
        EventKind::OsrEnter { func, offset } => (
            format!("osr f{func} @{offset}"),
            format!("{{\"func\":{func},\"offset\":{offset}}}"),
            None,
        ),
        EventKind::Sample { func, tier } => (
            format!("sample f{func}"),
            format!("{{\"func\":{func},\"tier\":\"{}\"}}", tier.label()),
            None,
        ),
    }
}

/// Renders drained rings as a Chrome trace-event JSON document.
///
/// `rings` is `(thread label, events, dropped)` per ring, as produced by
/// [`crate::Telemetry::drain`]. All rings share `pid` 1; each ring becomes
/// one `tid` with an `"M"` thread-name record so viewers show the label.
///
/// A ring that overflowed (nonzero `dropped`) gets a `"C"` counter record
/// named `events dropped`, so a lossy trace declares its loss on the ring's
/// own timeline instead of silently truncating the end of a burst.
pub fn chrome_trace(rings: &[(String, Vec<TraceEvent>, u64)]) -> String {
    let mut records = Vec::new();
    for (tid0, (label, events, dropped)) in rings.iter().enumerate() {
        let tid = tid0 + 1;
        records.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        ));
        if *dropped > 0 {
            let ts = events.last().map(|e| e.t_us).unwrap_or(0);
            records.push(format!(
                "{{\"ph\":\"C\",\"name\":\"events dropped\",\"cat\":\"engine\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"dropped\":{dropped}}}}}",
            ));
        }
        for event in events {
            let (name, args, dur) = render(&event.kind);
            let record = match dur {
                // A span's end-event timestamp is its close; the trace format
                // wants the open, so back the start out of the duration.
                Some(dur_us) => format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"engine\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{dur_us},\"args\":{args}}}",
                    escape(&name),
                    event.t_us.saturating_sub(dur_us),
                ),
                None => format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"engine\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"args\":{args}}}",
                    escape(&name),
                    event.t_us,
                ),
            };
            records.push(record);
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&records.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Backend, Tier};

    #[test]
    fn spans_instants_and_thread_names_render() {
        let rings = vec![
            (
                "worker-0".to_string(),
                vec![
                    TraceEvent {
                        t_us: 40,
                        kind: EventKind::CompileEnd {
                            func: 2,
                            tier: Tier::Baseline,
                            backend: Backend::X64,
                            wasm_bytes: 10,
                            machine_bytes: 64,
                            dur_us: 15,
                        },
                    },
                    TraceEvent { t_us: 50, kind: EventKind::CacheLookup { hit: true } },
                ],
                0,
            ),
            (
                "worker-1".to_string(),
                vec![TraceEvent {
                    t_us: 90,
                    kind: EventKind::ServeFinish { request: 3, app: 1, ok: true, dur_us: 30 },
                }],
                0,
            ),
        ];
        let json = chrome_trace(&rings);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"worker-0\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        // The compile span opens at 40 - 15 = 25.
        assert!(json.contains("\"ph\":\"X\",\"name\":\"compile f2 baseline\",\"cat\":\"engine\",\"pid\":1,\"tid\":1,\"ts\":25,\"dur\":15"));
        assert!(json.contains("\"ph\":\"i\",\"name\":\"cache hit\""));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"serve r3\",\"cat\":\"engine\",\"pid\":1,\"tid\":2,\"ts\":60,\"dur\":30"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn every_event_kind_renders_without_panicking() {
        let kinds = [
            EventKind::CompileStart { func: 1, tier: Tier::Opt, backend: Backend::VirtualIsa },
            EventKind::CompileEnd {
                func: 1,
                tier: Tier::Opt,
                backend: Backend::VirtualIsa,
                wasm_bytes: 1,
                machine_bytes: 2,
                dur_us: 3,
            },
            EventKind::CacheLookup { hit: false },
            EventKind::TierUp { func: 4, tier: Tier::Baseline },
            EventKind::Trap { reason: "integer divide by zero", func: 2, offset: 9, depth: 3 },
            EventKind::FuelExhausted,
            EventKind::EpochInterrupt,
            EventKind::PoolCheckout { app: 0, warm: false },
            EventKind::ServeEnqueue { request: 0, app: 0 },
            EventKind::ServeStart { request: 0, app: 0 },
            EventKind::ServeFinish { request: 0, app: 0, ok: false, dur_us: 9 },
            EventKind::OsrEnter { func: 3, offset: 17 },
            EventKind::Sample { func: 2, tier: Tier::Interp },
        ];
        let events: Vec<TraceEvent> =
            kinds.iter().map(|&kind| TraceEvent { t_us: 100, kind }).collect();
        let json = chrome_trace(&[("main".to_string(), events, 0)]);
        // One record per event plus the thread-name metadata record.
        assert_eq!(json.matches("\"ph\":").count(), kinds.len() + 1);
        assert!(json.contains("integer divide by zero"));
    }

    #[test]
    fn an_overflowed_ring_declares_its_loss_in_the_trace() {
        let events = vec![TraceEvent { t_us: 75, kind: EventKind::FuelExhausted }];
        let json = chrome_trace(&[
            ("quiet".to_string(), events.clone(), 0),
            ("lossy".to_string(), events, 41),
        ]);
        // Only the lossy ring gets a counter record, stamped at its last
        // event's timestamp and carrying the overflow count.
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
        assert!(json.contains(
            "\"ph\":\"C\",\"name\":\"events dropped\",\"cat\":\"engine\",\"pid\":1,\"tid\":2,\"ts\":75,\"args\":{\"dropped\":41}"
        ));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
