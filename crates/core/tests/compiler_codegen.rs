//! Codegen-shape tests for the single-pass compiler's virtual-ISA backend.
//!
//! These tests inspect the emitted `MachInst` sequences, so they live
//! outside `compiler.rs`: the compiler itself emits exclusively through the
//! `Masm` macro-assembler trait and never constructs instructions directly.

use machine::inst::MachInst;
use spc::{
    CompiledFunction, CompilerOptions, ProbeKind, ProbeMode, ProbeSite, ProbeSites,
    SinglePassCompiler, TagStrategy,
};
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, Limits, ValueType};
use wasm::validate::validate;

fn compile_with(
    options: CompilerOptions,
    params: Vec<ValueType>,
    results: Vec<ValueType>,
    locals: Vec<ValueType>,
    code: CodeBuilder,
) -> CompiledFunction {
    let mut b = ModuleBuilder::new();
    b.add_memory(Limits::at_least(1));
    let f = b.add_func(FuncType::new(params, results), locals, code.finish());
    b.export_func("f", f);
    let module = b.finish();
    let info = validate(&module).expect("valid");
    SinglePassCompiler::new(options)
        .compile(&module, f, &info.funcs[0], &ProbeSites::none())
        .expect("compiles")
}

fn count_insts(cf: &CompiledFunction, pred: impl Fn(&MachInst) -> bool) -> usize {
    cf.code.insts().iter().filter(|i| pred(i)).count()
}

#[test]
fn straight_line_add_compiles_small() {
    let mut c = CodeBuilder::new();
    c.local_get(0).local_get(1).op(Opcode::I32Add);
    let cf = compile_with(
        CompilerOptions::allopt(),
        vec![ValueType::I32, ValueType::I32],
        vec![ValueType::I32],
        vec![],
        c,
    );
    assert!(cf.code.len() < 12, "compact code:\n{}", cf.code.disassemble());
    assert_eq!(cf.num_results, 1);
    assert_eq!(cf.num_locals, 2);
    assert!(count_insts(&cf, |i| matches!(i, MachInst::Return)) >= 1);
}

#[test]
fn constants_fold_under_allopt_but_not_nokfold() {
    let mut c = CodeBuilder::new();
    c.i32_const(6).i32_const(7).op(Opcode::I32Mul);
    let folded = compile_with(
        CompilerOptions::allopt(),
        vec![],
        vec![ValueType::I32],
        vec![],
        c.clone(),
    );
    assert_eq!(folded.stats.constants_folded, 1);
    assert_eq!(
        count_insts(&folded, |i| matches!(i, MachInst::Alu { .. } | MachInst::AluImm { .. })),
        0,
        "multiply folded away:\n{}",
        folded.code.disassemble()
    );
    // The folded constant is stored directly by the epilogue.
    assert!(count_insts(&folded, |i| matches!(i, MachInst::StoreSlotImm { .. })) >= 1);

    let unfolded = compile_with(
        CompilerOptions::nokfold(),
        vec![],
        vec![ValueType::I32],
        vec![],
        c,
    );
    assert_eq!(unfolded.stats.constants_folded, 0);
    assert!(unfolded.code.len() > folded.code.len());
}

#[test]
fn immediate_selection_uses_imm_forms() {
    let mut c = CodeBuilder::new();
    c.local_get(0).i32_const(5).op(Opcode::I32Add);
    let isel = compile_with(
        CompilerOptions::allopt(),
        vec![ValueType::I32],
        vec![ValueType::I32],
        vec![],
        c.clone(),
    );
    assert_eq!(isel.stats.immediate_selections, 1);
    assert_eq!(count_insts(&isel, |i| matches!(i, MachInst::AluImm { .. })), 1);

    let noisel = compile_with(
        CompilerOptions::noisel(),
        vec![ValueType::I32],
        vec![ValueType::I32],
        vec![],
        c,
    );
    assert_eq!(noisel.stats.immediate_selections, 0);
    assert!(count_insts(&noisel, |i| matches!(i, MachInst::Alu { .. })) >= 1);
    assert!(noisel.code.len() > isel.code.len());
}

#[test]
fn multi_register_elides_moves() {
    // local.get 0 twice: with MR the second get shares the register.
    let mut c = CodeBuilder::new();
    c.local_get(0).local_get(0).op(Opcode::I32Add);
    let mr = compile_with(
        CompilerOptions::allopt(),
        vec![ValueType::I32],
        vec![ValueType::I32],
        vec![],
        c.clone(),
    );
    let nomr = compile_with(
        CompilerOptions::nomr(),
        vec![ValueType::I32],
        vec![ValueType::I32],
        vec![],
        c,
    );
    let mr_loads = count_insts(&mr, |i| {
        matches!(i, MachInst::LoadSlot { .. } | MachInst::Mov { .. })
    });
    let nomr_loads = count_insts(&nomr, |i| {
        matches!(i, MachInst::LoadSlot { .. } | MachInst::Mov { .. })
    });
    assert!(
        mr_loads < nomr_loads,
        "MR should elide a load/move: {mr_loads} vs {nomr_loads}"
    );
}

#[test]
fn tag_strategies_control_tag_stores() {
    let mut c = CodeBuilder::new();
    c.local_get(0)
        .i32_const(1)
        .op(Opcode::I32Add)
        .local_set(0)
        .local_get(0);
    let make = |strategy, name: &str| {
        compile_with(
            CompilerOptions::with_tagging(strategy, name),
            vec![ValueType::I32],
            vec![ValueType::I32],
            vec![],
            c.clone(),
        )
    };
    let notags = make(TagStrategy::None, "notags");
    let eager = make(TagStrategy::Eager, "eagertags");
    let ondemand = make(TagStrategy::OnDemand, "on-demand");
    let stackmaps = make(TagStrategy::Stackmaps, "maps");

    let tag_count =
        |cf: &CompiledFunction| count_insts(cf, |i| matches!(i, MachInst::StoreTag { .. }));
    assert_eq!(tag_count(&notags), 0);
    assert_eq!(tag_count(&stackmaps), 0);
    assert!(tag_count(&eager) > tag_count(&ondemand));
    // No calls or probes: on-demand only tags the returned result.
    assert!(tag_count(&ondemand) <= 1, "{}", ondemand.code.disassemble());
}

#[test]
fn stackmaps_recorded_at_call_sites() {
    let mut b = ModuleBuilder::new();
    let callee = b.add_func(
        FuncType::new(vec![], vec![]),
        vec![],
        CodeBuilder::new().finish(),
    );
    let mut c = CodeBuilder::new();
    c.local_get(0).call(callee).drop_();
    let f = b.add_func(
        FuncType::new(vec![ValueType::ExternRef], vec![]),
        vec![],
        c.finish(),
    );
    let module = b.finish();
    let info = validate(&module).unwrap();

    let cf = SinglePassCompiler::new(CompilerOptions {
        tagging: TagStrategy::Stackmaps,
        ..CompilerOptions::allopt()
    })
    .compile(&module, f, &info.funcs[1], &ProbeSites::none())
    .unwrap();
    assert_eq!(cf.stackmaps.len(), 1);
    let map = cf.stackmaps.iter().next().unwrap();
    assert!(map.is_ref(0), "the externref param is a root");
    assert_eq!(cf.call_sites.len(), 1);
    let site = cf.call_sites.values().next().unwrap();
    // One local + one operand (the externref pushed for... actually the
    // call has no args, so the callee base is locals + current height.
    assert_eq!(site.callee_slot_base, 2);
}

#[test]
fn branch_folding_removes_constant_branches() {
    let mut c = CodeBuilder::new();
    c.block(BlockType::Empty)
        .i32_const(0)
        .br_if(0)
        .i32_const(1)
        .drop_()
        .end();
    let folded = compile_with(CompilerOptions::allopt(), vec![], vec![], vec![], c.clone());
    assert_eq!(folded.stats.branches_folded, 1);
    assert_eq!(count_insts(&folded, |i| matches!(i, MachInst::BrIf { .. })), 0);

    let unfolded = compile_with(CompilerOptions::nokfold(), vec![], vec![], vec![], c);
    assert_eq!(unfolded.stats.branches_folded, 0);
    assert!(count_insts(&unfolded, |i| matches!(i, MachInst::BrIf { .. })) >= 1);
}

#[test]
fn loops_and_branches_compile_with_bound_labels() {
    let mut c = CodeBuilder::new();
    c.block(BlockType::Empty)
        .loop_(BlockType::Empty)
        .local_get(0)
        .op(Opcode::I32Eqz)
        .br_if(1)
        .local_get(0)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .local_set(0)
        .br(0)
        .end()
        .end()
        .local_get(0);
    let cf = compile_with(
        CompilerOptions::allopt(),
        vec![ValueType::I32],
        vec![ValueType::I32],
        vec![],
        c,
    );
    // Has a backward jump (the loop) and a forward branch (the exit).
    assert!(count_insts(&cf, |i| matches!(i, MachInst::Jump { .. })) >= 1);
    assert!(count_insts(&cf, |i| matches!(i, MachInst::BrIf { .. })) >= 1);
    assert!(cf.code.source_map().len() > 4, "debug metadata records source offsets");
}

#[test]
fn multi_value_rejected_without_mv_feature() {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.i32_const(1).i32_const(2);
    let f = b.add_func(
        FuncType::new(vec![], vec![ValueType::I32, ValueType::I32]),
        vec![],
        c.finish(),
    );
    let module = b.finish();
    let info = validate(&module).unwrap();
    let options = CompilerOptions {
        multi_value: false,
        ..CompilerOptions::allopt()
    };
    let err = SinglePassCompiler::new(options)
        .compile(&module, f, &info.funcs[0], &ProbeSites::none())
        .unwrap_err();
    assert!(err.to_string().contains("multi-value"));
}

#[test]
fn probes_compile_to_requested_shapes() {
    let build = |mode, kind| {
        let mut b = ModuleBuilder::new();
        let mut code = CodeBuilder::new();
        code.local_get(0).drop_().nop();
        let f = b.add_func(FuncType::new(vec![ValueType::I32], vec![]), vec![], code.finish());
        let module = b.finish();
        let info = validate(&module).unwrap();
        let mut probes = ProbeSites::none();
        // Attach at offset 2 (the drop instruction).
        probes.insert(2, ProbeSite { probe_id: 5, kind });
        let options = CompilerOptions {
            probe_mode: mode,
            ..CompilerOptions::allopt()
        };
        SinglePassCompiler::new(options)
            .compile(&module, f, &info.funcs[0], &probes)
            .unwrap()
    };
    let runtime = build(ProbeMode::Runtime, ProbeKind::TopOfStack);
    assert_eq!(count_insts(&runtime, |i| matches!(i, MachInst::ProbeRuntime { .. })), 1);
    let opt = build(ProbeMode::Optimized, ProbeKind::TopOfStack);
    assert_eq!(count_insts(&opt, |i| matches!(i, MachInst::ProbeTosValue { .. })), 1);
    let counter = build(ProbeMode::Optimized, ProbeKind::Counter { counter_id: 3 });
    assert_eq!(count_insts(&counter, |i| matches!(i, MachInst::ProbeCounter { .. })), 1);
    assert!(opt.code.len() < runtime.code.len(), "optimized probes avoid the flush");
}

#[test]
fn call_sites_record_callee_base() {
    let mut b = ModuleBuilder::new();
    let callee = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![],
        {
            let mut c = CodeBuilder::new();
            c.local_get(0);
            c.finish()
        },
    );
    let mut c = CodeBuilder::new();
    c.i32_const(9).i32_const(1).call(callee).op(Opcode::I32Add);
    let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
    let module = b.finish();
    let info = validate(&module).unwrap();
    let cf = SinglePassCompiler::default()
        .compile(&module, f, &info.funcs[1], &ProbeSites::none())
        .unwrap();
    assert_eq!(cf.call_sites.len(), 1);
    let site = cf.call_sites.values().next().unwrap();
    // No locals; two operands pushed; the call consumes one arg, so the
    // callee's frame starts at slot 1.
    assert_eq!(site.callee_slot_base, 1);
    assert_eq!(cf.frame_slots, 2);
}

#[test]
fn wazero_style_lowering_pass_still_compiles_correctly() {
    let mut c = CodeBuilder::new();
    c.local_get(0).i32_const(2).op(Opcode::I32Mul);
    let options = CompilerOptions {
        extra_lowering_pass: true,
        track_constants: false,
        instruction_selection: false,
        constant_folding: false,
        ..CompilerOptions::allopt()
    };
    let cf = compile_with(
        options,
        vec![ValueType::I32],
        vec![ValueType::I32],
        vec![],
        c,
    );
    assert!(count_insts(&cf, |i| matches!(i, MachInst::Alu { .. })) >= 1);
    assert!(count_insts(&cf, |i| matches!(i, MachInst::MovImm { .. })) >= 1);
}
