//! Compiler options: the feature axes of the paper's Fig. 3 and the
//! optimization / tagging configurations evaluated in Figs. 4–6.

/// How the compiler makes garbage-collection roots findable in frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagStrategy {
    /// No tags and no stackmaps: the host does no precise GC (wazero,
    /// wasm-now, wasmer-base in the paper's Fig. 3).
    None,
    /// Store value tags for every slot write at every instruction — the
    /// worst-case configuration, "exactly as an interpreter would do".
    Eager,
    /// Eagerly store tags for operand-stack slots only.
    EagerOperandsOnly,
    /// Eagerly store tags for local slots only.
    EagerLocalsOnly,
    /// Store tags on demand: only across observable points (calls, traps,
    /// probes), tracked by the abstract state. Wizard-SPC's default.
    OnDemand,
    /// Like on-demand, but locals are never tagged at runtime; the stack
    /// walker reconstructs their tags from the function's local declarations.
    Lazy,
    /// No dynamic tags; emit per-call-site stackmaps instead (v8-liftoff and
    /// sm-base).
    Stackmaps,
}

impl TagStrategy {
    /// True if this strategy ever emits dynamic tag stores.
    pub fn uses_tags(self) -> bool {
        !matches!(self, TagStrategy::None | TagStrategy::Stackmaps)
    }

    /// True if this strategy emits stackmap metadata.
    pub fn uses_stackmaps(self) -> bool {
        self == TagStrategy::Stackmaps
    }
}

/// How probes are compiled into JIT code (the Fig. 6 configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeMode {
    /// Call into the runtime, which looks up the probes attached at the site
    /// and fires them through a frame accessor (the unoptimized `jit`
    /// configuration).
    Runtime,
    /// Statically determine the attached probes and emit direct calls,
    /// intrinsifying counter probes and top-of-stack probes (`optjit`).
    Optimized,
}

/// All single-pass compiler options.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerOptions {
    /// Human-readable name of this configuration (used in reports).
    pub name: String,
    /// Allocate registers to slots at all. Disabling degenerates into a
    /// template compiler that keeps every value in memory.
    pub register_allocation: bool,
    /// Allow one register to cache more than one slot ("multiple register
    /// allocation", the `MR` feature). Disabling is the paper's `nomr`.
    pub multi_register: bool,
    /// Track constants in abstract values (`K`). Disabling is `nok`.
    pub track_constants: bool,
    /// Fold constant expressions and branches at compile time (`KF`).
    /// Disabling is `nokfold`.
    pub constant_folding: bool,
    /// Select immediate-mode instructions when an operand is a known
    /// constant (`ISEL`). Disabling is `noisel`.
    pub instruction_selection: bool,
    /// How GC roots are made findable.
    pub tagging: TagStrategy,
    /// Support multi-value blocks and functions (`MV`).
    pub multi_value: bool,
    /// How probes are compiled.
    pub probe_mode: ProbeMode,
    /// Perform an extra internal lowering pass before code generation,
    /// modelling engines (wazero) that translate to an intermediate form.
    pub extra_lowering_pass: bool,
    /// Use a copy-and-patch style template cache for code generation,
    /// modelling wasm-now's fast compile path.
    pub copy_and_patch: bool,
    /// Record a bytecode source map entry per instruction (full-fidelity
    /// debugging / tier transfer). Engines without baseline debugging
    /// support skip this.
    pub debug_metadata: bool,
}

impl Default for CompilerOptions {
    /// The default configuration is Wizard-SPC's `allopt`.
    fn default() -> CompilerOptions {
        CompilerOptions::allopt()
    }
}

impl CompilerOptions {
    /// `allopt`: every optimization enabled, on-demand tagging (Wizard-SPC's
    /// default configuration).
    pub fn allopt() -> CompilerOptions {
        CompilerOptions {
            name: "allopt".to_string(),
            register_allocation: true,
            multi_register: true,
            track_constants: true,
            constant_folding: true,
            instruction_selection: true,
            tagging: TagStrategy::OnDemand,
            multi_value: true,
            probe_mode: ProbeMode::Optimized,
            extra_lowering_pass: false,
            copy_and_patch: false,
            debug_metadata: true,
        }
    }

    /// `nok`: abstract values do not track constants (disables folding and
    /// immediate selection too, since both depend on constant tracking).
    pub fn nok() -> CompilerOptions {
        CompilerOptions {
            name: "nok".to_string(),
            track_constants: false,
            constant_folding: false,
            instruction_selection: false,
            ..CompilerOptions::allopt()
        }
    }

    /// `nokfold`: constants are tracked but never folded.
    pub fn nokfold() -> CompilerOptions {
        CompilerOptions {
            name: "nokfold".to_string(),
            constant_folding: false,
            ..CompilerOptions::allopt()
        }
    }

    /// `noisel`: no immediate-mode instruction selection.
    pub fn noisel() -> CompilerOptions {
        CompilerOptions {
            name: "noisel".to_string(),
            instruction_selection: false,
            ..CompilerOptions::allopt()
        }
    }

    /// `nomr`: a register can cache at most one slot at a time.
    pub fn nomr() -> CompilerOptions {
        CompilerOptions {
            name: "nomr".to_string(),
            multi_register: false,
            ..CompilerOptions::allopt()
        }
    }

    /// A configuration identical to `allopt` except for the tagging strategy
    /// (the Fig. 5 configurations).
    pub fn with_tagging(strategy: TagStrategy, name: &str) -> CompilerOptions {
        CompilerOptions {
            name: name.to_string(),
            tagging: strategy,
            ..CompilerOptions::allopt()
        }
    }

    /// The Fig. 4 optimization-ablation configurations, in presentation order.
    pub fn figure4_configs() -> Vec<CompilerOptions> {
        vec![
            CompilerOptions::allopt(),
            CompilerOptions::nok(),
            CompilerOptions::nokfold(),
            CompilerOptions::noisel(),
            CompilerOptions::nomr(),
        ]
    }

    /// The Fig. 5 value-tag configurations, in presentation order. The
    /// baseline `notags` configuration comes first.
    pub fn figure5_configs() -> Vec<CompilerOptions> {
        vec![
            CompilerOptions::with_tagging(TagStrategy::None, "notags"),
            CompilerOptions::with_tagging(TagStrategy::Eager, "eagertags"),
            CompilerOptions::with_tagging(TagStrategy::EagerOperandsOnly, "eagertags-o"),
            CompilerOptions::with_tagging(TagStrategy::EagerLocalsOnly, "eagertags-l"),
            CompilerOptions::with_tagging(TagStrategy::OnDemand, "on-demand"),
            CompilerOptions::with_tagging(TagStrategy::Lazy, "lazytags"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_allopt() {
        let d = CompilerOptions::default();
        assert_eq!(d.name, "allopt");
        assert!(d.multi_register && d.track_constants && d.constant_folding);
        assert_eq!(d.tagging, TagStrategy::OnDemand);
    }

    #[test]
    fn ablation_configs_disable_one_axis_each() {
        assert!(!CompilerOptions::nok().track_constants);
        assert!(CompilerOptions::nokfold().track_constants);
        assert!(!CompilerOptions::nokfold().constant_folding);
        assert!(!CompilerOptions::noisel().instruction_selection);
        assert!(CompilerOptions::noisel().track_constants);
        assert!(!CompilerOptions::nomr().multi_register);
        assert!(CompilerOptions::nomr().register_allocation);
        assert_eq!(CompilerOptions::figure4_configs().len(), 5);
    }

    #[test]
    fn tag_strategy_classification() {
        assert!(!TagStrategy::None.uses_tags());
        assert!(!TagStrategy::Stackmaps.uses_tags());
        assert!(TagStrategy::Stackmaps.uses_stackmaps());
        assert!(TagStrategy::Eager.uses_tags());
        assert!(TagStrategy::OnDemand.uses_tags());
        assert!(!TagStrategy::OnDemand.uses_stackmaps());
    }

    #[test]
    fn figure5_configs_cover_all_strategies() {
        let configs = CompilerOptions::figure5_configs();
        assert_eq!(configs.len(), 6);
        assert_eq!(configs[0].name, "notags");
        assert!(configs.iter().any(|c| c.tagging == TagStrategy::Lazy));
        assert!(configs.iter().any(|c| c.tagging == TagStrategy::EagerOperandsOnly));
    }
}
