//! Compile-time description of instrumentation attached to a function.
//!
//! When a module is instrumented, the engine gives the compiler the set of
//! probed bytecode offsets. The compiler statically determines what to emit
//! at each site: an unoptimized runtime call, a direct call, or a fully
//! intrinsified sequence (counter increment, top-of-stack pass) — the
//! paper's Section IV-D optimizations evaluated in Fig. 6. Emission goes
//! through the probe operations of the [`machine::Masm`] macro-assembler
//! trait, so every backend (virtual ISA, x86-64) gets the same probe
//! shapes; backends return a site index the engine uses to route firings.

use std::collections::HashMap;

/// What kind of probe is attached at a site, which determines how far the
/// compiler can intrinsify it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// An arbitrary callback that needs full frame access.
    Generic,
    /// A counter increment (e.g. instruction or branch counts).
    Counter {
        /// The counter cell to increment.
        counter_id: u32,
    },
    /// A callback that only needs the top-of-stack value (e.g. the branch
    /// monitor reading the branch condition).
    TopOfStack,
}

/// A probe attached to one bytecode offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSite {
    /// Identifier the engine uses to route the firing to monitors.
    pub probe_id: u32,
    /// What the probe needs, for intrinsification.
    pub kind: ProbeKind,
}

/// The probes attached to one function, keyed by bytecode offset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeSites {
    sites: HashMap<u32, ProbeSite>,
}

impl ProbeSites {
    /// No instrumentation.
    pub fn none() -> ProbeSites {
        ProbeSites::default()
    }

    /// Attaches a probe at a bytecode offset (replacing any existing one).
    pub fn insert(&mut self, offset: u32, site: ProbeSite) {
        self.sites.insert(offset, site);
    }

    /// The probe at `offset`, if any.
    pub fn get(&self, offset: u32) -> Option<&ProbeSite> {
        self.sites.get(&offset)
    }

    /// The number of probed sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if no probes are attached.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over `(offset, site)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &ProbeSite)> {
        self.sites.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut sites = ProbeSites::none();
        assert!(sites.is_empty());
        sites.insert(
            10,
            ProbeSite {
                probe_id: 1,
                kind: ProbeKind::TopOfStack,
            },
        );
        sites.insert(
            20,
            ProbeSite {
                probe_id: 2,
                kind: ProbeKind::Counter { counter_id: 7 },
            },
        );
        assert_eq!(sites.len(), 2);
        assert_eq!(sites.get(10).unwrap().probe_id, 1);
        assert_eq!(sites.get(20).unwrap().kind, ProbeKind::Counter { counter_id: 7 });
        assert!(sites.get(15).is_none());
        assert_eq!(sites.iter().count(), 2);
    }
}
