//! The single-pass ("baseline") compiler.
//!
//! The compiler makes exactly one forward pass over the bytecode, mirroring
//! the validation algorithm: an abstract value stack tracks, for every local
//! and operand slot, whether its value is in memory, in a register, or a
//! compile-time constant (see [`crate::abstract_state`]). Code is emitted
//! instruction by instruction; there is no intermediate representation.
//!
//! All emission flows through the [`Masm`] macro-assembler trait, which
//! separates this translation strategy from target encoding: the same
//! compiler drives both the virtual-ISA
//! [`machine::asm::Assembler`] (whose [`CodeBuffer`] the CPU
//! simulator executes) and the x86-64 backend
//! ([`machine::x64_masm::X64Masm`]), which emits real machine bytes. This is
//! the structure every production baseline compiler surveyed by the paper
//! uses to serve multiple ISAs from one compiler design.
//!
//! Within straight-line code the compiler performs the optimizations the
//! paper attributes to abstract interpretation: forward register allocation
//! (with optional multi-register sharing), constant tracking and folding,
//! branch folding, immediate-mode instruction selection, redundant-spill
//! avoidance, and value-tag elision. At control-flow boundaries the abstract
//! state is flushed to the canonical "everything in its home slot" state —
//! the "spill the rest" snapshot strategy described in Section III — which
//! keeps merges O(1) and immune to JIT bombs.
//!
//! Calls, traps, and probes are *observable points*: live values (and,
//! depending on the [`TagStrategy`], their tags) are written to the value
//! stack there, which is what makes the paper's on-demand tagging nearly
//! free in straight-line code.

use crate::abstract_state::{AbstractState, Loc, SCRATCH_GPR};
use crate::instrument::{ProbeKind, ProbeSites};
use crate::options::{CompilerOptions, ProbeMode, TagStrategy};
use crate::stackmap::{Stackmap, StackmapTable};
use machine::asm::{Assembler, CodeBuffer};
use machine::inst::{CmpOp, Label, TrapCode, Width};
use machine::lower::{classify, OpClass};
use machine::masm::Masm;
use machine::reg::AnyReg;
use machine::values::{ValueTag, NULL_REF_BITS};
use wasm::fuel::FuelPlan;
use wasm::module::Module;
use wasm::opcode::{OpSignature, Opcode};
use wasm::reader::BytecodeReader;
use wasm::types::{BlockType, ValueType};
use wasm::validate::FuncInfo;
use std::collections::HashMap;
use std::fmt;

/// Information the engine needs about one call site in compiled code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSiteInfo {
    /// Frame-relative slot index where the callee's frame begins (its first
    /// argument slot).
    pub callee_slot_base: u32,
}

/// Information the engine needs about one probe site in compiled code: the
/// original bytecode offset and the operand stack height there, so a frame
/// accessor (or a tier-down to the interpreter) can reconstruct the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitProbeSite {
    /// Bytecode offset of the probed instruction.
    pub offset: u32,
    /// Operand stack height at the probe.
    pub operand_height: u32,
}

/// Statistics about one compilation, used by the benchmark harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Bytes of Wasm bytecode compiled.
    pub wasm_bytes: u32,
    /// Number of machine instructions emitted (macro operations for
    /// byte-level backends).
    pub machine_insts: u32,
    /// Machine-code size in bytes (estimated for the virtual ISA, exact for
    /// byte-level backends).
    pub code_size_bytes: u32,
    /// Value-tag stores emitted.
    pub tag_stores: u32,
    /// Operations evaluated at compile time.
    pub constants_folded: u32,
    /// Conditional branches folded away.
    pub branches_folded: u32,
    /// Immediate-mode instructions selected.
    pub immediate_selections: u32,
    /// Register spills emitted.
    pub spills: u32,
}

/// The output of compiling one function through a [`Masm`] backend: the
/// backend's finished code plus the backend-independent metadata the engine
/// needs. Call/probe/stackmap keys are the backend's *site indices*
/// (instruction indices for the virtual ISA, byte offsets for x86-64).
#[derive(Debug, Clone)]
pub struct CompiledCode<T> {
    /// The function's index in the function index space.
    pub func_index: u32,
    /// The emitted code.
    pub code: T,
    /// Per-call-site stackmaps (only when [`TagStrategy::Stackmaps`]).
    pub stackmaps: StackmapTable,
    /// Metadata for every call instruction, keyed by site index.
    pub call_sites: HashMap<usize, CallSiteInfo>,
    /// Metadata for every probe instruction, keyed by site index.
    pub probe_sites: HashMap<usize, JitProbeSite>,
    /// OSR entry stubs, keyed by *wasm loop-body-start offset* → the code
    /// position (site-index units) where the stub begins. Only the optimizing
    /// tier emits entries; baseline code leaves this empty.
    pub osr_entries: HashMap<u32, usize>,
    /// Number of results.
    pub num_results: u32,
    /// Number of local slots (params + declared locals).
    pub num_locals: u32,
    /// Total frame size in slots (locals + maximum operand height).
    pub frame_slots: u32,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// The output of compiling one function for the virtual ISA — the executable
/// backend every engine configuration runs on.
pub type CompiledFunction = CompiledCode<CodeBuffer>;

/// An error produced during compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Bytecode offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at +{}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CompileError {}

/// The single-pass compiler. Cheap to construct; holds only options.
#[derive(Debug, Clone, Default)]
pub struct SinglePassCompiler {
    options: CompilerOptions,
    metering: bool,
    osr: bool,
}

impl SinglePassCompiler {
    /// Creates a compiler with the given options.
    pub fn new(options: CompilerOptions) -> SinglePassCompiler {
        SinglePassCompiler {
            options,
            metering: false,
            osr: false,
        }
    }

    /// Enables or disables fuel metering: when on, the compiler bakes
    /// `fuel_check` / `epoch_check` sequences into the code at the offsets of
    /// the function's [`FuelPlan`], mirroring the interpreter's schedule.
    pub fn with_metering(mut self, metering: bool) -> SinglePassCompiler {
        self.metering = metering;
        self
    }

    /// Enables or disables OSR poll sites: when on, every loop-body start
    /// carries a source mark and (when metering is off) an `epoch_check`, so
    /// the executing CPU can poll the back-edge hotness counter there. Under
    /// metering the existing fused fuel check already polls at those sites,
    /// so only the source mark is added.
    pub fn with_osr(mut self, osr: bool) -> SinglePassCompiler {
        self.osr = osr;
        self
    }

    /// The compiler's options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Compiles one defined function for the virtual ISA.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed bodies or unsupported features (e.g.
    /// multi-value signatures when the `MV` feature is disabled).
    pub fn compile(
        &self,
        module: &Module,
        func_index: u32,
        info: &FuncInfo,
        probes: &ProbeSites,
    ) -> Result<CompiledFunction, CompileError> {
        self.compile_with(Assembler::new(), module, func_index, info, probes)
    }

    /// Compiles one defined function through an arbitrary [`Masm`] backend.
    ///
    /// The translation strategy — one forward pass, abstract interpretation,
    /// the straight-line optimizations — is identical for every backend;
    /// only the expansion of each semantic operation differs.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed bodies or unsupported features.
    pub fn compile_with<M: Masm>(
        &self,
        masm: M,
        module: &Module,
        func_index: u32,
        info: &FuncInfo,
        probes: &ProbeSites,
    ) -> Result<CompiledCode<M::Output>, CompileError> {
        let decl = module.func_decl(func_index).ok_or(CompileError {
            offset: 0,
            message: format!("function {func_index} has no body"),
        })?;
        let sig = module.func_type(func_index).ok_or(CompileError {
            offset: 0,
            message: format!("function {func_index} has no signature"),
        })?;
        if !self.options.multi_value && sig.results.len() > 1 {
            return Err(CompileError {
                offset: 0,
                message: "multi-value results are not supported by this configuration".to_string(),
            });
        }
        // Engines that lower through an internal form first (wazero) pay for
        // extra passes over the code before emitting anything.
        if self.options.extra_lowering_pass {
            for _ in 0..2 {
                let mut lowered = Vec::with_capacity(decl.code.len());
                let mut r = BytecodeReader::new(&decl.code);
                while !r.is_at_end() {
                    let pc = r.pc();
                    let op = r.read_opcode().map_err(|e| CompileError {
                        offset: pc,
                        message: e.to_string(),
                    })?;
                    r.skip_immediates(op).map_err(|e| CompileError {
                        offset: pc,
                        message: e.to_string(),
                    })?;
                    lowered.push((op, pc as u32));
                }
                std::hint::black_box(&lowered);
            }
        }

        let local_types = module
            .func_local_types(func_index)
            .expect("checked above: function has a body");
        let fuel = if self.metering || self.osr {
            FuelPlan::build(&decl.code).map_err(|e| CompileError {
                offset: 0,
                message: format!("fuel plan: {e}"),
            })?
        } else {
            FuelPlan::empty()
        };
        let mut fc = FuncCompiler {
            module,
            options: &self.options,
            probes,
            fuel,
            metering: self.metering,
            osr: self.osr,
            num_locals: local_types.len(),
            num_results: sig.results.len() as u32,
            results: sig.results.clone(),
            asm: masm,
            state: AbstractState::new(&local_types, self.options.multi_register),
            ctrl: Vec::new(),
            stackmaps: StackmapTable::default(),
            call_sites: HashMap::new(),
            probe_sites: HashMap::new(),
            stats: CompileStats {
                wasm_bytes: decl.code.len() as u32,
                ..CompileStats::default()
            },
        };
        fc.compile_body(&decl.code)?;
        let stats = CompileStats {
            machine_insts: fc.asm.num_insts() as u32,
            code_size_bytes: fc.asm.code_size() as u32,
            ..fc.stats
        };
        let code = fc.asm.finish();
        Ok(CompiledCode {
            func_index,
            code,
            stackmaps: fc.stackmaps,
            call_sites: fc.call_sites,
            probe_sites: fc.probe_sites,
            osr_entries: HashMap::new(),
            num_results: sig.results.len() as u32,
            num_locals: local_types.len() as u32,
            frame_slots: local_types.len() as u32 + info.max_stack,
            stats,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Func,
    Block,
    Loop,
    If,
    Else,
}

#[derive(Debug, Clone)]
struct CtrlFrame {
    kind: CtrlKind,
    end_label: Label,
    else_label: Option<Label>,
    start_label: Option<Label>,
    label_base: usize,
    params: Vec<ValueType>,
    results: Vec<ValueType>,
    unreachable: bool,
}

struct FuncCompiler<'a, M: Masm> {
    module: &'a Module,
    options: &'a CompilerOptions,
    probes: &'a ProbeSites,
    fuel: FuelPlan,
    metering: bool,
    osr: bool,
    num_locals: usize,
    num_results: u32,
    results: Vec<ValueType>,
    asm: M,
    state: AbstractState,
    ctrl: Vec<CtrlFrame>,
    stackmaps: StackmapTable,
    call_sites: HashMap<usize, CallSiteInfo>,
    probe_sites: HashMap<usize, JitProbeSite>,
    stats: CompileStats,
}

impl<'a, M: Masm> FuncCompiler<'a, M> {
    fn error(&self, offset: usize, message: impl Into<String>) -> CompileError {
        CompileError {
            offset,
            message: message.into(),
        }
    }

    fn unreachable_now(&self) -> bool {
        self.ctrl.last().map(|f| f.unreachable).unwrap_or(false)
    }

    fn compile_body(&mut self, code: &[u8]) -> Result<(), CompileError> {
        let func_end = self.asm.new_label();
        self.ctrl.push(CtrlFrame {
            kind: CtrlKind::Func,
            end_label: func_end,
            else_label: None,
            start_label: None,
            label_base: 0,
            params: Vec::new(),
            results: self.results.clone(),
            unreachable: false,
        });

        let mut reader = BytecodeReader::new(code);
        while !self.ctrl.is_empty() {
            if reader.is_at_end() {
                return Err(self.error(code.len(), "body ended with open control constructs"));
            }
            let offset = reader.pc();
            let op = reader
                .read_opcode()
                .map_err(|e| self.error(offset, e.to_string()))?;
            if self.options.debug_metadata {
                self.asm.mark_source(offset as u32);
            }
            if !self.unreachable_now() {
                // Metering first, probes second: the same order every tier
                // uses, so a fuel trap fires before a probe at the same site.
                // One fused check per site: the loop-head epoch poll rides
                // the region's fuel decrement (a zero-amount check at the
                // rare loop head whose region charges nothing).
                let charge = self.fuel.charge_at(offset as u32);
                let epoch_site = self.fuel.epoch_check_at(offset as u32);
                if self.osr && epoch_site && !self.options.debug_metadata {
                    // The OSR poll resolves its wasm offset through the
                    // source map, so loop-body starts need an exact mark even
                    // without debug metadata.
                    self.asm.mark_source(offset as u32);
                }
                if self.metering && (charge.is_some() || epoch_site) {
                    self.asm.fuel_check(charge.unwrap_or(0));
                } else if self.osr && epoch_site {
                    // Metering off: the loop head still needs a poll site for
                    // the back-edge hotness counter. An `epoch_check` against
                    // a meter without a deadline is a no-op apart from the
                    // OSR poll.
                    self.asm.epoch_check();
                }
                if let Some(site) = self.probes.get(offset as u32) {
                    self.emit_probe(*site, offset as u32);
                }
            }
            self.compile_instruction(op, offset, &mut reader)?;
        }
        if !reader.is_at_end() {
            return Err(self.error(reader.pc(), "trailing bytes after final end"));
        }
        Ok(())
    }

    // ---- Code-generation helpers -------------------------------------------

    fn tag_of(&self, ty: ValueType) -> ValueTag {
        ValueTag::for_type(ty)
    }

    fn emit_tag(&mut self, slot: usize) {
        let tag = self.tag_of(self.state.slot(slot).ty);
        self.asm.store_tag(slot as u32, tag);
        self.state.set_tag_in_memory(slot, true);
        self.stats.tag_stores += 1;
    }

    fn eager_tag_on_write(&mut self, slot: usize) {
        let is_local = slot < self.num_locals;
        let emit = match self.options.tagging {
            TagStrategy::Eager => true,
            TagStrategy::EagerOperandsOnly => !is_local,
            TagStrategy::EagerLocalsOnly => is_local,
            _ => false,
        };
        if emit {
            self.emit_tag(slot);
        }
    }

    /// Emits a store of `slot`'s current value into its home memory slot if
    /// it is not already there, leaving its location unchanged.
    fn materialize_to_memory(&mut self, slot: usize) {
        let s = *self.state.slot(slot);
        if s.in_memory {
            return;
        }
        match s.loc {
            Loc::Const(c) => {
                self.asm.store_slot_imm(slot as u32, c as i64);
            }
            Loc::Reg(r) => {
                self.asm.store_slot(slot as u32, r);
            }
            Loc::Memory => {}
        }
        self.state.mark_in_memory(slot);
    }

    fn flush_values(&mut self) {
        for slot in 0..self.state.len() {
            self.materialize_to_memory(slot);
        }
    }

    /// Flush at a control-flow boundary: values go to memory and the state
    /// becomes the canonical memory state. Tags are not needed here (no GC
    /// can observe a branch), so their stored-ness is preserved.
    fn flush_for_control(&mut self) {
        self.flush_values();
        self.state.reset_to_memory(true);
    }

    /// Flush at an observable point (call, probe): values go to memory and,
    /// depending on the tagging strategy, tags are written. Returns the
    /// reference slots for a stackmap when that strategy is in use.
    fn flush_for_observation(&mut self) -> Option<Vec<u32>> {
        self.flush_values();
        match self.options.tagging {
            TagStrategy::None => None,
            TagStrategy::Stackmaps => {
                let refs = self
                    .state
                    .iter()
                    .filter(|(_, s)| s.ty.is_reference())
                    .map(|(i, _)| i as u32)
                    .collect();
                Some(refs)
            }
            TagStrategy::Lazy => {
                for slot in self.num_locals..self.state.len() {
                    if !self.state.slot(slot).tag_in_memory {
                        self.emit_tag(slot);
                    }
                }
                None
            }
            _ => {
                for slot in 0..self.state.len() {
                    if !self.state.slot(slot).tag_in_memory {
                        self.emit_tag(slot);
                    }
                }
                None
            }
        }
    }

    fn spill_reg(&mut self, reg: AnyReg) {
        let slots = self.state.slots_in_reg(reg).to_vec();
        for slot in slots {
            if !self.state.slot(slot as usize).in_memory {
                self.asm.store_slot(slot, reg);
                self.state.mark_in_memory(slot as usize);
                self.stats.spills += 1;
            }
        }
        self.state.clear_reg(reg);
    }

    fn alloc_reg(&mut self, float: bool, pinned: &[AnyReg]) -> AnyReg {
        if let Some(r) = self.state.free_reg(float) {
            return r;
        }
        loop {
            let victim = self.state.evict_candidate(float);
            if pinned.contains(&victim) {
                continue;
            }
            self.spill_reg(victim);
            return victim;
        }
    }

    /// Ensures the value of `slot` is in a register and returns it.
    fn ensure_in_reg(&mut self, slot: usize, pinned: &[AnyReg]) -> AnyReg {
        let s = *self.state.slot(slot);
        match s.loc {
            Loc::Reg(r) => r,
            Loc::Const(c) => {
                let float = s.ty.is_float();
                let r = self.alloc_reg(float, pinned);
                match r {
                    AnyReg::Gpr(g) => {
                        self.asm.mov_imm(g, c as i64);
                    }
                    AnyReg::Fpr(f) => {
                        self.asm.fmov_imm(f, c);
                    }
                }
                self.state
                    .set_slot(slot, Loc::Reg(r), s.in_memory, s.tag_in_memory);
                r
            }
            Loc::Memory => {
                let float = s.ty.is_float();
                let r = self.alloc_reg(float, pinned);
                self.asm.load_slot(r, slot as u32);
                self.state.set_slot(slot, Loc::Reg(r), true, s.tag_in_memory);
                r
            }
        }
    }

    fn push_result(&mut self, ty: ValueType, loc: Loc) {
        let slot = self.state.push(ty, loc);
        self.eager_tag_on_write(slot);
    }

    // ---- Control flow -------------------------------------------------------

    fn block_signature(
        &self,
        offset: usize,
        bt: BlockType,
    ) -> Result<(Vec<ValueType>, Vec<ValueType>), CompileError> {
        let (params, results) = bt
            .resolve(&self.module.types)
            .ok_or_else(|| self.error(offset, "bad block type"))?;
        if !self.options.multi_value && (results.len() > 1 || !params.is_empty()) {
            return Err(self.error(
                offset,
                "multi-value block types are not supported by this configuration",
            ));
        }
        Ok((params, results))
    }

    fn branch_target(&self, depth: u32) -> Option<(Label, usize, usize)> {
        let len = self.ctrl.len();
        if depth as usize >= len {
            return None;
        }
        let frame = &self.ctrl[len - 1 - depth as usize];
        if frame.kind == CtrlKind::Loop {
            Some((
                frame.start_label.expect("loop has a start label"),
                frame.label_base,
                frame.params.len(),
            ))
        } else {
            Some((frame.end_label, frame.label_base, frame.results.len()))
        }
    }

    fn dirty_locals(&self) -> Vec<usize> {
        (0..self.num_locals)
            .filter(|&i| !self.state.slot(i).in_memory)
            .collect()
    }

    /// True if jumping directly to a label with the current state would be
    /// wrong (values not in their expected home slots).
    fn needs_branch_adaptation(&self, label_base: usize, arity: usize) -> bool {
        if !self.dirty_locals().is_empty() {
            return true;
        }
        let height = self.state.height();
        for i in 0..arity {
            let src = self.num_locals + height - arity + i;
            let dst = self.num_locals + label_base + i;
            let slot = self.state.slot(src);
            if src != dst || !slot.in_memory {
                return true;
            }
        }
        false
    }

    /// Emits the stores needed so that the state at the branch target (the
    /// canonical memory state with `arity` values at `label_base`) holds.
    /// Does not modify the abstract state, so it is safe to emit on a
    /// conditional side path.
    fn emit_branch_adaptation(&mut self, label_base: usize, arity: usize) {
        for local in self.dirty_locals() {
            let s = *self.state.slot(local);
            match s.loc {
                Loc::Const(c) => {
                    self.asm.store_slot_imm(local as u32, c as i64);
                }
                Loc::Reg(r) => {
                    self.asm.store_slot(local as u32, r);
                }
                Loc::Memory => {}
            }
        }
        let height = self.state.height();
        for i in 0..arity {
            let src = self.num_locals + height - arity + i;
            let dst = (self.num_locals + label_base + i) as u32;
            let s = *self.state.slot(src);
            match s.loc {
                Loc::Const(c) => {
                    self.asm.store_slot_imm(dst, c as i64);
                }
                Loc::Reg(r) => {
                    self.asm.store_slot(dst, r);
                }
                Loc::Memory => {
                    if src as u32 != dst {
                        self.asm.load_slot(AnyReg::Gpr(SCRATCH_GPR), src as u32);
                        self.asm.store_slot(dst, AnyReg::Gpr(SCRATCH_GPR));
                    }
                }
            }
        }
    }

    fn mark_unreachable(&mut self) {
        let label_base = self.ctrl.last().map(|f| f.label_base).unwrap_or(0);
        self.state.truncate_operands(label_base);
        if let Some(frame) = self.ctrl.last_mut() {
            frame.unreachable = true;
        }
    }

    fn emit_return(&mut self) {
        let arity = self.num_results as usize;
        let height = self.state.height();
        for i in 0..arity {
            let src = self.num_locals + height - arity + i;
            let dst = i as u32;
            let s = *self.state.slot(src);
            match s.loc {
                Loc::Const(c) => {
                    self.asm.store_slot_imm(dst, c as i64);
                }
                Loc::Reg(r) => {
                    self.asm.store_slot(dst, r);
                }
                Loc::Memory => {
                    self.asm.load_slot(AnyReg::Gpr(SCRATCH_GPR), src as u32);
                    self.asm.store_slot(dst, AnyReg::Gpr(SCRATCH_GPR));
                }
            }
            if self.options.tagging.uses_tags() {
                let tag = self.tag_of(self.results[i]);
                self.asm.store_tag(dst, tag);
                self.stats.tag_stores += 1;
            }
        }
        self.asm.ret();
    }

    fn emit_probe(&mut self, site: crate::instrument::ProbeSite, offset: u32) {
        let meta = JitProbeSite {
            offset,
            operand_height: self.state.height() as u32,
        };
        let site_index = match (self.options.probe_mode, site.kind) {
            (ProbeMode::Optimized, ProbeKind::Counter { counter_id }) => {
                self.asm.probe_counter(counter_id)
            }
            (ProbeMode::Optimized, ProbeKind::TopOfStack) => {
                let src = if self.state.height() > 0 {
                    let top = self.state.operand_index(0);
                    self.ensure_in_reg(top, &[])
                } else {
                    AnyReg::Gpr(SCRATCH_GPR)
                };
                self.asm.probe_tos(site.probe_id, src)
            }
            (ProbeMode::Optimized, ProbeKind::Generic) => {
                self.flush_for_observation();
                self.asm.probe_direct(site.probe_id)
            }
            (ProbeMode::Runtime, _) => {
                self.flush_for_observation();
                self.asm.probe_runtime(site.probe_id)
            }
        };
        self.probe_sites.insert(site_index, meta);
    }

    // ---- Instruction compilation --------------------------------------------

    fn compile_instruction(
        &mut self,
        op: Opcode,
        offset: usize,
        reader: &mut BytecodeReader<'_>,
    ) -> Result<(), CompileError> {
        // In unreachable code only track control nesting.
        if self.unreachable_now()
            && !matches!(op, Opcode::Block | Opcode::Loop | Opcode::If | Opcode::Else | Opcode::End)
        {
            reader
                .skip_immediates(op)
                .map_err(|e| self.error(offset, e.to_string()))?;
            return Ok(());
        }

        match op {
            Opcode::Nop => {}
            Opcode::Unreachable => {
                self.asm.trap(TrapCode::Unreachable);
                self.mark_unreachable();
            }
            Opcode::Block | Opcode::Loop | Opcode::If => {
                let bt = reader
                    .read_block_type()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let (params, results) = self.block_signature(offset, bt)?;
                let dead = self.unreachable_now();

                let mut cond_reg = None;
                if op == Opcode::If && !dead {
                    let cond = self.state.operand_index(0);
                    cond_reg = Some(self.ensure_in_reg(cond, &[]));
                    self.state.pop();
                }
                if !dead {
                    self.flush_for_control();
                }
                let label_base = if dead {
                    self.ctrl.last().map(|f| f.label_base).unwrap_or(0)
                } else {
                    self.state.height() - params.len()
                };
                let end_label = self.asm.new_label();
                let (start_label, else_label) = match op {
                    Opcode::Loop => (Some(self.asm.new_bound_label()), None),
                    Opcode::If => {
                        let else_label = self.asm.new_label();
                        if let Some(rc) = cond_reg {
                            self.asm.br_if(
                                rc.as_gpr().expect("condition is an integer"),
                                else_label,
                                true,
                            );
                        }
                        (None, Some(else_label))
                    }
                    _ => (None, None),
                };
                self.ctrl.push(CtrlFrame {
                    kind: match op {
                        Opcode::Block => CtrlKind::Block,
                        Opcode::Loop => CtrlKind::Loop,
                        _ => CtrlKind::If,
                    },
                    end_label,
                    else_label,
                    start_label,
                    label_base,
                    params,
                    results,
                    unreachable: dead,
                });
            }
            Opcode::Else => {
                let was_reachable = !self.unreachable_now();
                if was_reachable {
                    self.flush_for_control();
                }
                let frame = self.ctrl.last_mut().expect("else inside an if");
                if was_reachable {
                    let end = frame.end_label;
                    self.asm.jump(end);
                }
                let frame = self.ctrl.last_mut().expect("else inside an if");
                if let Some(else_label) = frame.else_label.take() {
                    self.asm.bind(else_label);
                }
                frame.kind = CtrlKind::Else;
                // The else branch starts from the state captured at the `if`:
                // canonical memory with the params on the operand stack.
                let (label_base, params, parent_dead) = {
                    let len = self.ctrl.len();
                    let frame = &self.ctrl[len - 1];
                    let parent_dead = len >= 2 && self.ctrl[len - 2].unreachable;
                    (frame.label_base, frame.params.clone(), parent_dead)
                };
                if !parent_dead {
                    self.state.truncate_operands(label_base);
                    for ty in params {
                        self.state.push(ty, Loc::Memory);
                    }
                    self.ctrl.last_mut().expect("else").unreachable = false;
                } else {
                    self.ctrl.last_mut().expect("else").unreachable = true;
                }
            }
            Opcode::End => {
                let was_reachable = !self.unreachable_now();
                if was_reachable {
                    self.flush_for_control();
                }
                let frame = self.ctrl.pop().expect("end matches a construct");
                if let Some(else_label) = frame.else_label {
                    self.asm.bind(else_label);
                }
                self.asm.bind(frame.end_label);
                let parent_dead = self.ctrl.last().map(|f| f.unreachable).unwrap_or(false);
                if !parent_dead {
                    self.state.truncate_operands(frame.label_base);
                    for &ty in &frame.results {
                        self.state.push(ty, Loc::Memory);
                    }
                }
                if self.ctrl.is_empty() {
                    // Function epilogue.
                    if was_reachable || !parent_dead {
                        self.emit_return();
                    }
                }
            }
            Opcode::Br => {
                let depth = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let (label, base, arity) = self
                    .branch_target(depth)
                    .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                self.emit_branch_adaptation(base, arity);
                self.asm.jump(label);
                self.mark_unreachable();
            }
            Opcode::BrIf => {
                let depth = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let cond = self.state.operand_index(0);
                let cond_state = *self.state.slot(cond);
                if self.options.constant_folding {
                    if let Some(c) = cond_state.constant() {
                        self.state.pop();
                        self.stats.branches_folded += 1;
                        if c != 0 {
                            let (label, base, arity) = self
                                .branch_target(depth)
                                .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                            self.emit_branch_adaptation(base, arity);
                            self.asm.jump(label);
                            self.mark_unreachable();
                        }
                        return Ok(());
                    }
                }
                let rc = self.ensure_in_reg(cond, &[]);
                self.state.pop();
                let (label, base, arity) = self
                    .branch_target(depth)
                    .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                let rc = rc.as_gpr().expect("condition is an integer");
                if self.needs_branch_adaptation(base, arity) {
                    let skip = self.asm.new_label();
                    self.asm.br_if(rc, skip, true);
                    self.emit_branch_adaptation(base, arity);
                    self.asm.jump(label);
                    self.asm.bind(skip);
                } else {
                    self.asm.br_if(rc, label, false);
                }
            }
            Opcode::BrTable => {
                let (targets, default) = reader
                    .read_branch_table()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let index = self.state.operand_index(0);
                let ri = self.ensure_in_reg(index, &[]);
                self.state.pop();
                // Everything must be in memory on every outgoing edge.
                self.flush_values();
                let mut stubs = Vec::with_capacity(targets.len());
                let mut resolved = Vec::with_capacity(targets.len() + 1);
                for &depth in targets.iter().chain(std::iter::once(&default)) {
                    let target = self
                        .branch_target(depth)
                        .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                    let stub = self.asm.new_label();
                    resolved.push((stub, target));
                    if resolved.len() <= targets.len() {
                        stubs.push(stub);
                    }
                }
                let default_stub = resolved.last().expect("at least the default").0;
                self.asm.br_table(
                    ri.as_gpr().expect("index is an integer"),
                    stubs,
                    default_stub,
                );
                for (stub, (label, base, arity)) in resolved {
                    self.asm.bind(stub);
                    self.emit_branch_adaptation(base, arity);
                    self.asm.jump(label);
                }
                self.mark_unreachable();
            }
            Opcode::Return => {
                self.emit_return();
                self.mark_unreachable();
            }
            Opcode::Call => {
                let callee = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let sig = self
                    .module
                    .func_type(callee)
                    .cloned()
                    .ok_or_else(|| self.error(offset, format!("unknown callee {callee}")))?;
                if !self.options.multi_value && sig.results.len() > 1 {
                    return Err(self.error(offset, "multi-value call not supported"));
                }
                if !self.options.debug_metadata {
                    // Calls always need a source-map anchor for stack traces.
                    self.asm.mark_source(offset as u32);
                }
                let refs = self.flush_for_observation();
                let callee_slot_base =
                    (self.num_locals + self.state.height() - sig.params.len()) as u32;
                let site_index = self.asm.call(callee);
                self.call_sites
                    .insert(site_index, CallSiteInfo { callee_slot_base });
                if let Some(ref_slots) = refs {
                    self.stackmaps.push(Stackmap {
                        inst_index: site_index,
                        ref_slots,
                    });
                }
                for _ in 0..sig.params.len() {
                    self.state.pop();
                }
                for &ty in &sig.results {
                    let slot = self.state.push(ty, Loc::Memory);
                    self.state.set_tag_in_memory(slot, true);
                }
            }
            Opcode::CallIndirect => {
                let (type_index, table_index) = reader
                    .read_call_indirect()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let sig = self
                    .module
                    .types
                    .get(type_index as usize)
                    .cloned()
                    .ok_or_else(|| self.error(offset, format!("unknown type {type_index}")))?;
                if !self.options.multi_value && sig.results.len() > 1 {
                    return Err(self.error(offset, "multi-value call not supported"));
                }
                if !self.options.debug_metadata {
                    self.asm.mark_source(offset as u32);
                }
                let index = self.state.operand_index(0);
                let ri = self.ensure_in_reg(index, &[]);
                self.state.pop();
                let refs = self.flush_for_observation();
                let callee_slot_base =
                    (self.num_locals + self.state.height() - sig.params.len()) as u32;
                let site_index = self.asm.call_indirect(
                    type_index,
                    table_index,
                    ri.as_gpr().expect("table index is an integer"),
                );
                self.call_sites
                    .insert(site_index, CallSiteInfo { callee_slot_base });
                if let Some(ref_slots) = refs {
                    self.stackmaps.push(Stackmap {
                        inst_index: site_index,
                        ref_slots,
                    });
                }
                for _ in 0..sig.params.len() {
                    self.state.pop();
                }
                for &ty in &sig.results {
                    let slot = self.state.push(ty, Loc::Memory);
                    self.state.set_tag_in_memory(slot, true);
                }
            }
            Opcode::Drop => {
                self.state.pop();
            }
            Opcode::Select | Opcode::SelectT => {
                if op == Opcode::SelectT {
                    reader
                        .read_select_types()
                        .map_err(|e| self.error(offset, e.to_string()))?;
                }
                self.compile_select();
            }
            Opcode::LocalGet => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))? as usize;
                self.compile_local_get(index);
            }
            Opcode::LocalSet | Opcode::LocalTee => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))? as usize;
                self.compile_local_set(index, op == Opcode::LocalTee);
            }
            Opcode::GlobalGet => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let ty = self
                    .module
                    .global_type(index)
                    .ok_or_else(|| self.error(offset, format!("unknown global {index}")))?
                    .value_type;
                let dst = self.alloc_reg(ty.is_float(), &[]);
                self.asm.global_get(dst, index);
                self.push_result(ty, Loc::Reg(dst));
            }
            Opcode::GlobalSet => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let top = self.state.operand_index(0);
                let src = self.ensure_in_reg(top, &[]);
                self.state.pop();
                self.asm.global_set(index, src);
            }
            Opcode::I32Const => {
                let v = reader
                    .read_i32()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                self.compile_const(ValueType::I32, v as u32 as u64);
            }
            Opcode::I64Const => {
                let v = reader
                    .read_i64()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                self.compile_const(ValueType::I64, v as u64);
            }
            Opcode::F32Const => {
                let v = reader
                    .read_f32()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                self.compile_const(ValueType::F32, v.to_bits() as u64);
            }
            Opcode::F64Const => {
                let v = reader
                    .read_f64()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                self.compile_const(ValueType::F64, v.to_bits());
            }
            Opcode::RefNull => {
                let ty = reader
                    .read_ref_type()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                self.compile_const(ty, NULL_REF_BITS);
            }
            Opcode::RefFunc => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                self.compile_const(ValueType::FuncRef, index as u64);
            }
            Opcode::RefIsNull => {
                let top = self.state.operand_index(0);
                let r = self.ensure_in_reg(top, &[]);
                self.state.pop();
                let dst = self.alloc_reg(false, &[r]);
                self.asm.cmp_imm(
                    CmpOp::Eq,
                    Width::W64,
                    dst.as_gpr().expect("gpr"),
                    r.as_gpr().expect("references live in GPRs"),
                    -1,
                );
                self.push_result(ValueType::I32, Loc::Reg(dst));
            }
            Opcode::MemorySize => {
                reader
                    .read_memory_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let dst = self.alloc_reg(false, &[]);
                self.asm.memory_size(dst.as_gpr().expect("gpr"));
                self.push_result(ValueType::I32, Loc::Reg(dst));
            }
            Opcode::MemoryGrow => {
                reader
                    .read_memory_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let top = self.state.operand_index(0);
                let delta = self.ensure_in_reg(top, &[]);
                self.state.pop();
                let dst = self.alloc_reg(false, &[delta]);
                self.asm.memory_grow(
                    dst.as_gpr().expect("gpr"),
                    delta.as_gpr().expect("gpr"),
                );
                self.push_result(ValueType::I32, Loc::Reg(dst));
            }
            _ if op.is_memory_access() => {
                let memarg = reader
                    .read_memarg()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                self.compile_memory_access(op, memarg.offset);
            }
            _ => {
                let class = classify(op)
                    .ok_or_else(|| self.error(offset, format!("unhandled opcode {op}")))?;
                self.compile_classified(op, class);
            }
        }
        Ok(())
    }

    fn compile_const(&mut self, ty: ValueType, bits: u64) {
        if self.options.track_constants {
            self.push_result(ty, Loc::Const(bits));
        } else {
            let dst = self.alloc_reg(ty.is_float(), &[]);
            match dst {
                AnyReg::Gpr(g) => {
                    self.asm.mov_imm(g, bits as i64);
                }
                AnyReg::Fpr(f) => {
                    self.asm.fmov_imm(f, bits);
                }
            }
            self.push_result(ty, Loc::Reg(dst));
        }
    }

    fn compile_local_get(&mut self, index: usize) {
        let s = *self.state.slot(index);
        match s.loc {
            Loc::Const(c) if self.options.track_constants => {
                self.push_result(s.ty, Loc::Const(c));
            }
            Loc::Reg(r) if self.state.can_share(r) => {
                self.push_result(s.ty, Loc::Reg(r));
            }
            Loc::Reg(r) => {
                let dst = self.alloc_reg(s.ty.is_float(), &[r]);
                self.emit_move_between(dst, r);
                self.push_result(s.ty, Loc::Reg(dst));
            }
            Loc::Const(_) | Loc::Memory => {
                let dst = self.alloc_reg(s.ty.is_float(), &[]);
                self.asm.load_slot(dst, index as u32);
                if self.options.multi_register {
                    // The register now caches the local as well.
                    self.state.share(dst, index);
                }
                self.push_result(s.ty, Loc::Reg(dst));
            }
        }
    }

    fn emit_move_between(&mut self, dst: AnyReg, src: AnyReg) {
        match (dst, src) {
            (AnyReg::Gpr(d), AnyReg::Gpr(s)) => self.asm.mov(d, s),
            (AnyReg::Fpr(d), AnyReg::Fpr(s)) => self.asm.fmov(d, s),
            _ => unreachable!("register banks match the type"),
        }
    }

    fn compile_local_set(&mut self, index: usize, is_tee: bool) {
        let top = self.state.operand_index(0);
        let s = *self.state.slot(top);
        match s.loc {
            Loc::Const(c) if self.options.track_constants => {
                self.state.set_slot(index, Loc::Const(c), false, false);
            }
            Loc::Reg(r) => {
                if is_tee && !self.options.multi_register {
                    let dst = self.alloc_reg(s.ty.is_float(), &[r]);
                    self.emit_move_between(dst, r);
                    self.state.set_slot(index, Loc::Reg(dst), false, false);
                } else {
                    self.state.set_slot(index, Loc::Reg(r), false, false);
                }
            }
            Loc::Const(_) | Loc::Memory => {
                let r = self.ensure_in_reg(top, &[]);
                self.state.set_slot(index, Loc::Reg(r), false, false);
            }
        }
        if !is_tee {
            self.state.pop();
        }
        self.eager_tag_on_write(index);
    }

    fn compile_select(&mut self) {
        let cond = self.state.operand_index(0);
        let b = self.state.operand_index(1);
        let a = self.state.operand_index(2);
        let ty = self.state.slot(a).ty;
        let rc = self.ensure_in_reg(cond, &[]);
        let rb = self.ensure_in_reg(b, &[rc]);
        let ra = self.ensure_in_reg(a, &[rc, rb]);
        self.state.pop();
        self.state.pop();
        self.state.pop();
        let dst = self.alloc_reg(ty.is_float(), &[ra, rb, rc]);
        let cond_gpr = rc.as_gpr().expect("condition is an integer");
        match (dst, ra, rb) {
            (AnyReg::Gpr(d), AnyReg::Gpr(a), AnyReg::Gpr(b)) => {
                self.asm.select(d, cond_gpr, a, b);
            }
            (AnyReg::Fpr(d), AnyReg::Fpr(a), AnyReg::Fpr(b)) => {
                self.asm.fselect(d, cond_gpr, a, b);
            }
            _ => unreachable!("select operands share one register bank"),
        }
        self.push_result(ty, Loc::Reg(dst));
    }

    fn compile_memory_access(&mut self, op: Opcode, mem_offset: u32) {
        let width = op.access_width().expect("memory access has a width");
        match op.signature() {
            OpSignature::Load(result) => {
                let addr = self.state.operand_index(0);
                let ra = self.ensure_in_reg(addr, &[]);
                self.state.pop();
                let dst = self.alloc_reg(result.is_float(), &[ra]);
                let signed = matches!(
                    op,
                    Opcode::I32Load8S
                        | Opcode::I32Load16S
                        | Opcode::I64Load8S
                        | Opcode::I64Load16S
                        | Opcode::I64Load32S
                );
                let dst_width = if result == ValueType::I32 || result == ValueType::F32 {
                    Width::W32
                } else {
                    Width::W64
                };
                self.asm.mem_load(
                    dst,
                    ra.as_gpr().expect("address is an integer"),
                    mem_offset,
                    width,
                    signed,
                    dst_width,
                );
                self.push_result(result, Loc::Reg(dst));
            }
            OpSignature::Store(_) => {
                let value = self.state.operand_index(0);
                let addr = self.state.operand_index(1);
                let rv = self.ensure_in_reg(value, &[]);
                let ra = self.ensure_in_reg(addr, &[rv]);
                self.state.pop();
                self.state.pop();
                self.asm.mem_store(
                    rv,
                    ra.as_gpr().expect("address is an integer"),
                    mem_offset,
                    width,
                );
            }
            _ => unreachable!("memory access opcodes have load/store signatures"),
        }
    }

    fn compile_classified(&mut self, _op: Opcode, class: OpClass) {
        let arity = class.arity();
        let result_ty = class.result_type();

        // Constant folding: evaluate side-effect-free operations at compile
        // time when every operand is a known constant.
        if self.options.constant_folding && self.options.track_constants {
            let all_const = (0..arity)
                .all(|d| self.state.slot(self.state.operand_index(d)).constant().is_some());
            if all_const {
                let mut operands = [0u64; 2];
                for d in 0..arity {
                    // operand_index(0) is the top (last operand).
                    operands[arity - 1 - d] =
                        self.state.slot(self.state.operand_index(d)).constant().unwrap();
                }
                if let Ok(bits) = class.evaluate(&operands[..arity]) {
                    for _ in 0..arity {
                        self.state.pop();
                    }
                    self.stats.constants_folded += 1;
                    self.push_result(result_ty, Loc::Const(bits));
                    return;
                }
                // Evaluation would trap at runtime: fall through and emit the
                // real instruction so the trap happens during execution.
            }
        }

        // Immediate-mode instruction selection for integer ops whose right
        // operand is a known constant.
        if self.options.instruction_selection && arity == 2 {
            if let OpClass::Alu(_, width) | OpClass::Cmp(_, width) = class {
                let rhs = self.state.operand_index(0);
                let lhs = self.state.operand_index(1);
                if let Some(c) = self.state.slot(rhs).constant() {
                    let imm = c as i64;
                    let fits = match width {
                        Width::W32 => true,
                        Width::W64 => imm >= i32::MIN as i64 && imm <= i32::MAX as i64,
                    };
                    if fits && self.state.slot(lhs).constant().is_none() {
                        let ra = self.ensure_in_reg(lhs, &[]);
                        self.state.pop();
                        self.state.pop();
                        let dst = self.alloc_reg(false, &[ra]);
                        let a = ra.as_gpr().expect("integer operand");
                        let d = dst.as_gpr().expect("integer result");
                        match class {
                            OpClass::Alu(alu_op, w) => {
                                self.asm.alu_imm(alu_op, w, d, a, imm);
                            }
                            OpClass::Cmp(cmp_op, w) => {
                                self.asm.cmp_imm(cmp_op, w, d, a, imm);
                            }
                            _ => unreachable!("matched above"),
                        }
                        self.stats.immediate_selections += 1;
                        self.push_result(result_ty, Loc::Reg(dst));
                        return;
                    }
                }
            }
        }

        // General path: operands in registers, emit a three-address op.
        let mut operand_regs = [AnyReg::Gpr(SCRATCH_GPR); 2];
        for d in (0..arity).rev() {
            // Ensure deeper operands first so pinning covers already-ensured ones.
            let idx = self.state.operand_index(d);
            let pinned: Vec<AnyReg> = operand_regs[..(arity - 1 - d)].to_vec();
            operand_regs[arity - 1 - d] = self.ensure_in_reg(idx, &pinned);
        }
        // operand_regs[0] = first (deepest) operand, [1] = second.
        for _ in 0..arity {
            self.state.pop();
        }
        let dst = self.alloc_reg(result_ty.is_float(), &operand_regs[..arity]);
        match class {
            OpClass::Alu(op, width) => {
                self.asm.alu(
                    op,
                    width,
                    dst.as_gpr().expect("gpr"),
                    operand_regs[0].as_gpr().expect("gpr"),
                    operand_regs[1].as_gpr().expect("gpr"),
                );
            }
            OpClass::Cmp(op, width) => {
                self.asm.cmp(
                    op,
                    width,
                    dst.as_gpr().expect("gpr"),
                    operand_regs[0].as_gpr().expect("gpr"),
                    operand_regs[1].as_gpr().expect("gpr"),
                );
            }
            OpClass::Unop(op, width) => {
                self.asm.unop(
                    op,
                    width,
                    dst.as_gpr().expect("gpr"),
                    operand_regs[0].as_gpr().expect("gpr"),
                );
            }
            OpClass::FAlu(op, width) => {
                self.asm.falu(
                    op,
                    width,
                    dst.as_fpr().expect("fpr"),
                    operand_regs[0].as_fpr().expect("fpr"),
                    operand_regs[1].as_fpr().expect("fpr"),
                );
            }
            OpClass::FUnop(op, width) => {
                self.asm.funop(
                    op,
                    width,
                    dst.as_fpr().expect("fpr"),
                    operand_regs[0].as_fpr().expect("fpr"),
                );
            }
            OpClass::FCmp(op, width) => {
                self.asm.fcmp(
                    op,
                    width,
                    dst.as_gpr().expect("gpr"),
                    operand_regs[0].as_fpr().expect("fpr"),
                    operand_regs[1].as_fpr().expect("fpr"),
                );
            }
            OpClass::Convert(op) => {
                self.asm.convert(op, dst, operand_regs[0]);
            }
        }
        self.push_result(result_ty, Loc::Reg(dst));
    }
}
