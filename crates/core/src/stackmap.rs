//! Stackmaps: static per-call-site metadata locating GC references.
//!
//! Engines without value tags (v8-liftoff and sm-base in the paper's Fig. 3)
//! record, for every site where a garbage collection could occur, which frame
//! slots contain references. The collector consults the stackmap of each
//! frame's current call site instead of reading dynamic tags.

/// The reference layout of one frame at one call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stackmap {
    /// Index of the call (or probe) instruction this map describes.
    pub inst_index: usize,
    /// Frame-relative slot indices that hold references at this site.
    pub ref_slots: Vec<u32>,
}

impl Stackmap {
    /// True if the slot is recorded as holding a reference.
    pub fn is_ref(&self, slot: u32) -> bool {
        self.ref_slots.contains(&slot)
    }
}

/// A collection of stackmaps for one compiled function, ordered by
/// instruction index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackmapTable {
    maps: Vec<Stackmap>,
}

impl StackmapTable {
    /// Adds a stackmap. Maps must be added in increasing instruction order.
    pub fn push(&mut self, map: Stackmap) {
        debug_assert!(
            self.maps.last().is_none_or(|m| m.inst_index < map.inst_index),
            "stackmaps must be added in instruction order"
        );
        self.maps.push(map);
    }

    /// Looks up the stackmap for a call at `inst_index`.
    pub fn lookup(&self, inst_index: usize) -> Option<&Stackmap> {
        self.maps
            .binary_search_by_key(&inst_index, |m| m.inst_index)
            .ok()
            .map(|i| &self.maps[i])
    }

    /// The number of stackmaps recorded.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True if no stackmaps were recorded.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Total metadata size in bytes (for space-cost accounting).
    pub fn size_bytes(&self) -> usize {
        self.maps
            .iter()
            .map(|m| 8 + 4 * m.ref_slots.len())
            .sum()
    }

    /// Iterates over all stackmaps.
    pub fn iter(&self) -> impl Iterator<Item = &Stackmap> {
        self.maps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_instruction_index() {
        let mut table = StackmapTable::default();
        table.push(Stackmap {
            inst_index: 4,
            ref_slots: vec![0, 3],
        });
        table.push(Stackmap {
            inst_index: 9,
            ref_slots: vec![],
        });
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        assert!(table.lookup(4).unwrap().is_ref(3));
        assert!(!table.lookup(4).unwrap().is_ref(1));
        assert!(table.lookup(9).unwrap().ref_slots.is_empty());
        assert!(table.lookup(5).is_none());
    }

    #[test]
    fn size_accounts_for_entries() {
        let mut table = StackmapTable::default();
        assert_eq!(table.size_bytes(), 0);
        table.push(Stackmap {
            inst_index: 1,
            ref_slots: vec![1, 2, 3],
        });
        assert_eq!(table.size_bytes(), 8 + 12);
    }
}
