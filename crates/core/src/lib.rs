//! `spc` — the single-pass ("baseline") WebAssembly compiler, the paper's
//! primary contribution.
//!
//! The compiler translates Wasm bytecode to the virtual target ISA in one
//! forward pass using abstract interpretation (no IR), performing forward
//! register allocation, constant tracking and folding, branch folding,
//! immediate-mode instruction selection, and value-tag optimization along the
//! way. It integrates with the in-place interpreter by sharing the tagged
//! value stack and frame layout, supports flexible instrumentation through
//! probes, and can be configured to reproduce the designs of the six
//! production baseline compilers studied in the paper (see [`profiles`]).
//!
//! Module map:
//!
//! * [`options`] — feature axes ([`CompilerOptions`], [`TagStrategy`],
//!   [`ProbeMode`]) and the Fig. 4 / Fig. 5 configurations;
//! * [`abstract_state`] — the abstract value stack and register bindings;
//! * [`compiler`] — the single-pass compiler itself;
//! * [`stackmap`] — per-call-site GC metadata for the stackmap strategy;
//! * [`instrument`] — compile-time probe descriptions;
//! * [`profiles`] — the six baseline-compiler design profiles (Fig. 3).
//!
//! # Examples
//!
//! ```
//! use spc::{CompilerOptions, ProbeSites, SinglePassCompiler};
//! use wasm::builder::{CodeBuilder, ModuleBuilder};
//! use wasm::opcode::Opcode;
//! use wasm::types::{FuncType, ValueType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModuleBuilder::new();
//! let mut code = CodeBuilder::new();
//! code.local_get(0).i32_const(1).op(Opcode::I32Add);
//! let f = b.add_func(
//!     FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
//!     vec![],
//!     code.finish(),
//! );
//! let module = b.finish();
//! let info = wasm::validate::validate(&module)?;
//!
//! let compiler = SinglePassCompiler::new(CompilerOptions::allopt());
//! let compiled = compiler.compile(&module, f, &info.funcs[0], &ProbeSites::none())?;
//! println!("{}", compiled.code.disassemble());
//! assert!(compiled.stats.immediate_selections > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod abstract_state;
pub mod compiler;
pub mod instrument;
pub mod options;
pub mod profiles;
pub mod stackmap;

pub use compiler::{
    CallSiteInfo, CompileError, CompileStats, CompiledCode, CompiledFunction, JitProbeSite,
    SinglePassCompiler,
};
pub use instrument::{ProbeKind, ProbeSite, ProbeSites};
pub use options::{CompilerOptions, ProbeMode, TagStrategy};
pub use profiles::{all_profiles, BaselineProfile};
pub use stackmap::{Stackmap, StackmapTable};
