//! The abstract state of the single-pass compiler.
//!
//! Following the paper's Section III, the compiler abstractly interprets the
//! bytecode: every local variable and operand stack slot has an *abstract
//! value* recording where the value currently lives (its home memory slot, a
//! register, or a compile-time constant), whether its home slot in the value
//! stack is up to date, and whether its value tag has been written. Register
//! allocation is a by-product: bindings from registers to the slots they
//! cache are tracked here, and "multiple register allocation" (the `MR`
//! feature) is simply allowing one register to cache several slots.

use machine::reg::{AnyReg, FReg, Reg, NUM_FPRS, NUM_GPRS};
use wasm::types::ValueType;

/// Index of the general-purpose scratch register reserved for code
/// generation sequences (never allocated to a slot).
pub const SCRATCH_GPR: Reg = Reg(0);
/// Index of the floating-point scratch register.
pub const SCRATCH_FPR: FReg = FReg(0);

/// Where a slot's current value lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Loc {
    /// Only in its home slot in the value stack.
    Memory,
    /// In a register (possibly also in memory — see `in_memory`).
    Reg(AnyReg),
    /// A compile-time constant (raw slot bits).
    Const(u64),
}

/// The abstract value of one local or operand slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotState {
    /// The slot's static type.
    pub ty: ValueType,
    /// Where the value currently lives.
    pub loc: Loc,
    /// True if the home memory slot holds the current value.
    pub in_memory: bool,
    /// True if the value tag for this slot has been stored.
    pub tag_in_memory: bool,
}

impl SlotState {
    fn in_memory(ty: ValueType) -> SlotState {
        SlotState {
            ty,
            loc: Loc::Memory,
            in_memory: true,
            tag_in_memory: true,
        }
    }

    /// The register caching this slot, if any.
    pub fn reg(&self) -> Option<AnyReg> {
        match self.loc {
            Loc::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// The constant value of this slot, if known.
    pub fn constant(&self) -> Option<u64> {
        match self.loc {
            Loc::Const(c) => Some(c),
            _ => None,
        }
    }
}

/// The complete abstract state: locals, the abstract operand stack, and
/// register bindings.
#[derive(Debug, Clone)]
pub struct AbstractState {
    slots: Vec<SlotState>,
    num_locals: usize,
    gpr_slots: Vec<Vec<u32>>,
    fpr_slots: Vec<Vec<u32>>,
    next_gpr: usize,
    next_fpr: usize,
    multi_register: bool,
}

impl AbstractState {
    /// Creates the state at function entry: every local is in memory with its
    /// tag stored (parameters by the caller, declared locals by the
    /// prologue), and the operand stack is empty.
    pub fn new(local_types: &[ValueType], multi_register: bool) -> AbstractState {
        AbstractState {
            slots: local_types.iter().map(|&t| SlotState::in_memory(t)).collect(),
            num_locals: local_types.len(),
            gpr_slots: vec![Vec::new(); NUM_GPRS],
            fpr_slots: vec![Vec::new(); NUM_FPRS],
            next_gpr: 1,
            next_fpr: 1,
            multi_register,
        }
    }

    /// The number of local slots.
    pub fn num_locals(&self) -> usize {
        self.num_locals
    }

    /// The current operand stack height.
    pub fn height(&self) -> usize {
        self.slots.len() - self.num_locals
    }

    /// The total number of live slots (locals + operands).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the operand stack is empty.
    pub fn is_empty(&self) -> bool {
        self.height() == 0
    }

    /// The state of a slot (locals first, then operands).
    pub fn slot(&self, index: usize) -> &SlotState {
        &self.slots[index]
    }

    /// Iterates over all live slots with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SlotState)> {
        self.slots.iter().enumerate()
    }

    /// The slot index of the operand `depth` positions from the top
    /// (0 = top of stack).
    pub fn operand_index(&self, depth: usize) -> usize {
        self.slots.len() - 1 - depth
    }

    /// Whether this state allows a register to cache multiple slots.
    pub fn multi_register(&self) -> bool {
        self.multi_register
    }

    // ---- Mutation ----------------------------------------------------------

    /// Pushes an operand slot with the given type and location; returns its
    /// slot index.
    pub fn push(&mut self, ty: ValueType, loc: Loc) -> usize {
        let index = self.slots.len();
        let state = SlotState {
            ty,
            loc,
            in_memory: matches!(loc, Loc::Memory),
            tag_in_memory: false,
        };
        self.slots.push(state);
        if let Loc::Reg(r) = loc {
            self.bind(r, index as u32);
        }
        index
    }

    /// Pops the top operand slot, releasing any register binding.
    ///
    /// # Panics
    ///
    /// Panics if the operand stack is empty (a compiler bug: validation
    /// guarantees balanced stacks).
    pub fn pop(&mut self) -> SlotState {
        assert!(self.height() > 0, "abstract operand stack underflow");
        let index = self.slots.len() - 1;
        let state = self.slots.pop().expect("non-empty");
        if let Loc::Reg(r) = state.loc {
            self.unbind(r, index as u32);
        }
        state
    }

    /// Overwrites a slot's abstract value, maintaining register bindings.
    pub fn set_slot(&mut self, index: usize, loc: Loc, in_memory: bool, tag_in_memory: bool) {
        if let Loc::Reg(old) = self.slots[index].loc {
            self.unbind(old, index as u32);
        }
        if let Loc::Reg(new) = loc {
            self.bind(new, index as u32);
        }
        let ty = self.slots[index].ty;
        self.slots[index] = SlotState {
            ty,
            loc,
            in_memory,
            tag_in_memory,
        };
    }

    /// Changes a slot's type (used by `local.set`-style writes where the type
    /// is static, and by operand pushes reusing a slot).
    pub fn set_slot_type(&mut self, index: usize, ty: ValueType) {
        self.slots[index].ty = ty;
    }

    /// Marks a slot's home memory as up to date.
    pub fn mark_in_memory(&mut self, index: usize) {
        self.slots[index].in_memory = true;
    }

    /// Marks a slot's tag as stored / not stored.
    pub fn set_tag_in_memory(&mut self, index: usize, stored: bool) {
        self.slots[index].tag_in_memory = stored;
    }

    /// Truncates the operand stack to `height` operands (used at control-flow
    /// boundaries and in unreachable code), releasing register bindings.
    pub fn truncate_operands(&mut self, height: usize) {
        while self.height() > height {
            self.pop();
        }
    }

    /// Resets every slot to the canonical "in memory" state (used after the
    /// compiler has flushed at a control-flow boundary). Tags' stored state
    /// is conservatively cleared unless `keep_tags` is set.
    pub fn reset_to_memory(&mut self, keep_tags: bool) {
        for slot in &mut self.slots {
            slot.loc = Loc::Memory;
            slot.in_memory = true;
            if !keep_tags {
                slot.tag_in_memory = false;
            }
        }
        for list in &mut self.gpr_slots {
            list.clear();
        }
        for list in &mut self.fpr_slots {
            list.clear();
        }
    }

    // ---- Register bindings -------------------------------------------------

    /// The slots currently cached by `reg`.
    pub fn slots_in_reg(&self, reg: AnyReg) -> &[u32] {
        match reg {
            AnyReg::Gpr(r) => &self.gpr_slots[r.index()],
            AnyReg::Fpr(r) => &self.fpr_slots[r.index()],
        }
    }

    /// True if `reg` may cache an additional slot under the current
    /// multi-register policy.
    pub fn can_share(&self, reg: AnyReg) -> bool {
        self.multi_register || self.slots_in_reg(reg).is_empty()
    }

    fn bind(&mut self, reg: AnyReg, slot: u32) {
        let list = match reg {
            AnyReg::Gpr(r) => &mut self.gpr_slots[r.index()],
            AnyReg::Fpr(r) => &mut self.fpr_slots[r.index()],
        };
        if !list.contains(&slot) {
            list.push(slot);
        }
    }

    fn unbind(&mut self, reg: AnyReg, slot: u32) {
        let list = match reg {
            AnyReg::Gpr(r) => &mut self.gpr_slots[r.index()],
            AnyReg::Fpr(r) => &mut self.fpr_slots[r.index()],
        };
        list.retain(|&s| s != slot);
    }

    /// Adds an additional binding of `slot` to `reg` (multi-register sharing).
    pub fn share(&mut self, reg: AnyReg, slot: usize) {
        self.bind(reg, slot as u32);
        self.slots[slot].loc = Loc::Reg(reg);
    }

    /// Finds a free allocatable register of the requested bank, or `None` if
    /// all are occupied. Allocation is first-fit from the low registers, as
    /// production baseline compilers do, which also leaves the high registers
    /// free for the optimizing tier's slot promotion.
    pub fn free_reg(&mut self, float: bool) -> Option<AnyReg> {
        if float {
            for index in 1..NUM_FPRS {
                if self.fpr_slots[index].is_empty() {
                    return Some(AnyReg::Fpr(FReg(index as u8)));
                }
            }
            None
        } else {
            for index in 1..NUM_GPRS {
                if self.gpr_slots[index].is_empty() {
                    return Some(AnyReg::Gpr(Reg(index as u8)));
                }
            }
            None
        }
    }

    /// Picks a register to evict when none are free (round robin over the
    /// allocatable registers).
    pub fn evict_candidate(&mut self, float: bool) -> AnyReg {
        if float {
            let index = self.next_fpr;
            self.next_fpr = 1 + (self.next_fpr % (NUM_FPRS - 1));
            AnyReg::Fpr(FReg(index as u8))
        } else {
            let index = self.next_gpr;
            self.next_gpr = 1 + (self.next_gpr % (NUM_GPRS - 1));
            AnyReg::Gpr(Reg(index as u8))
        }
    }

    /// Removes all bindings of `reg` and returns the slots it cached.
    pub fn clear_reg(&mut self, reg: AnyReg) -> Vec<u32> {
        let list = match reg {
            AnyReg::Gpr(r) => std::mem::take(&mut self.gpr_slots[r.index()]),
            AnyReg::Fpr(r) => std::mem::take(&mut self.fpr_slots[r.index()]),
        };
        for &slot in &list {
            let s = &mut self.slots[slot as usize];
            if s.loc == Loc::Reg(reg) {
                s.loc = Loc::Memory;
            }
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> AbstractState {
        AbstractState::new(&[ValueType::I32, ValueType::F64], true)
    }

    #[test]
    fn initial_state_has_locals_in_memory() {
        let s = state();
        assert_eq!(s.num_locals(), 2);
        assert_eq!(s.height(), 0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 2);
        assert!(s.slot(0).in_memory && s.slot(0).tag_in_memory);
        assert_eq!(s.slot(1).ty, ValueType::F64);
        assert_eq!(s.slot(0).loc, Loc::Memory);
    }

    #[test]
    fn push_pop_tracks_bindings() {
        let mut s = state();
        let r = s.free_reg(false).unwrap();
        let slot = s.push(ValueType::I32, Loc::Reg(r));
        assert_eq!(s.height(), 1);
        assert_eq!(s.slots_in_reg(r), &[slot as u32]);
        assert_eq!(s.slot(slot).reg(), Some(r));
        assert!(!s.slot(slot).in_memory);
        let popped = s.pop();
        assert_eq!(popped.reg(), Some(r));
        assert!(s.slots_in_reg(r).is_empty());
        assert_eq!(s.height(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn pop_empty_operand_stack_panics() {
        let mut s = state();
        s.pop();
    }

    #[test]
    fn constants_are_tracked() {
        let mut s = state();
        let slot = s.push(ValueType::I32, Loc::Const(42));
        assert_eq!(s.slot(slot).constant(), Some(42));
        assert_eq!(s.slot(slot).reg(), None);
        assert!(!s.slot(slot).in_memory);
    }

    #[test]
    fn sharing_respects_multi_register_policy() {
        let mut multi = AbstractState::new(&[ValueType::I32], true);
        let r = multi.free_reg(false).unwrap();
        multi.set_slot(0, Loc::Reg(r), true, true);
        assert!(multi.can_share(r), "MR allows a second slot in the register");
        let op = multi.push(ValueType::I32, Loc::Memory);
        multi.share(r, op);
        assert_eq!(multi.slots_in_reg(r).len(), 2);

        let mut single = AbstractState::new(&[ValueType::I32], false);
        let r = single.free_reg(false).unwrap();
        single.set_slot(0, Loc::Reg(r), true, true);
        assert!(!single.can_share(r), "single-register mode forbids sharing");
    }

    #[test]
    fn free_reg_exhaustion_and_eviction() {
        let mut s = AbstractState::new(&[], true);
        let mut regs = Vec::new();
        while let Some(r) = s.free_reg(false) {
            let slot = s.push(ValueType::I32, Loc::Reg(r));
            regs.push((r, slot));
            if regs.len() > 32 {
                panic!("free_reg never exhausted");
            }
        }
        assert_eq!(regs.len(), NUM_GPRS - 1, "scratch register is not allocatable");
        let victim = s.evict_candidate(false);
        assert!(victim.as_gpr().is_some());
        assert_ne!(victim.as_gpr().unwrap(), SCRATCH_GPR);
        let cached = s.clear_reg(victim);
        assert_eq!(cached.len(), 1);
        assert_eq!(s.slot(cached[0] as usize).loc, Loc::Memory);
    }

    #[test]
    fn float_and_int_banks_are_independent() {
        let mut s = AbstractState::new(&[], true);
        let g = s.free_reg(false).unwrap();
        let f = s.free_reg(true).unwrap();
        assert!(!g.is_float());
        assert!(f.is_float());
        s.push(ValueType::I64, Loc::Reg(g));
        s.push(ValueType::F64, Loc::Reg(f));
        assert_eq!(s.slots_in_reg(g).len(), 1);
        assert_eq!(s.slots_in_reg(f).len(), 1);
    }

    #[test]
    fn reset_to_memory_clears_bindings() {
        let mut s = state();
        let r = s.free_reg(false).unwrap();
        s.push(ValueType::I32, Loc::Reg(r));
        s.push(ValueType::I32, Loc::Const(7));
        s.reset_to_memory(false);
        assert_eq!(s.slot(2).loc, Loc::Memory);
        assert_eq!(s.slot(3).loc, Loc::Memory);
        assert!(s.slot(2).in_memory);
        assert!(!s.slot(2).tag_in_memory);
        assert!(s.slots_in_reg(r).is_empty());

        s.reset_to_memory(true);
        // keep_tags does not reset already-false flags to true.
        assert!(!s.slot(2).tag_in_memory);
    }

    #[test]
    fn truncate_operands_releases_registers() {
        let mut s = state();
        let r = s.free_reg(false).unwrap();
        s.push(ValueType::I32, Loc::Reg(r));
        s.push(ValueType::I32, Loc::Const(1));
        s.push(ValueType::I32, Loc::Memory);
        s.truncate_operands(1);
        assert_eq!(s.height(), 1);
        assert_eq!(s.slots_in_reg(r), &[2u32], "remaining operand keeps its register");
        s.truncate_operands(0);
        assert!(s.slots_in_reg(r).is_empty());
    }

    #[test]
    fn operand_index_from_top() {
        let mut s = state();
        s.push(ValueType::I32, Loc::Const(1));
        s.push(ValueType::I32, Loc::Const(2));
        assert_eq!(s.operand_index(0), 3);
        assert_eq!(s.operand_index(1), 2);
        assert_eq!(s.slot(s.operand_index(0)).constant(), Some(2));
    }
}
