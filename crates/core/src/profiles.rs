//! Design profiles reproducing the six baseline compilers of the paper's
//! Fig. 3.
//!
//! Each production engine is modelled as a configuration of the same
//! abstract-interpretation compiler — exactly the paper's observation that
//! all six are "variations on a basic abstract-interpretation approach". The
//! feature letters follow Fig. 3: `MR` multiple register allocation, `R`
//! register allocation, `K` constant tracking, `KF` constant folding, `ISEL`
//! instruction selection, `TAG` value tags, `MAP` stackmaps, `MV`
//! multi-value.

use crate::options::{CompilerOptions, ProbeMode, TagStrategy};

/// One row of the paper's Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineProfile {
    /// The engine name used in the paper (e.g. `"wizeng-spc"`).
    pub name: &'static str,
    /// Implementation language of the real engine (for the table).
    pub language: &'static str,
    /// Year the baseline tier appeared.
    pub year: u32,
    /// The compiler configuration reproducing the engine's feature set.
    pub options: CompilerOptions,
    /// Free-form description, mirroring the table's last column.
    pub description: &'static str,
}

impl BaselineProfile {
    /// The feature string in the paper's notation (e.g. `"MR K KF ISEL TAG MV"`).
    pub fn feature_string(&self) -> String {
        let o = &self.options;
        let mut parts = Vec::new();
        if o.register_allocation {
            parts.push(if o.multi_register { "MR" } else { "R" });
        }
        if o.track_constants {
            parts.push("K");
        }
        if o.constant_folding {
            parts.push("KF");
        }
        if o.instruction_selection {
            parts.push("ISEL");
        }
        match o.tagging {
            TagStrategy::Stackmaps => parts.push("MAP"),
            t if t.uses_tags() => parts.push("TAG"),
            _ => {}
        }
        if o.multi_value {
            parts.push("MV");
        }
        parts.join(" ")
    }
}

/// `wizeng-spc`: the Wizard research engine's single-pass compiler
/// (this reproduction's default configuration).
pub fn wizard_spc() -> BaselineProfile {
    BaselineProfile {
        name: "wizeng-spc",
        language: "Virgil",
        year: 2023,
        options: CompilerOptions {
            name: "wizeng-spc".to_string(),
            ..CompilerOptions::allopt()
        },
        description: "The Wizard Research Engine's single-pass compiler.",
    }
}

/// `wazero`: an engine written in Go; register allocation only, lowers
/// through an internal representation first.
pub fn wazero() -> BaselineProfile {
    BaselineProfile {
        name: "wazero",
        language: "Go",
        year: 2022,
        options: CompilerOptions {
            name: "wazero".to_string(),
            register_allocation: true,
            multi_register: false,
            track_constants: false,
            constant_folding: false,
            instruction_selection: false,
            tagging: TagStrategy::None,
            multi_value: false,
            probe_mode: ProbeMode::Runtime,
            extra_lowering_pass: true,
            copy_and_patch: false,
            debug_metadata: false,
        },
        description: "An open-source engine written in Go.",
    }
}

/// `wasm-now`: a research copy-and-patch code generator.
pub fn wasm_now() -> BaselineProfile {
    BaselineProfile {
        name: "wasm-now",
        language: "C++",
        year: 2022,
        options: CompilerOptions {
            name: "wasm-now".to_string(),
            register_allocation: true,
            multi_register: true,
            track_constants: true,
            constant_folding: false,
            instruction_selection: true,
            tagging: TagStrategy::None,
            multi_value: false,
            probe_mode: ProbeMode::Runtime,
            extra_lowering_pass: false,
            copy_and_patch: true,
            debug_metadata: false,
        },
        description: "A research project using Copy&Patch code generation.",
    }
}

/// `wasmer-base`: the `--singlepass` backend of wasmer.
pub fn wasmer_base() -> BaselineProfile {
    BaselineProfile {
        name: "wasmer-base",
        language: "Rust",
        year: 2020,
        options: CompilerOptions {
            name: "wasmer-base".to_string(),
            register_allocation: true,
            multi_register: false,
            track_constants: true,
            constant_folding: false,
            instruction_selection: false,
            tagging: TagStrategy::None,
            multi_value: true,
            probe_mode: ProbeMode::Runtime,
            extra_lowering_pass: false,
            copy_and_patch: false,
            debug_metadata: false,
        },
        description: "The --singlepass option of wasmer.",
    }
}

/// `v8-liftoff`: the baseline Wasm compiler in V8.
pub fn v8_liftoff() -> BaselineProfile {
    BaselineProfile {
        name: "v8-liftoff",
        language: "C++",
        year: 2018,
        options: CompilerOptions {
            name: "v8-liftoff".to_string(),
            register_allocation: true,
            multi_register: true,
            track_constants: true,
            constant_folding: false,
            instruction_selection: true,
            tagging: TagStrategy::Stackmaps,
            multi_value: true,
            probe_mode: ProbeMode::Runtime,
            extra_lowering_pass: false,
            copy_and_patch: false,
            debug_metadata: true,
        },
        description: "The baseline Wasm compiler in V8.",
    }
}

/// `sm-base`: the baseline Wasm compiler in SpiderMonkey.
pub fn sm_base() -> BaselineProfile {
    BaselineProfile {
        name: "sm-base",
        language: "C++",
        year: 2018,
        options: CompilerOptions {
            name: "sm-base".to_string(),
            register_allocation: true,
            multi_register: true,
            track_constants: true,
            constant_folding: false,
            instruction_selection: true,
            tagging: TagStrategy::Stackmaps,
            multi_value: true,
            probe_mode: ProbeMode::Runtime,
            extra_lowering_pass: false,
            copy_and_patch: false,
            debug_metadata: false,
        },
        description: "The baseline Wasm compiler in SpiderMonkey.",
    }
}

/// All six profiles in the paper's Fig. 3 order.
pub fn all_profiles() -> Vec<BaselineProfile> {
    vec![
        wizard_spc(),
        wazero(),
        wasm_now(),
        wasmer_base(),
        v8_liftoff(),
        sm_base(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_profiles_matching_figure3() {
        let profiles = all_profiles();
        assert_eq!(profiles.len(), 6);
        let by_name: std::collections::HashMap<_, _> =
            profiles.iter().map(|p| (p.name, p)).collect();
        assert_eq!(by_name["wizeng-spc"].feature_string(), "MR K KF ISEL TAG MV");
        assert_eq!(by_name["wazero"].feature_string(), "R");
        assert_eq!(by_name["wasm-now"].feature_string(), "MR K ISEL");
        assert_eq!(by_name["wasmer-base"].feature_string(), "R K MV");
        assert_eq!(by_name["v8-liftoff"].feature_string(), "MR K ISEL MAP MV");
        assert_eq!(by_name["sm-base"].feature_string(), "MR K ISEL MAP MV");
    }

    #[test]
    fn only_wizard_uses_value_tags() {
        for p in all_profiles() {
            if p.name == "wizeng-spc" {
                assert!(p.options.tagging.uses_tags());
            } else {
                assert!(!p.options.tagging.uses_tags(), "{}", p.name);
            }
        }
    }

    #[test]
    fn years_and_languages_match_the_table() {
        let profiles = all_profiles();
        assert_eq!(profiles[0].year, 2023);
        assert_eq!(profiles[1].language, "Go");
        assert_eq!(profiles[3].language, "Rust");
        assert!(profiles.iter().all(|p| !p.description.is_empty()));
    }
}
