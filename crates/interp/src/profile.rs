//! Execution profiles exported by the lower tiers for the optimizing tier.
//!
//! Production engines feed their optimizing compiler with profiles collected
//! while the code still runs in the interpreter or the baseline tier. This
//! reproduction does the same: the engine's branch monitor accumulates
//! per-site taken/not-taken counts (through the probe interface both tiers
//! share), and exports them per function as a [`FuncProfile`] when a
//! function is promoted to the optimizing tier. The profile lives in this
//! crate — below both the engine and the optimizing compiler in the
//! dependency graph — so `optc` can consume what the engine's monitors
//! produce without either depending on the other.
//!
//! A profile is always advisory: an empty profile (the common case when no
//! instrumentation is attached) simply leaves the optimizing tier's block
//! layout in bytecode order, and a stale profile can only misplace blocks,
//! never change semantics.

use std::collections::HashMap;

/// Taken / not-taken counts of one conditional branch site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchSummary {
    /// Times the condition was true (the branch was taken).
    pub taken: u64,
    /// Times the condition was false.
    pub not_taken: u64,
}

impl BranchSummary {
    /// True if the site was observed to be mostly taken. `None` when the
    /// site was never observed or is perfectly balanced.
    pub fn bias(&self) -> Option<bool> {
        match self.taken.cmp(&self.not_taken) {
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// Total observations of the site.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }
}

/// The branch profile of one function, keyed by the bytecode offset of the
/// conditional branch (`br_if`, `if`, or `br_table`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncProfile {
    sites: HashMap<u32, BranchSummary>,
}

impl FuncProfile {
    /// An empty profile (no observations; layout falls back to bytecode
    /// order).
    pub fn empty() -> FuncProfile {
        FuncProfile::default()
    }

    /// Records `count` observations of the branch at `offset` with the given
    /// outcome.
    pub fn record(&mut self, offset: u32, taken: bool, count: u64) {
        let site = self.sites.entry(offset).or_default();
        if taken {
            site.taken += count;
        } else {
            site.not_taken += count;
        }
    }

    /// The summary of the branch at `offset`, if observed.
    pub fn site(&self, offset: u32) -> Option<&BranchSummary> {
        self.sites.get(&offset)
    }

    /// The observed bias of the branch at `offset` (see
    /// [`BranchSummary::bias`]).
    pub fn bias(&self, offset: u32) -> Option<bool> {
        self.sites.get(&offset).and_then(|s| s.bias())
    }

    /// True if the profile has no observations at all.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of observed branch sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_reflects_counts() {
        let mut p = FuncProfile::empty();
        assert!(p.is_empty());
        assert_eq!(p.bias(4), None);
        p.record(4, true, 10);
        p.record(4, false, 3);
        p.record(9, false, 1);
        p.record(12, true, 2);
        p.record(12, false, 2);
        assert_eq!(p.bias(4), Some(true));
        assert_eq!(p.bias(9), Some(false));
        assert_eq!(p.bias(12), None, "balanced sites have no bias");
        assert_eq!(p.site(4).unwrap().total(), 13);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }
}
