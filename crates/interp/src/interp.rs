//! The in-place interpreter (the reproduction's Wizard-INT).
//!
//! The interpreter executes the original bytecode directly — no rewriting —
//! using the explicit tagged value stack for locals and operands and the
//! per-function [`crate::sidetable::Sidetable`] for control
//! transfers. Every push writes both the value and its tag, every operand is
//! read from memory, and every instruction pays a dispatch cost: exactly the
//! per-instruction work the paper's baseline compilers eliminate, charged
//! through the shared [`CostModel`].
//!
//! Like the CPU simulator, the interpreter is a *resumable frame executor*:
//! it runs one frame until it returns, calls, or traps, and the engine
//! performs the actual transfer (so calls can cross tiers and trigger
//! tier-up).

use crate::probe::{FrameAccessor, ProbeSink};
use crate::sidetable::{build_sidetable, BranchEntry, Sidetable, SidetableError};
use machine::cost::{CostModel, CycleCounter};
use machine::cpu::ExecContext;
use machine::inst::TrapCode;
use machine::lower::classify;
use machine::values::{ValueTag, WasmValue, NULL_REF_BITS};
use wasm::fuel::FuelPlan;
use wasm::module::Module;
use wasm::opcode::Opcode;
use wasm::reader::BytecodeReader;
use wasm::types::ValueType;
use wasm::validate::FuncInfo;

/// Per-function metadata the interpreter (and the engine's frame management)
/// needs, computed once per function at load time.
#[derive(Debug, Clone)]
pub struct PreparedFunction {
    /// The function's index in the function index space.
    pub func_index: u32,
    /// Number of parameters.
    pub num_params: u32,
    /// Number of results.
    pub num_results: u32,
    /// Types of all local slots (parameters followed by declared locals).
    pub local_types: Vec<ValueType>,
    /// Maximum operand stack height (from validation).
    pub max_stack: u32,
    /// The control-transfer sidetable.
    pub sidetable: Sidetable,
    /// Length of the body in bytes.
    pub body_len: u32,
    /// The static fuel-charging schedule shared with the compiled tiers.
    pub fuel: FuelPlan,
}

impl PreparedFunction {
    /// The number of local slots.
    pub fn num_locals(&self) -> u32 {
        self.local_types.len() as u32
    }

    /// Total frame size in value-stack slots (locals plus operand stack).
    pub fn frame_slots(&self) -> u32 {
        self.num_locals() + self.max_stack
    }
}

/// Prepares a defined function for execution: builds its sidetable and
/// collects the frame-layout metadata.
///
/// # Errors
///
/// Returns an error for malformed bodies (validation normally runs first).
pub fn prepare(
    module: &Module,
    func_index: u32,
    info: &FuncInfo,
) -> Result<PreparedFunction, SidetableError> {
    let sig = module.func_type(func_index).ok_or(SidetableError {
        offset: 0,
        message: format!("function {func_index} has no signature"),
    })?;
    let local_types = module.func_local_types(func_index).ok_or(SidetableError {
        offset: 0,
        message: format!("function {func_index} has no body"),
    })?;
    let sidetable = build_sidetable(module, func_index)?;
    let decl = module.func_decl(func_index).ok_or(SidetableError {
        offset: 0,
        message: format!("function {func_index} has no body"),
    })?;
    let fuel = FuelPlan::build(&decl.code).map_err(|e| SidetableError {
        offset: 0,
        message: format!("fuel plan: {e}"),
    })?;
    Ok(PreparedFunction {
        func_index,
        num_params: sig.params.len() as u32,
        num_results: sig.results.len() as u32,
        local_types,
        max_stack: info.max_stack,
        sidetable,
        body_len: info.body_len,
        fuel,
    })
}

/// Why the interpreter stopped executing a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpExit {
    /// The function returned; results are in the frame's first result slots.
    Return,
    /// A direct call. Arguments are the top operand-stack values.
    Call {
        /// The callee.
        func_index: u32,
        /// Bytecode offset to resume at after the call.
        resume_ip: usize,
        /// Bytecode offset of the `call` instruction itself — the caller's
        /// position in a backtrace while the callee runs.
        site_offset: u32,
    },
    /// An indirect call. Arguments are on the operand stack; the table
    /// element index has already been popped.
    CallIndirect {
        /// Expected signature.
        type_index: u32,
        /// Table index.
        table_index: u32,
        /// The dynamic element index.
        entry_index: u32,
        /// Bytecode offset to resume at after the call.
        resume_ip: usize,
        /// Bytecode offset of the `call_indirect` instruction itself.
        site_offset: u32,
    },
    /// The OSR hook fired at a hot loop-body start: the engine should try to
    /// transfer this frame into the optimizing tier, or resume interpreting
    /// at `offset` (whose meter work has not yet run) to continue in place.
    Osr {
        /// The wasm bytecode offset of the loop-body start.
        offset: u32,
    },
    /// Execution trapped.
    Trap {
        /// The trap reason.
        code: TrapCode,
        /// Bytecode offset of the trapping instruction.
        offset: u32,
    },
}

/// The in-place interpreter.
#[derive(Debug, Clone, Default)]
pub struct Interpreter {
    cost: CostModel,
}

impl Interpreter {
    /// Creates an interpreter using the given cost model.
    pub fn new(cost: CostModel) -> Interpreter {
        Interpreter { cost }
    }

    /// The interpreter's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Runs one frame of `func` starting at bytecode offset `start_ip` until
    /// it returns, calls out, or traps.
    ///
    /// The frame's locals must already be initialized at
    /// `ctx.frame_base .. ctx.frame_base + num_locals`, and
    /// `ctx.values.sp()` must point at the frame's current operand top.
    pub fn run(
        &self,
        module: &Module,
        func: &PreparedFunction,
        start_ip: usize,
        ctx: &mut ExecContext<'_>,
        probes: &mut dyn ProbeSink,
        cycles: &mut CycleCounter,
    ) -> InterpExit {
        let decl = match module.func_decl(func.func_index) {
            Some(d) => d,
            None => return InterpExit::Trap { code: TrapCode::HostError, offset: 0 },
        };
        let code: &[u8] = &decl.code;
        let frame_base = ctx.frame_base;
        let operand_base = frame_base + func.local_types.len();
        let cost = &self.cost;
        let mut reader = BytecodeReader::new(code);
        reader.set_pc(start_ip);

        // Traps report the offset of the instruction being executed; `ip` is
        // declared before the macro so the macro body (hygienically) resolves
        // to this binding, updated at the top of the dispatch loop.
        let mut ip: usize;
        macro_rules! trap {
            ($code:expr) => {
                return InterpExit::Trap { code: $code, offset: ip as u32 }
            };
        }

        loop {
            if reader.is_at_end() {
                // Fell off the end of the body: function return.
                self.finish_return(func, ctx, cycles);
                return InterpExit::Return;
            }
            ip = reader.pc();

            // Metering runs before probes so a fuel trap fires at the same
            // offset in every tier (compiled code emits the same fused
            // check: fuel, then epoch, then probe). One check per site —
            // loop-head epoch polls ride the region's fuel decrement, so a
            // metered loop iteration pays `fuel_check` once, not twice.
            let metered = ctx.meter.fuel.is_some() || ctx.meter.epoch.is_some();
            if metered || ctx.meter.has_sampler() || ctx.meter.has_osr() {
                let charge = func.fuel.charge_at(ip as u32);
                if charge.is_some() || func.fuel.epoch_check_at(ip as u32) {
                    // OSR is polled before any fuel is charged: when the hook
                    // fires, this site's meter work has not run, and the
                    // opt-tier OSR entry jumps to the loop header whose first
                    // instruction re-executes the same check — so the charge
                    // happens exactly once regardless of the transition.
                    if let Some(offset) = ctx.meter.poll_osr(|| ip as u32) {
                        return InterpExit::Osr { offset };
                    }
                    if metered {
                        cycles.charge(cost.fuel_check);
                        if let Err(t) = ctx.meter.charge_fuel(charge.unwrap_or(0)) {
                            trap!(t);
                        }
                        if let Err(t) = ctx.meter.check_epoch() {
                            trap!(t);
                        }
                    }
                    // The sampler shares the metering sites but charges no
                    // simulated cycles: enabling the profiler must not
                    // perturb deterministic cycle counts.
                    ctx.meter.poll_sampler(|| ip as u32);
                }
            }

            if probes.has_probe(func.func_index, ip as u32) {
                cycles.charge(cost.probe_runtime);
                let mut accessor = FrameAccessor::new(
                    ctx.values,
                    frame_base,
                    func.local_types.len(),
                    func.func_index,
                    ip as u32,
                );
                probes.fire(&mut accessor);
            }

            let op = match reader.read_opcode() {
                Ok(op) => op,
                Err(_) => trap!(TrapCode::HostError),
            };
            cycles.charge(cost.interp_dispatch);

            // Fast path: simple value operations classified by the shared
            // lowering table.
            if let Some(class) = classify(op) {
                let arity = class.arity();
                let sp = ctx.values.sp();
                let mut operands = [0u64; 2];
                for (i, operand) in operands.iter_mut().enumerate().take(arity) {
                    *operand = ctx.values.read(sp - arity + i);
                    cycles.charge(cost.slot_load);
                }
                cycles.charge(self.class_cost(op));
                match class.evaluate(&operands[..arity]) {
                    Ok(bits) => {
                        let result_slot = sp - arity;
                        ctx.values.write_tagged(
                            result_slot,
                            bits,
                            ValueTag::for_type(class.result_type()),
                        );
                        ctx.values.set_sp(result_slot + 1);
                        cycles.charge(cost.slot_store + cost.tag_store);
                    }
                    Err(code) => trap!(code),
                }
                continue;
            }

            match op {
                Opcode::Nop => {}
                Opcode::Unreachable => trap!(TrapCode::Unreachable),
                Opcode::Block | Opcode::Loop => {
                    let _ = reader.read_block_type();
                    cycles.charge(cost.interp_control + cost.interp_imm);
                }
                Opcode::End => {
                    cycles.charge(cost.interp_control);
                }
                Opcode::If => {
                    let _ = reader.read_block_type();
                    let sp = ctx.values.sp() - 1;
                    let cond = ctx.values.read(sp);
                    ctx.values.set_sp(sp);
                    cycles.charge(cost.slot_load + cost.branch + cost.interp_imm);
                    if cond == 0 {
                        let entry = *match func.sidetable.branch(ip as u32) {
                            Some(e) => e,
                            None => trap!(TrapCode::HostError),
                        };
                        self.take_branch(&entry, operand_base, ctx, cycles, &mut reader);
                    }
                }
                Opcode::Else => {
                    cycles.charge(cost.interp_control + cost.jump);
                    let entry = *match func.sidetable.branch(ip as u32) {
                        Some(e) => e,
                        None => trap!(TrapCode::HostError),
                    };
                    self.take_branch(&entry, operand_base, ctx, cycles, &mut reader);
                }
                Opcode::Br => {
                    let _ = reader.read_index();
                    cycles.charge(cost.jump + cost.interp_imm);
                    let entry = *match func.sidetable.branch(ip as u32) {
                        Some(e) => e,
                        None => trap!(TrapCode::HostError),
                    };
                    self.take_branch(&entry, operand_base, ctx, cycles, &mut reader);
                }
                Opcode::BrIf => {
                    let _ = reader.read_index();
                    let sp = ctx.values.sp() - 1;
                    let cond = ctx.values.read(sp);
                    ctx.values.set_sp(sp);
                    cycles.charge(cost.slot_load + cost.branch + cost.interp_imm);
                    if cond != 0 {
                        let entry = *match func.sidetable.branch(ip as u32) {
                            Some(e) => e,
                            None => trap!(TrapCode::HostError),
                        };
                        self.take_branch(&entry, operand_base, ctx, cycles, &mut reader);
                    }
                }
                Opcode::BrTable => {
                    let _ = reader.read_branch_table();
                    let sp = ctx.values.sp() - 1;
                    let index = ctx.values.read(sp) as usize;
                    ctx.values.set_sp(sp);
                    cycles.charge(cost.slot_load + cost.br_table);
                    let entries = match func.sidetable.br_table(ip as u32) {
                        Some(e) => e,
                        None => trap!(TrapCode::HostError),
                    };
                    let entry = if index < entries.len() - 1 {
                        entries[index]
                    } else {
                        *entries.last().expect("br_table has a default")
                    };
                    self.take_branch(&entry, operand_base, ctx, cycles, &mut reader);
                }
                Opcode::Return => {
                    cycles.charge(cost.jump);
                    self.finish_return(func, ctx, cycles);
                    return InterpExit::Return;
                }
                Opcode::Call => {
                    let callee = match reader.read_index() {
                        Ok(i) => i,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    cycles.charge(cost.interp_imm + cost.interp_call_setup);
                    return InterpExit::Call {
                        func_index: callee,
                        resume_ip: reader.pc(),
                        site_offset: ip as u32,
                    };
                }
                Opcode::CallIndirect => {
                    let (type_index, table_index) = match reader.read_call_indirect() {
                        Ok(v) => v,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    let sp = ctx.values.sp() - 1;
                    let entry_index = ctx.values.read(sp) as u32;
                    ctx.values.set_sp(sp);
                    cycles.charge(cost.interp_imm * 2 + cost.slot_load + cost.interp_call_setup);
                    return InterpExit::CallIndirect {
                        type_index,
                        table_index,
                        entry_index,
                        resume_ip: reader.pc(),
                        site_offset: ip as u32,
                    };
                }
                Opcode::Drop => {
                    ctx.values.set_sp(ctx.values.sp() - 1);
                }
                Opcode::Select | Opcode::SelectT => {
                    if op == Opcode::SelectT {
                        let _ = reader.read_select_types();
                        cycles.charge(cost.interp_imm);
                    }
                    let sp = ctx.values.sp();
                    let cond = ctx.values.read(sp - 1);
                    cycles.charge(cost.slot_load * 3 + cost.select + cost.slot_store);
                    if cond != 0 {
                        // Keep the first operand: already in place.
                    } else {
                        let bits = ctx.values.read(sp - 2);
                        let tag = ctx.values.tag(sp - 2);
                        ctx.values.write_tagged(sp - 3, bits, tag);
                    }
                    ctx.values.set_sp(sp - 2);
                }
                Opcode::LocalGet => {
                    let index = match reader.read_index() {
                        Ok(i) => i as usize,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    let bits = ctx.values.read(frame_base + index);
                    let tag = ValueTag::for_type(func.local_types[index]);
                    let sp = ctx.values.sp();
                    ctx.values.write_tagged(sp, bits, tag);
                    ctx.values.set_sp(sp + 1);
                    cycles.charge(
                        cost.interp_imm + cost.slot_load + cost.slot_store + cost.tag_store,
                    );
                }
                Opcode::LocalSet | Opcode::LocalTee => {
                    let index = match reader.read_index() {
                        Ok(i) => i as usize,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    let sp = ctx.values.sp();
                    let bits = ctx.values.read(sp - 1);
                    let tag = ValueTag::for_type(func.local_types[index]);
                    ctx.values.write_tagged(frame_base + index, bits, tag);
                    if op == Opcode::LocalSet {
                        ctx.values.set_sp(sp - 1);
                    }
                    cycles.charge(
                        cost.interp_imm + cost.slot_load + cost.slot_store + cost.tag_store,
                    );
                }
                Opcode::GlobalGet => {
                    let index = match reader.read_index() {
                        Ok(i) => i as usize,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    let global = ctx.globals[index];
                    let sp = ctx.values.sp();
                    ctx.values.write_tagged(sp, global.bits, global.tag);
                    ctx.values.set_sp(sp + 1);
                    cycles.charge(
                        cost.interp_imm + cost.global + cost.slot_store + cost.tag_store,
                    );
                }
                Opcode::GlobalSet => {
                    let index = match reader.read_index() {
                        Ok(i) => i as usize,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    let sp = ctx.values.sp() - 1;
                    ctx.globals[index].bits = ctx.values.read(sp);
                    ctx.values.set_sp(sp);
                    cycles.charge(cost.interp_imm + cost.global + cost.slot_load);
                }
                Opcode::I32Const => {
                    let v = match reader.read_i32() {
                        Ok(v) => v,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    self.push(ctx, WasmValue::I32(v), cycles);
                }
                Opcode::I64Const => {
                    let v = match reader.read_i64() {
                        Ok(v) => v,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    self.push(ctx, WasmValue::I64(v), cycles);
                }
                Opcode::F32Const => {
                    let v = match reader.read_f32() {
                        Ok(v) => v,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    self.push(ctx, WasmValue::F32(v), cycles);
                }
                Opcode::F64Const => {
                    let v = match reader.read_f64() {
                        Ok(v) => v,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    self.push(ctx, WasmValue::F64(v), cycles);
                }
                Opcode::RefNull => {
                    let ty = match reader.read_ref_type() {
                        Ok(t) => t,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    let sp = ctx.values.sp();
                    ctx.values
                        .write_tagged(sp, NULL_REF_BITS, ValueTag::for_type(ty));
                    ctx.values.set_sp(sp + 1);
                    cycles.charge(cost.interp_imm + cost.slot_store + cost.tag_store);
                }
                Opcode::RefIsNull => {
                    let sp = ctx.values.sp() - 1;
                    let bits = ctx.values.read(sp);
                    ctx.values
                        .write_tagged(sp, (bits == NULL_REF_BITS) as u64, ValueTag::I32);
                    ctx.values.set_sp(sp + 1);
                    cycles.charge(cost.slot_load + cost.alu + cost.slot_store + cost.tag_store);
                }
                Opcode::RefFunc => {
                    let index = match reader.read_index() {
                        Ok(i) => i,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    self.push(ctx, WasmValue::FuncRef(Some(index)), cycles);
                }
                Opcode::MemorySize => {
                    let _ = reader.read_memory_index();
                    let pages = ctx.memory.as_deref().map(|m| m.size_pages()).unwrap_or(0);
                    self.push(ctx, WasmValue::I32(pages as i32), cycles);
                    cycles.charge(cost.memory_size);
                }
                Opcode::MemoryGrow => {
                    let _ = reader.read_memory_index();
                    let sp = ctx.values.sp() - 1;
                    let delta = ctx.values.read(sp) as u32;
                    let result = match ctx.memory.as_deref_mut() {
                        Some(m) => m.grow(delta),
                        None => -1,
                    };
                    ctx.values
                        .write_tagged(sp, result as u32 as u64, ValueTag::I32);
                    cycles.charge(cost.slot_load + cost.memory_grow + cost.slot_store + cost.tag_store);
                }
                _ if op.is_memory_access() => {
                    let memarg = match reader.read_memarg() {
                        Ok(m) => m,
                        Err(_) => trap!(TrapCode::HostError),
                    };
                    cycles.charge(cost.interp_imm * 2);
                    let width = op.access_width().expect("memory access has a width");
                    match op.signature() {
                        wasm::opcode::OpSignature::Load(result) => {
                            let sp = ctx.values.sp() - 1;
                            let addr = ctx.values.read(sp) as u32;
                            let memory = match ctx.memory.as_deref() {
                                Some(m) => m,
                                None => trap!(TrapCode::MemoryOutOfBounds),
                            };
                            let raw = match memory.load(addr, memarg.offset, width) {
                                Ok(v) => v,
                                Err(code) => trap!(code),
                            };
                            let bits = extend_load(op, raw);
                            ctx.values
                                .write_tagged(sp, bits, ValueTag::for_type(result));
                            cycles.charge(
                                cost.slot_load + cost.mem_load + cost.slot_store + cost.tag_store,
                            );
                        }
                        wasm::opcode::OpSignature::Store(_) => {
                            let sp = ctx.values.sp();
                            let value = ctx.values.read(sp - 1);
                            let addr = ctx.values.read(sp - 2) as u32;
                            ctx.values.set_sp(sp - 2);
                            let memory = match ctx.memory.as_deref_mut() {
                                Some(m) => m,
                                None => trap!(TrapCode::MemoryOutOfBounds),
                            };
                            if let Err(code) = memory.store(addr, memarg.offset, width, value) {
                                trap!(code);
                            }
                            cycles.charge(cost.slot_load * 2 + cost.mem_store);
                        }
                        _ => trap!(TrapCode::HostError),
                    }
                }
                other => {
                    debug_assert!(false, "unhandled opcode {other}");
                    trap!(TrapCode::HostError);
                }
            }
        }
    }

    fn push(&self, ctx: &mut ExecContext<'_>, value: WasmValue, cycles: &mut CycleCounter) {
        let sp = ctx.values.sp();
        ctx.values.write_value(sp, value);
        ctx.values.set_sp(sp + 1);
        cycles.charge(self.cost.interp_imm + self.cost.slot_store + self.cost.tag_store);
    }

    fn class_cost(&self, op: Opcode) -> u64 {
        use machine::inst::{AluOp, FAluOp, FUnOp};
        use machine::lower::OpClass;
        match classify(op) {
            Some(OpClass::Alu(AluOp::Mul, _)) => self.cost.mul,
            Some(OpClass::Alu(alu, _)) if alu.is_division() => self.cost.div,
            Some(OpClass::Alu(..)) | Some(OpClass::Unop(..)) | Some(OpClass::Cmp(..)) => {
                self.cost.alu
            }
            Some(OpClass::FAlu(FAluOp::Div, _)) => self.cost.fdiv,
            Some(OpClass::FUnop(FUnOp::Sqrt, _)) => self.cost.fsqrt,
            Some(OpClass::FAlu(..)) | Some(OpClass::FUnop(..)) | Some(OpClass::FCmp(..)) => {
                self.cost.falu
            }
            Some(OpClass::Convert(..)) => self.cost.convert,
            None => self.cost.alu,
        }
    }

    fn take_branch(
        &self,
        entry: &BranchEntry,
        operand_base: usize,
        ctx: &mut ExecContext<'_>,
        cycles: &mut CycleCounter,
        reader: &mut BytecodeReader<'_>,
    ) {
        let arity = entry.arity as usize;
        let dest_base = operand_base + entry.label_base as usize;
        let src_base = ctx.values.sp() - arity;
        if src_base != dest_base {
            for i in 0..arity {
                let bits = ctx.values.read(src_base + i);
                let tag = ctx.values.tag(src_base + i);
                ctx.values.write_tagged(dest_base + i, bits, tag);
                cycles.charge(self.cost.slot_load + self.cost.slot_store);
            }
        }
        ctx.values.set_sp(dest_base + arity);
        reader.set_pc(entry.target_ip as usize);
    }

    /// Copies the returning frame's results down to its base slots, matching
    /// the calling convention JIT code follows.
    fn finish_return(
        &self,
        func: &PreparedFunction,
        ctx: &mut ExecContext<'_>,
        cycles: &mut CycleCounter,
    ) {
        let results = func.num_results as usize;
        let src_base = ctx.values.sp() - results;
        let dest_base = ctx.frame_base;
        for i in 0..results {
            let bits = ctx.values.read(src_base + i);
            let tag = ctx.values.tag(src_base + i);
            ctx.values.write_tagged(dest_base + i, bits, tag);
            cycles.charge(self.cost.slot_load + self.cost.slot_store + self.cost.tag_store);
        }
    }
}

fn extend_load(op: Opcode, raw: u64) -> u64 {
    use Opcode::*;
    match op {
        I32Load8S => raw as u8 as i8 as i32 as u32 as u64,
        I32Load16S => raw as u16 as i16 as i32 as u32 as u64,
        I64Load8S => raw as u8 as i8 as i64 as u64,
        I64Load16S => raw as u16 as i16 as i64 as u64,
        I64Load32S => raw as u32 as i32 as i64 as u64,
        _ => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::NoProbes;
    use machine::memory::{LinearMemory, Table};
    use machine::values::{GlobalSlot, ValueStack};
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::{BlockType, FuncType, Limits};
    use wasm::validate::validate;

    /// A minimal single-function harness that sets up a frame and runs the
    /// interpreter to completion (no calls).
    fn run_function(
        params: Vec<ValueType>,
        results: Vec<ValueType>,
        locals: Vec<ValueType>,
        code: CodeBuilder,
        args: &[WasmValue],
    ) -> Result<Vec<WasmValue>, TrapCode> {
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::at_least(1));
        let f = b.add_func(FuncType::new(params, results.clone()), locals, code.finish());
        b.export_func("f", f);
        let module = b.finish();
        run_exported(&module, f, args, &results)
    }

    fn run_exported(
        module: &Module,
        func_index: u32,
        args: &[WasmValue],
        results: &[ValueType],
    ) -> Result<Vec<WasmValue>, TrapCode> {
        let info = validate(module).expect("valid module");
        let defined = (func_index - module.num_imported_funcs()) as usize;
        let prepared = prepare(module, func_index, &info.funcs[defined]).expect("prepare");

        let mut values = ValueStack::with_capacity(4096);
        let mut memory = LinearMemory::new(Limits::at_least(1));
        let mut globals: Vec<GlobalSlot> = module
            .globals
            .iter()
            .map(|g| {
                GlobalSlot::from_value(match g.init {
                    wasm::module::ConstExpr::I32(v) => WasmValue::I32(v),
                    wasm::module::ConstExpr::I64(v) => WasmValue::I64(v),
                    wasm::module::ConstExpr::F32(v) => WasmValue::F32(v),
                    wasm::module::ConstExpr::F64(v) => WasmValue::F64(v),
                    _ => WasmValue::I32(0),
                })
            })
            .collect();
        let mut tables: Vec<Table> = vec![];

        // Set up the frame: arguments then default-initialized locals.
        for (i, arg) in args.iter().enumerate() {
            values.write_value(i, *arg);
        }
        for (i, ty) in prepared.local_types.iter().enumerate().skip(args.len()) {
            values.write_value(i, WasmValue::default_for(*ty));
        }
        values.set_sp(prepared.num_locals() as usize);

        let interp = Interpreter::new(CostModel::default());
        let mut cycles = CycleCounter::new();
        let mut ctx = ExecContext {
            values: &mut values,
            frame_base: 0,
            memory: Some(&mut memory),
            globals: &mut globals,
            tables: &mut tables,
            meter: machine::cpu::Meter::off(),
        };
        let exit = interp.run(module, &prepared, 0, &mut ctx, &mut NoProbes, &mut cycles);
        match exit {
            InterpExit::Return => Ok(results
                .iter()
                .enumerate()
                .map(|(i, ty)| {
                    WasmValue::from_bits(values.read(i), ValueTag::for_type(*ty))
                })
                .collect()),
            InterpExit::Trap { code, .. } => Err(code),
            other => panic!("unexpected exit {other:?}"),
        }
    }

    #[test]
    fn add_two_parameters() {
        let mut c = CodeBuilder::new();
        c.local_get(0).local_get(1).op(Opcode::I32Add);
        let r = run_function(
            vec![ValueType::I32, ValueType::I32],
            vec![ValueType::I32],
            vec![],
            c,
            &[WasmValue::I32(30), WasmValue::I32(12)],
        )
        .unwrap();
        assert_eq!(r, vec![WasmValue::I32(42)]);
    }

    #[test]
    fn constants_and_arithmetic_mix() {
        let mut c = CodeBuilder::new();
        c.i32_const(10)
            .i32_const(4)
            .op(Opcode::I32Sub)
            .i32_const(7)
            .op(Opcode::I32Mul);
        let r = run_function(vec![], vec![ValueType::I32], vec![], c, &[]).unwrap();
        assert_eq!(r, vec![WasmValue::I32(42)]);
    }

    #[test]
    fn loop_computes_sum() {
        // sum = 0; while (n != 0) { sum += n; n -= 1 } return sum
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(1)
            .local_get(0)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(1);
        let r = run_function(
            vec![ValueType::I32],
            vec![ValueType::I32],
            vec![ValueType::I32],
            c,
            &[WasmValue::I32(100)],
        )
        .unwrap();
        assert_eq!(r, vec![WasmValue::I32(5050)]);
    }

    #[test]
    fn if_else_selects_branch() {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(BlockType::Value(ValueType::I32))
            .i32_const(111)
            .else_()
            .i32_const(222)
            .end();
        let t = run_function(
            vec![ValueType::I32],
            vec![ValueType::I32],
            vec![],
            c.clone(),
            &[WasmValue::I32(1)],
        )
        .unwrap();
        assert_eq!(t, vec![WasmValue::I32(111)]);
        let f = run_function(
            vec![ValueType::I32],
            vec![ValueType::I32],
            vec![],
            c,
            &[WasmValue::I32(0)],
        )
        .unwrap();
        assert_eq!(f, vec![WasmValue::I32(222)]);
    }

    #[test]
    fn early_return_and_branch_to_function_label() {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(BlockType::Empty)
            .i32_const(1)
            .return_()
            .end()
            .i32_const(2)
            .br(0);
        for (arg, expected) in [(1, 1), (0, 2)] {
            let r = run_function(
                vec![ValueType::I32],
                vec![ValueType::I32],
                vec![],
                c.clone(),
                &[WasmValue::I32(arg)],
            )
            .unwrap();
            assert_eq!(r, vec![WasmValue::I32(expected)]);
        }
    }

    #[test]
    fn br_table_dispatches() {
        // switch (x): 0 -> 10, 1 -> 20, default -> 30
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .block(BlockType::Empty)
            .block(BlockType::Empty)
            .local_get(0)
            .br_table(&[0, 1], 2)
            .end()
            .i32_const(10)
            .return_()
            .end()
            .i32_const(20)
            .return_()
            .end()
            .i32_const(30);
        for (arg, expected) in [(0, 10), (1, 20), (2, 30), (7, 30)] {
            let r = run_function(
                vec![ValueType::I32],
                vec![ValueType::I32],
                vec![],
                c.clone(),
                &[WasmValue::I32(arg)],
            )
            .unwrap();
            assert_eq!(r, vec![WasmValue::I32(expected)], "arg {arg}");
        }
    }

    #[test]
    fn floats_and_conversions() {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .op(Opcode::F64Sqrt)
            .local_get(1)
            .op(Opcode::F64ConvertI32S)
            .op(Opcode::F64Add);
        let r = run_function(
            vec![ValueType::F64, ValueType::I32],
            vec![ValueType::F64],
            vec![],
            c,
            &[WasmValue::F64(16.0), WasmValue::I32(-2)],
        )
        .unwrap();
        assert_eq!(r, vec![WasmValue::F64(2.0)]);
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let mut c = CodeBuilder::new();
        c.i32_const(100)
            .local_get(0)
            .mem(Opcode::I64Store, 3, 0)
            .i32_const(96)
            .mem(Opcode::I64Load, 3, 4);
        let r = run_function(
            vec![ValueType::I64],
            vec![ValueType::I64],
            vec![],
            c,
            &[WasmValue::I64(-123456789)],
        )
        .unwrap();
        assert_eq!(r, vec![WasmValue::I64(-123456789)]);
    }

    #[test]
    fn sign_extending_loads() {
        let mut c = CodeBuilder::new();
        c.i32_const(8)
            .i32_const(-1)
            .mem(Opcode::I32Store8, 0, 0)
            .i32_const(8)
            .mem(Opcode::I32Load8S, 0, 0)
            .i32_const(8)
            .mem(Opcode::I32Load8U, 0, 0)
            .op(Opcode::I32Add);
        let r = run_function(vec![], vec![ValueType::I32], vec![], c, &[]).unwrap();
        assert_eq!(r, vec![WasmValue::I32(-1 + 255)]);
    }

    #[test]
    fn traps_propagate() {
        let mut c = CodeBuilder::new();
        c.i32_const(1).i32_const(0).op(Opcode::I32DivU);
        let e = run_function(vec![], vec![ValueType::I32], vec![], c, &[]).unwrap_err();
        assert_eq!(e, TrapCode::DivisionByZero);

        let mut c = CodeBuilder::new();
        c.unreachable();
        let e = run_function(vec![], vec![], vec![], c, &[]).unwrap_err();
        assert_eq!(e, TrapCode::Unreachable);

        let mut c = CodeBuilder::new();
        c.i32_const(-4).mem(Opcode::I32Load, 2, 0).drop_();
        let e = run_function(vec![], vec![], vec![], c, &[]).unwrap_err();
        assert_eq!(e, TrapCode::MemoryOutOfBounds);
    }

    #[test]
    fn select_and_drop() {
        let mut c = CodeBuilder::new();
        c.i32_const(5)
            .drop_()
            .i32_const(10)
            .i32_const(20)
            .local_get(0)
            .select();
        for (arg, expected) in [(1, 10), (0, 20)] {
            let r = run_function(
                vec![ValueType::I32],
                vec![ValueType::I32],
                vec![],
                c.clone(),
                &[WasmValue::I32(arg)],
            )
            .unwrap();
            assert_eq!(r, vec![WasmValue::I32(expected)]);
        }
    }

    #[test]
    fn globals_read_and_write() {
        let mut b = ModuleBuilder::new();
        let g = b.add_global(
            wasm::types::GlobalType::mutable(ValueType::I64),
            wasm::module::ConstExpr::I64(5),
        );
        let mut c = CodeBuilder::new();
        c.global_get(g)
            .i64_const(10)
            .op(Opcode::I64Add)
            .global_set(g)
            .global_get(g);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I64]), vec![], c.finish());
        b.export_func("f", f);
        let module = b.finish();
        let r = run_exported(&module, f, &[], &[ValueType::I64]).unwrap();
        assert_eq!(r, vec![WasmValue::I64(15)]);
    }

    #[test]
    fn multi_value_block_results() {
        let mut b = ModuleBuilder::new();
        let pair = b.add_type(FuncType::new(vec![], vec![ValueType::I32, ValueType::I32]));
        let mut c = CodeBuilder::new();
        c.block(BlockType::Func(pair))
            .i32_const(30)
            .i32_const(12)
            .end()
            .op(Opcode::I32Add);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
        b.export_func("f", f);
        let module = b.finish();
        let r = run_exported(&module, f, &[], &[ValueType::I32]).unwrap();
        assert_eq!(r, vec![WasmValue::I32(42)]);
    }

    #[test]
    fn references_and_null_checks() {
        let mut c = CodeBuilder::new();
        c.ref_null(ValueType::ExternRef)
            .op(Opcode::RefIsNull)
            .local_get(0)
            .op(Opcode::RefIsNull)
            .op(Opcode::I32Add);
        let r = run_function(
            vec![ValueType::ExternRef],
            vec![ValueType::I32],
            vec![],
            c,
            &[WasmValue::ExternRef(Some(3))],
        )
        .unwrap();
        assert_eq!(r, vec![WasmValue::I32(1)]);
    }

    #[test]
    fn memory_size_and_grow() {
        let mut c = CodeBuilder::new();
        c.memory_size()
            .i32_const(2)
            .memory_grow()
            .op(Opcode::I32Add)
            .memory_size()
            .op(Opcode::I32Add);
        // size(1) + grow_result(1) + new_size(3) = 5
        let r = run_function(vec![], vec![ValueType::I32], vec![], c, &[]).unwrap();
        assert_eq!(r, vec![WasmValue::I32(5)]);
    }

    #[test]
    fn call_exit_reports_callee_and_resume() {
        let mut b = ModuleBuilder::new();
        let callee = b.add_func(FuncType::new(vec![], vec![]), vec![], CodeBuilder::new().finish());
        let mut c = CodeBuilder::new();
        c.call(callee).i32_const(1);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
        let module = b.finish();
        let info = validate(&module).unwrap();
        let prepared = prepare(&module, f, &info.funcs[1]).unwrap();

        let mut values = ValueStack::with_capacity(64);
        values.set_sp(0);
        let mut globals = vec![];
        let mut tables = vec![];
        let interp = Interpreter::default();
        let mut cycles = CycleCounter::new();
        let mut ctx = ExecContext {
            values: &mut values,
            frame_base: 0,
            memory: None,
            globals: &mut globals,
            tables: &mut tables,
            meter: machine::cpu::Meter::off(),
        };
        let exit = interp.run(&module, &prepared, 0, &mut ctx, &mut NoProbes, &mut cycles);
        assert_eq!(
            exit,
            InterpExit::Call {
                func_index: callee,
                resume_ip: 2,
                site_offset: 0,
            }
        );
    }

    #[test]
    fn cycles_accumulate_and_scale_with_work() {
        let mut short = CodeBuilder::new();
        short.i32_const(1);
        let mut long = CodeBuilder::new();
        long.i32_const(0);
        for _ in 0..50 {
            long.i32_const(1).op(Opcode::I32Add);
        }

        let cycles_of = |code: CodeBuilder, results: Vec<ValueType>| {
            let mut b = ModuleBuilder::new();
            let f = b.add_func(FuncType::new(vec![], results), vec![], code.finish());
            let module = b.finish();
            let info = validate(&module).unwrap();
            let prepared = prepare(&module, f, &info.funcs[0]).unwrap();
            let mut values = ValueStack::with_capacity(256);
            let mut globals = vec![];
            let mut tables = vec![];
            let interp = Interpreter::default();
            let mut cycles = CycleCounter::new();
            let mut ctx = ExecContext {
                values: &mut values,
                frame_base: 0,
                memory: None,
                globals: &mut globals,
                tables: &mut tables,
                meter: machine::cpu::Meter::off(),
            };
            interp.run(&module, &prepared, 0, &mut ctx, &mut NoProbes, &mut cycles);
            cycles.total()
        };
        let short_cycles = cycles_of(short, vec![ValueType::I32]);
        let long_cycles = cycles_of(long, vec![ValueType::I32]);
        assert!(short_cycles > 0);
        assert!(long_cycles > short_cycles * 20);
    }
}
