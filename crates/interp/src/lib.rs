//! Interpreter tiers for the baseline-compiler study.
//!
//! * [`interp`] — the **in-place interpreter** (the reproduction's
//!   Wizard-INT): executes original bytecode over the tagged value stack
//!   using a per-function [`sidetable`] for control transfers.
//! * [`probe`] — the instrumentation interface (probes, frame accessors)
//!   shared by the interpreter and JIT-compiled code.
//! * [`profile`] — execution profiles the lower tiers export to the
//!   optimizing tier (branch bias for profile-guided block layout).
//!
//! The interpreter is a resumable frame executor: the engine drives calls
//! and returns so execution can cross tiers at any call boundary.

#![warn(missing_docs)]

pub mod interp;
pub mod probe;
pub mod profile;
pub mod sidetable;

pub use interp::{prepare, InterpExit, Interpreter, PreparedFunction};
pub use probe::{FrameAccessor, NoProbes, ProbeSink};
pub use profile::{BranchSummary, FuncProfile};
pub use sidetable::{BranchEntry, Sidetable};
