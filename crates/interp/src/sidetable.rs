//! Sidetable construction for the in-place interpreter.
//!
//! The in-place interpreter executes the original bytecode without rewriting
//! it, so it needs somewhere to find, for every branch, the target bytecode
//! offset and how to fix up the operand stack when the branch is taken. That
//! metadata is the *sidetable* (the `STP` of the paper's Fig. 2), built in a
//! single forward pass that mirrors validation's control-stack discipline:
//! every forward label's branches are recorded as fixups and resolved when
//! the construct's `end` is reached, so construction is strictly linear in
//! the size of the code.

use std::collections::HashMap;
use wasm::module::Module;
use wasm::opcode::{OpSignature, Opcode};
use wasm::reader::BytecodeReader;
use wasm::types::BlockType;

/// One branch resolution: where to jump and how to adjust the operand stack.
///
/// Taking the branch copies the top `arity` operand slots down to
/// `label_base` (the operand height of the target label) and continues at
/// `target_ip`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEntry {
    /// Bytecode offset to continue at.
    pub target_ip: u32,
    /// Operand-stack height (in slots above the locals) of the target label.
    pub label_base: u32,
    /// Number of values the label receives.
    pub arity: u32,
}

/// The per-function sidetable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sidetable {
    branches: HashMap<u32, BranchEntry>,
    br_tables: HashMap<u32, Vec<BranchEntry>>,
}

impl Sidetable {
    /// The branch entry for the `br`, `br_if`, `if`, or `else` at `offset`.
    pub fn branch(&self, offset: u32) -> Option<&BranchEntry> {
        self.branches.get(&offset)
    }

    /// The entries for the `br_table` at `offset`: one per target followed by
    /// the default.
    pub fn br_table(&self, offset: u32) -> Option<&[BranchEntry]> {
        self.br_tables.get(&offset).map(|v| v.as_slice())
    }

    /// Total number of entries (for size accounting).
    pub fn len(&self) -> usize {
        self.branches.len() + self.br_tables.values().map(|v| v.len()).sum::<usize>()
    }

    /// True if the function has no control transfers at all.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty() && self.br_tables.is_empty()
    }
}

/// An error encountered while building a sidetable. Validation normally runs
/// first, so these indicate either unvalidated input or an engine bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidetableError {
    /// Bytecode offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SidetableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sidetable error at +{}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SidetableError {}

#[derive(Debug)]
struct CtrlFrame {
    is_loop: bool,
    label_base: u32,
    params: u32,
    results: u32,
    /// First instruction of a loop body (branch target for loops).
    start_ip: u32,
    /// `br`/`br_if` offsets waiting for this frame's `end`.
    branch_fixups: Vec<u32>,
    /// `(br_table offset, slot)` pairs waiting for this frame's `end`.
    table_fixups: Vec<(u32, usize)>,
    /// Offset of an `if` whose false-branch target is not yet known.
    pending_if_false: Option<u32>,
    /// Offset of an `else` whose jump-to-end target is not yet known.
    pending_else: Option<u32>,
    unreachable: bool,
}

/// Builds the sidetable for the defined function with function-space index
/// `func_index`.
///
/// # Errors
///
/// Returns an error if the body is structurally malformed (which validation
/// would also reject).
pub fn build_sidetable(module: &Module, func_index: u32) -> Result<Sidetable, SidetableError> {
    let decl = module.func_decl(func_index).ok_or(SidetableError {
        offset: 0,
        message: format!("function {func_index} has no body"),
    })?;
    let sig = module.func_type(func_index).ok_or(SidetableError {
        offset: 0,
        message: format!("function {func_index} has no signature"),
    })?;
    let code = &decl.code;
    let mut table = Sidetable::default();
    let mut frames = vec![CtrlFrame {
        is_loop: false,
        label_base: 0,
        params: 0,
        results: sig.results.len() as u32,
        start_ip: 0,
        branch_fixups: Vec::new(),
        table_fixups: Vec::new(),
        pending_if_false: None,
        pending_else: None,
        unreachable: false,
    }];
    let mut height: u32 = 0;
    let mut reader = BytecodeReader::new(code);

    let err = |offset: usize, message: String| SidetableError { offset, message };

    while !frames.is_empty() {
        if reader.is_at_end() {
            return Err(err(code.len(), "unexpected end of body".to_string()));
        }
        let offset = reader.pc() as u32;
        let op = reader
            .read_opcode()
            .map_err(|e| err(offset as usize, e.to_string()))?;
        let unreachable = frames.last().map(|f| f.unreachable).unwrap_or(false);

        macro_rules! pop {
            ($n:expr) => {
                if !unreachable {
                    height = height.saturating_sub($n);
                }
            };
        }
        macro_rules! push {
            ($n:expr) => {
                if !unreachable {
                    height += $n;
                }
            };
        }

        match op {
            Opcode::Block | Opcode::Loop | Opcode::If => {
                let bt = reader
                    .read_block_type()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                let (params, results) = block_signature(module, bt)
                    .ok_or_else(|| err(offset as usize, "bad block type".to_string()))?;
                if op == Opcode::If {
                    pop!(1);
                }
                let label_base = if unreachable {
                    frames.last().map(|f| f.label_base).unwrap_or(0)
                } else {
                    height.saturating_sub(params)
                };
                frames.push(CtrlFrame {
                    is_loop: op == Opcode::Loop,
                    label_base,
                    params,
                    results,
                    start_ip: reader.pc() as u32,
                    branch_fixups: Vec::new(),
                    table_fixups: Vec::new(),
                    pending_if_false: if op == Opcode::If { Some(offset) } else { None },
                    pending_else: None,
                    unreachable,
                });
            }
            Opcode::Else => {
                let frame = frames.last_mut().expect("inside a frame");
                if let Some(if_offset) = frame.pending_if_false.take() {
                    table.branches.insert(
                        if_offset,
                        BranchEntry {
                            target_ip: offset + 1,
                            label_base: frame.label_base,
                            arity: frame.params,
                        },
                    );
                }
                frame.pending_else = Some(offset);
                frame.unreachable = false;
                height = frame.label_base + frame.params;
            }
            Opcode::End => {
                let frame = frames.pop().expect("inside a frame");
                let entry = BranchEntry {
                    target_ip: offset,
                    label_base: frame.label_base,
                    arity: frame.results,
                };
                if let Some(if_offset) = frame.pending_if_false {
                    table.branches.insert(if_offset, entry);
                }
                if let Some(else_offset) = frame.pending_else {
                    table.branches.insert(else_offset, entry);
                }
                for fixup in frame.branch_fixups {
                    table.branches.insert(fixup, entry);
                }
                for (table_offset, slot) in frame.table_fixups {
                    if let Some(entries) = table.br_tables.get_mut(&table_offset) {
                        entries[slot] = entry;
                    }
                }
                height = frame.label_base + frame.results;
                if let Some(parent) = frames.last() {
                    if parent.unreachable {
                        height = parent.label_base;
                    }
                }
            }
            Opcode::Br | Opcode::BrIf => {
                let depth = reader
                    .read_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                if op == Opcode::BrIf {
                    pop!(1);
                }
                record_branch(&mut table, &mut frames, offset, depth, None)
                    .map_err(|m| err(offset as usize, m))?;
                if op == Opcode::Br {
                    mark_unreachable(&mut frames, &mut height);
                }
            }
            Opcode::BrTable => {
                let (targets, default) = reader
                    .read_branch_table()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                pop!(1);
                let total = targets.len() + 1;
                table.br_tables.insert(
                    offset,
                    vec![
                        BranchEntry {
                            target_ip: 0,
                            label_base: 0,
                            arity: 0
                        };
                        total
                    ],
                );
                for (slot, depth) in targets.iter().chain(std::iter::once(&default)).enumerate() {
                    record_branch(&mut table, &mut frames, offset, *depth, Some(slot))
                        .map_err(|m| err(offset as usize, m))?;
                }
                mark_unreachable(&mut frames, &mut height);
            }
            Opcode::Return | Opcode::Unreachable => {
                mark_unreachable(&mut frames, &mut height);
            }
            Opcode::Call => {
                let callee = reader
                    .read_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                let ty = module
                    .func_type(callee)
                    .ok_or_else(|| err(offset as usize, format!("unknown callee {callee}")))?;
                pop!(ty.params.len() as u32);
                push!(ty.results.len() as u32);
            }
            Opcode::CallIndirect => {
                let (type_index, _table) = reader
                    .read_call_indirect()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                let ty = module
                    .types
                    .get(type_index as usize)
                    .ok_or_else(|| err(offset as usize, format!("unknown type {type_index}")))?;
                pop!(1 + ty.params.len() as u32);
                push!(ty.results.len() as u32);
            }
            Opcode::Drop => pop!(1),
            Opcode::Select => {
                pop!(3);
                push!(1);
            }
            Opcode::SelectT => {
                reader
                    .read_select_types()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                pop!(3);
                push!(1);
            }
            Opcode::LocalGet | Opcode::GlobalGet => {
                reader
                    .read_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                push!(1);
            }
            Opcode::LocalSet | Opcode::GlobalSet => {
                reader
                    .read_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                pop!(1);
            }
            Opcode::LocalTee => {
                reader
                    .read_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
            }
            Opcode::MemorySize => {
                reader
                    .read_memory_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                push!(1);
            }
            Opcode::MemoryGrow => {
                reader
                    .read_memory_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
            }
            Opcode::RefNull => {
                reader
                    .read_ref_type()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                push!(1);
            }
            Opcode::RefIsNull => {}
            Opcode::RefFunc => {
                reader
                    .read_index()
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                push!(1);
            }
            Opcode::Nop => {}
            _ => {
                // Constants, arithmetic, comparisons, conversions, and memory
                // accesses: derive the stack effect from the signature.
                reader
                    .skip_immediates(op)
                    .map_err(|e| err(offset as usize, e.to_string()))?;
                match op.signature() {
                    OpSignature::Const(_) => push!(1),
                    OpSignature::Unary(..) => {}
                    OpSignature::Binary(..) => {
                        pop!(2);
                        push!(1);
                    }
                    OpSignature::Load(_) => {}
                    OpSignature::Store(_) => pop!(2),
                    OpSignature::Special => {
                        return Err(err(offset as usize, format!("unhandled opcode {op}")))
                    }
                }
            }
        }
    }
    Ok(table)
}

fn block_signature(module: &Module, bt: BlockType) -> Option<(u32, u32)> {
    let (params, results) = bt.resolve(&module.types)?;
    Some((params.len() as u32, results.len() as u32))
}

fn record_branch(
    table: &mut Sidetable,
    frames: &mut [CtrlFrame],
    offset: u32,
    depth: u32,
    table_slot: Option<usize>,
) -> Result<(), String> {
    let len = frames.len();
    if depth as usize >= len {
        return Err(format!("branch depth {depth} exceeds nesting {len}"));
    }
    let frame = &mut frames[len - 1 - depth as usize];
    if frame.is_loop {
        let entry = BranchEntry {
            target_ip: frame.start_ip,
            label_base: frame.label_base,
            arity: frame.params,
        };
        match table_slot {
            Some(slot) => {
                if let Some(entries) = table.br_tables.get_mut(&offset) {
                    entries[slot] = entry;
                }
            }
            None => {
                table.branches.insert(offset, entry);
            }
        }
    } else {
        match table_slot {
            Some(slot) => frame.table_fixups.push((offset, slot)),
            None => frame.branch_fixups.push(offset),
        }
    }
    Ok(())
}

fn mark_unreachable(frames: &mut [CtrlFrame], height: &mut u32) {
    if let Some(frame) = frames.last_mut() {
        frame.unreachable = true;
        *height = frame.label_base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::{FuncType, ValueType};

    fn build(params: Vec<ValueType>, results: Vec<ValueType>, code: CodeBuilder) -> (Module, u32) {
        let mut b = ModuleBuilder::new();
        let f = b.add_func(FuncType::new(params, results), vec![], code.finish());
        (b.finish(), f)
    }

    #[test]
    fn straight_line_code_has_empty_sidetable() {
        let mut c = CodeBuilder::new();
        c.i32_const(1).i32_const(2).op(Opcode::I32Add);
        let (m, f) = build(vec![], vec![ValueType::I32], c);
        let t = build_sidetable(&m, f).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn block_branch_targets_its_end() {
        // block ; br 0 ; i32.const 1 ; drop ; end
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty).br(0).i32_const(1).drop_().end();
        let (m, f) = build(vec![], vec![], c);
        let t = build_sidetable(&m, f).unwrap();
        // The br is at offset 2 (block=0, blocktype=1, br=2).
        let entry = t.branch(2).expect("br entry");
        // Target is the `end` of the block. Layout:
        // 0 block, 1 bt, 2 br, 3 depth, 4 const, 5 imm, 6 drop, 7 end(block), 8 end(func)
        assert_eq!(entry.target_ip, 7);
        assert_eq!(entry.arity, 0);
        assert_eq!(entry.label_base, 0);
    }

    #[test]
    fn loop_branch_targets_loop_start() {
        // loop ; br_if 0 backedge driven by local 0 ; end
        let mut c = CodeBuilder::new();
        c.loop_(BlockType::Empty).local_get(0).br_if(0).end();
        let (m, f) = build(vec![ValueType::I32], vec![], c);
        let t = build_sidetable(&m, f).unwrap();
        // Layout: 0 loop, 1 bt, 2 local.get, 3 idx, 4 br_if, 5 depth, 6 end, 7 end
        let entry = t.branch(4).expect("br_if entry");
        assert_eq!(entry.target_ip, 2, "loop branches target the body start");
        assert_eq!(entry.arity, 0);
    }

    #[test]
    fn if_else_entries() {
        // if (result i32) then 1 else 2 end
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(BlockType::Value(ValueType::I32))
            .i32_const(1)
            .else_()
            .i32_const(2)
            .end();
        let (m, f) = build(vec![ValueType::I32], vec![ValueType::I32], c);
        let t = build_sidetable(&m, f).unwrap();
        // Layout: 0 local.get, 1 idx, 2 if, 3 bt, 4 const, 5 imm, 6 else, 7 const, 8 imm, 9 end, 10 end
        let if_entry = t.branch(2).expect("if false entry");
        assert_eq!(if_entry.target_ip, 7, "false branch jumps past the else");
        assert_eq!(if_entry.arity, 0);
        let else_entry = t.branch(6).expect("else entry");
        assert_eq!(else_entry.target_ip, 9, "then branch jumps to end");
        assert_eq!(else_entry.arity, 1);
    }

    #[test]
    fn if_without_else_targets_end() {
        let mut c = CodeBuilder::new();
        c.local_get(0).if_(BlockType::Empty).nop().end();
        let (m, f) = build(vec![ValueType::I32], vec![], c);
        let t = build_sidetable(&m, f).unwrap();
        // Layout: 0 local.get, 1 idx, 2 if, 3 bt, 4 nop, 5 end, 6 end
        let entry = t.branch(2).expect("if entry");
        assert_eq!(entry.target_ip, 5);
    }

    #[test]
    fn br_table_entries_cover_targets_and_default() {
        // block block br_table [1 0] 1 end end
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .block(BlockType::Empty)
            .local_get(0)
            .br_table(&[1, 0], 1)
            .end()
            .end();
        let (m, f) = build(vec![ValueType::I32], vec![], c);
        let t = build_sidetable(&m, f).unwrap();
        // Layout: 0 block,1 bt,2 block,3 bt,4 local.get,5 idx,6 br_table,...
        let entries = t.br_table(6).expect("br_table entries");
        assert_eq!(entries.len(), 3);
        // Inner block's end is at offset 11, outer at 12.
        // depth 1 = outer block, depth 0 = inner block.
        assert_eq!(entries[0].target_ip, 12);
        assert_eq!(entries[1].target_ip, 11);
        assert_eq!(entries[2].target_ip, 12);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn branch_to_function_label_targets_final_end() {
        let mut c = CodeBuilder::new();
        c.i32_const(3).br(0);
        let (m, f) = build(vec![], vec![ValueType::I32], c);
        let t = build_sidetable(&m, f).unwrap();
        // Layout: 0 const, 1 imm, 2 br, 3 depth, 4 end
        let entry = t.branch(2).expect("br to function label");
        assert_eq!(entry.target_ip, 4);
        assert_eq!(entry.arity, 1);
        assert_eq!(entry.label_base, 0);
    }

    #[test]
    fn label_base_reflects_surrounding_operands() {
        // Push two values, then a block whose branches must preserve them.
        let mut c = CodeBuilder::new();
        c.i32_const(10)
            .i32_const(20)
            .block(BlockType::Empty)
            .br(0)
            .end()
            .op(Opcode::I32Add);
        let (m, f) = build(vec![], vec![ValueType::I32], c);
        let t = build_sidetable(&m, f).unwrap();
        // br is at offset 6 (const,imm, const,imm, block,bt, br).
        let entry = t.branch(6).expect("br entry");
        assert_eq!(entry.label_base, 2, "two operands below the block");
    }

    #[test]
    fn unreachable_code_does_not_break_construction() {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .br(0)
            .op(Opcode::I32Add) // dead, operands would underflow if tracked naively
            .drop_()
            .end();
        let (m, f) = build(vec![], vec![], c);
        let t = build_sidetable(&m, f).unwrap();
        assert!(t.branch(2).is_some());
    }

    #[test]
    fn missing_function_is_an_error() {
        let (m, _) = build(vec![], vec![], CodeBuilder::new());
        let e = build_sidetable(&m, 99).unwrap_err();
        assert!(e.to_string().contains("no body"));
    }

    #[test]
    fn call_stack_effects_are_tracked() {
        let mut b = ModuleBuilder::new();
        let callee = {
            let mut c = CodeBuilder::new();
            c.i32_const(1).i32_const(2);
            b.add_func(
                FuncType::new(vec![], vec![ValueType::I32, ValueType::I32]),
                vec![],
                c.finish(),
            )
        };
        // call pushes two values; the block's branches must see label_base 2.
        let mut c = CodeBuilder::new();
        c.call(callee)
            .block(BlockType::Empty)
            .br(0)
            .end()
            .op(Opcode::I32Add);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
        let m = b.finish();
        let t = build_sidetable(&m, f).unwrap();
        // Layout: 0 call,1 idx,2 block,3 bt,4 br,5 depth,...
        assert_eq!(t.branch(4).unwrap().label_base, 2);
    }
}
