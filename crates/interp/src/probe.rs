//! Probes: the engine's flexible instrumentation hooks.
//!
//! A *probe* is a user callback attached to a bytecode location that fires
//! before the instruction executes (the paper's Section IV-D). Probes receive
//! a [`FrameAccessor`] exposing the live execution frame — locals, operand
//! stack, and position — without the instrumentation needing to know how the
//! executing tier stores values.
//!
//! The interpreter consults a [`ProbeSink`] at every instruction; the
//! single-pass compiler instead bakes the attached probes into the generated
//! code (and optimizes common probe shapes), which is what the paper's
//! Fig. 6 experiment measures.

use machine::values::{ValueStack, WasmValue};

/// A view of a live execution frame handed to probe callbacks.
///
/// This plays the role of Wizard's "opaque, lazily-allocated accessor
/// object": it can read locals and operand-stack values of the probed frame.
#[derive(Debug)]
pub struct FrameAccessor<'a> {
    values: &'a mut ValueStack,
    frame_base: usize,
    num_locals: usize,
    func_index: u32,
    offset: u32,
}

impl<'a> FrameAccessor<'a> {
    /// Creates an accessor for the frame based at `frame_base` with
    /// `num_locals` local slots, currently executing `func_index` at
    /// bytecode `offset`.
    pub fn new(
        values: &'a mut ValueStack,
        frame_base: usize,
        num_locals: usize,
        func_index: u32,
        offset: u32,
    ) -> FrameAccessor<'a> {
        FrameAccessor {
            values,
            frame_base,
            num_locals,
            func_index,
            offset,
        }
    }

    /// The function index of the probed frame.
    pub fn func_index(&self) -> u32 {
        self.func_index
    }

    /// The bytecode offset of the probed instruction.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// The number of local slots (parameters + declared locals).
    pub fn num_locals(&self) -> usize {
        self.num_locals
    }

    /// The current operand stack depth of the frame.
    pub fn operand_depth(&self) -> usize {
        self.values.sp() - (self.frame_base + self.num_locals)
    }

    /// Reads a local variable.
    pub fn local(&self, index: usize) -> WasmValue {
        debug_assert!(index < self.num_locals);
        self.values.read_value(self.frame_base + index)
    }

    /// Reads an operand stack value, where 0 is the top of the stack.
    pub fn operand_from_top(&self, depth_from_top: usize) -> WasmValue {
        let slot = self.values.sp() - 1 - depth_from_top;
        self.values.read_value(slot)
    }

    /// Reads the top of the operand stack, if non-empty.
    pub fn top_of_stack(&self) -> Option<WasmValue> {
        if self.operand_depth() == 0 {
            None
        } else {
            Some(self.operand_from_top(0))
        }
    }
}

/// The destination of probe firings during execution.
///
/// The engine implements this to route firings to the monitors a user has
/// attached; [`NoProbes`] is the empty implementation used when a module is
/// not instrumented.
pub trait ProbeSink {
    /// Returns true if any probe is attached at `(func_index, offset)`.
    /// The interpreter calls this before each instruction.
    fn has_probe(&self, func_index: u32, offset: u32) -> bool;

    /// Fires the probes attached at `(func_index, offset)`.
    fn fire(&mut self, frame: &mut FrameAccessor<'_>);

    /// Fires an *optimized* probe that receives only the top-of-stack value
    /// (the paper's intrinsified branch-monitor path). The default forwards
    /// nothing; monitors that support the fast path override it.
    fn fire_with_value(&mut self, func_index: u32, offset: u32, value: WasmValue) {
        let _ = (func_index, offset, value);
    }

    /// Increments an intrinsified counter probe. Only used by counter-style
    /// monitors compiled with full intrinsification.
    fn increment_counter(&mut self, counter_id: u32) {
        let _ = counter_id;
    }
}

/// A probe sink with no probes attached.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbes;

impl ProbeSink for NoProbes {
    fn has_probe(&self, _func_index: u32, _offset: u32) -> bool {
        false
    }

    fn fire(&mut self, _frame: &mut FrameAccessor<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::values::ValueStack;

    #[test]
    fn accessor_reads_locals_and_operands() {
        let mut vs = ValueStack::with_capacity(32);
        // Frame base 4, two locals, two operands.
        vs.write_value(4, WasmValue::I32(10));
        vs.write_value(5, WasmValue::F64(2.5));
        vs.write_value(6, WasmValue::I64(-1));
        vs.write_value(7, WasmValue::I32(99));
        vs.set_sp(8);
        let acc = FrameAccessor::new(&mut vs, 4, 2, 3, 17);
        assert_eq!(acc.func_index(), 3);
        assert_eq!(acc.offset(), 17);
        assert_eq!(acc.num_locals(), 2);
        assert_eq!(acc.operand_depth(), 2);
        assert_eq!(acc.local(0), WasmValue::I32(10));
        assert_eq!(acc.local(1), WasmValue::F64(2.5));
        assert_eq!(acc.operand_from_top(0), WasmValue::I32(99));
        assert_eq!(acc.operand_from_top(1), WasmValue::I64(-1));
        assert_eq!(acc.top_of_stack(), Some(WasmValue::I32(99)));
        // Mutating through the accessor's stack reference is possible for
        // future write support; for now just confirm the view stays coherent.
        assert_eq!(acc.operand_depth(), 2);
    }

    #[test]
    fn empty_operand_stack_has_no_top() {
        let mut vs = ValueStack::with_capacity(8);
        vs.set_sp(2);
        let acc = FrameAccessor::new(&mut vs, 0, 2, 0, 0);
        assert_eq!(acc.operand_depth(), 0);
        assert_eq!(acc.top_of_stack(), None);
    }

    #[test]
    fn no_probes_never_fires() {
        let mut sink = NoProbes;
        assert!(!sink.has_probe(0, 0));
        assert!(!sink.has_probe(7, 123));
        // Default hooks are no-ops.
        sink.fire_with_value(0, 0, WasmValue::I32(1));
        sink.increment_counter(3);
    }
}
