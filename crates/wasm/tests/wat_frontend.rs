//! Integration tests for the WAT text frontend: parsing, name resolution,
//! folded expressions, and the print → parse → encode round trip.

use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::encode::encode;
use wasm::module::ConstExpr;
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, GlobalType, Limits, ValueType};
use wasm::wat::{parse_module, print::print_module};

#[test]
fn parses_a_flat_module() {
    let m = parse_module(
        r#"(module
             (memory 1 4)
             (global $g (mut i32) (i32.const 7))
             (func $add (export "add") (param $a i32) (param $b i32) (result i32)
               local.get $a
               local.get $b
               i32.add)
             (func (export "bump") (result i32)
               global.get $g
               i32.const 1
               i32.add
               global.set $g
               global.get $g))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    assert_eq!(m.types.len(), 2);
    assert_eq!(m.exported_func("add"), Some(0));
    assert_eq!(m.exported_func("bump"), Some(1));
    assert_eq!(m.memories[0].limits, Limits::bounded(1, 4));
    assert_eq!(m.globals[0].init, ConstExpr::I32(7));
}

#[test]
fn parses_folded_expressions_and_control_flow() {
    let m = parse_module(
        r#"(module
             (func (export "max") (param i32 i32) (result i32)
               (if (result i32) (i32.gt_s (local.get 0) (local.get 1))
                 (then (local.get 0))
                 (else (local.get 1)))))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    // The folded condition is emitted before the `if` opcode.
    let code = &m.funcs[0].code;
    assert_eq!(code[0], Opcode::LocalGet.to_byte());
}

#[test]
fn labels_resolve_by_name_and_depth() {
    let m = parse_module(
        r#"(module
             (func (export "count") (param i32) (result i32) (local $acc i32)
               block $exit
                 loop $top
                   local.get 0
                   i32.eqz
                   br_if $exit
                   local.get $acc
                   local.get 0
                   i32.add
                   local.set $acc
                   local.get 0
                   i32.const 1
                   i32.sub
                   local.set 0
                   br $top
                 end
               end
               local.get $acc))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
}

#[test]
fn br_table_call_indirect_and_tables() {
    let m = parse_module(
        r#"(module
             (type $binop (func (param i32 i32) (result i32)))
             (table 4 funcref)
             (elem (offset (i32.const 0)) func $add $sub)
             (func $add (type $binop) local.get 0 local.get 1 i32.add)
             (func $sub (type $binop) local.get 0 local.get 1 i32.sub)
             (func (export "dispatch") (param i32 i32 i32) (result i32)
               local.get 1
               local.get 2
               local.get 0
               call_indirect (type $binop))
             (func (export "pick") (param i32) (result i32)
               block $b1
                 block $b0
                   local.get 0
                   br_table $b0 $b1
                 end
                 i32.const 10
                 return
               end
               i32.const 20))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    assert!(!m.elems.is_empty());
}

#[test]
fn inline_table_elem_abbreviation() {
    let m = parse_module(
        r#"(module
             (func $f (result i32) i32.const 1)
             (table funcref (elem $f $f))
             (func (export "go") (result i32)
               i32.const 0
               call_indirect (result i32)))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    assert_eq!(m.tables[0].limits, Limits::bounded(2, 2));
    assert_eq!(m.elems[0].func_indices, vec![0, 0]);
}

#[test]
fn imports_and_start() {
    let m = parse_module(
        r#"(module
             (import "env" "log" (func $log (param i32)))
             (global $g (import "env" "base") i64)
             (func $init nop)
             (func (export "run") i32.const 3 call $log)
             (start $init))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    assert_eq!(m.num_imported_funcs(), 1);
    assert_eq!(m.num_imported_globals(), 1);
    assert_eq!(m.start, Some(1));
}

#[test]
fn named_locals_follow_referenced_type_params() {
    // With a bare `(type $t)` typeuse the parameters have no inline names,
    // but declared locals must still index *after* them.
    let m = parse_module(
        r#"(module
             (type $t (func (param i32) (result i32)))
             (func (export "f") (type $t) (local $x i32)
               i32.const 7
               local.set $x
               local.get 0))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    // local.get 0 must be the parameter: the body ends with local.get 0.
    let code = &m.funcs[0].code;
    assert_eq!(code[code.len() - 3..], [0x20, 0x00, 0x0B], "reads param 0, not local $x");
    assert_eq!(m.funcs[0].declared_local_count(), 1);
}

#[test]
fn duplicate_names_are_rejected() {
    assert!(parse_module("(module (func $f) (func $f))").is_err());
    assert!(parse_module("(module (type $t (func)) (type $t (func)))").is_err());
    assert!(parse_module("(module (table $t 1 funcref) (table $t 1 funcref))").is_err());
    assert!(parse_module("(module (memory $m 1))").is_ok());
    assert!(parse_module("(module (global $g i32 (i32.const 1)) (global $g i32 (i32.const 2)))").is_err());
}

#[test]
fn rejects_bad_input() {
    assert!(parse_module("(module (func (bogus)))").is_err());
    assert!(parse_module("(module (func unknown.op))").is_err());
    assert!(parse_module("(module (func br $nope))").is_err());
    assert!(parse_module("(module (func local.get $missing))").is_err());
    assert!(parse_module("(module (export \"e\" (func 0))").is_err(), "unbalanced");
    assert!(parse_module("").is_err());
}

/// A builder-built module covering every section kind plus representative
/// instruction immediates.
fn rich_module() -> wasm::Module {
    let mut b = ModuleBuilder::new();
    let log = b.import_func("env", "log", FuncType::new(vec![ValueType::I32], vec![]));
    let mem = b.add_memory(Limits::bounded(1, 8));
    let table = b.add_table(ValueType::FuncRef, Limits::at_least(4));
    let g = b.add_global(GlobalType::mutable(ValueType::I64), ConstExpr::I64(-9));
    let gf = b.add_global(
        GlobalType::immutable(ValueType::F64),
        ConstExpr::F64(-0.1),
    );

    let mut c = CodeBuilder::new();
    c.block(BlockType::Value(ValueType::I32))
        .i32_const(7)
        .local_get(0)
        .br_if(0)
        .drop_()
        .i32_const(0)
        .mem(Opcode::I32Load, 2, 16)
        .i32_const(4)
        .mem(Opcode::I32Load, 0, 0)
        .op(Opcode::I32Add)
        .end()
        .local_tee(1)
        .call(log)
        .local_get(1)
        .i64_const(-5)
        .op(Opcode::I64Popcnt)
        .drop_()
        .f32_const(f32::NAN)
        .drop_()
        .f64_const(1.5e300)
        .drop_()
        .global_get(g)
        .drop_()
        .memory_size()
        .drop_()
        .ref_null(ValueType::ExternRef)
        .op(Opcode::RefIsNull)
        .drop_();
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32, ValueType::I32, ValueType::F64],
        c.finish(),
    );
    let mut c2 = CodeBuilder::new();
    c2.local_get(0)
        .local_get(0)
        .local_get(0)
        .br_table(&[0, 0], 0);
    let f2 = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![],
        c2.finish(),
    );
    b.export_func("work", f);
    b.export_func("jump", f2);
    b.export_memory("mem", mem);
    b.export_global("g", g);
    let _ = gf;
    b.add_elem(table, ConstExpr::I32(1), vec![f, f2]);
    b.add_data(mem, ConstExpr::I32(64), vec![0x00, 0xFF, b'"', b'\\', 0x7F]);
    b.finish()
}

#[test]
fn print_parse_reencode_is_byte_identical() {
    let module = rich_module();
    wasm::validate::validate(&module).expect("rich module validates");
    let text = print_module(&module);
    let reparsed = parse_module(&text).unwrap_or_else(|e| panic!("{}\n{text}", e.describe(&text)));
    assert_eq!(
        encode(&module),
        encode(&reparsed),
        "round trip must be byte-identical; text was:\n{text}"
    );
}

#[test]
fn print_parse_roundtrip_after_binary_decode() {
    // encode → decode → print → parse → encode is stable too.
    let module = rich_module();
    let bytes = encode(&module);
    let decoded = wasm::decode::decode(&bytes).expect("decodes");
    let text = print_module(&decoded);
    let reparsed = parse_module(&text).unwrap_or_else(|e| panic!("{}\n{text}", e.describe(&text)));
    assert_eq!(bytes, encode(&reparsed));
}

#[test]
fn printed_text_is_stable_under_reprinting() {
    let module = rich_module();
    let text = print_module(&module);
    let reparsed = parse_module(&text).expect("parses");
    assert_eq!(text, print_module(&reparsed), "printing is a fixpoint");
}

#[test]
fn float_literals_roundtrip_through_text() {
    for bits in [
        0u64,
        (-0.0f64).to_bits(),
        f64::NAN.to_bits(),
        0x7FF0_0000_0000_0001, // signaling-ish payload
        f64::MAX.to_bits(),
        1u64, // min subnormal
    ] {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.f64_const(f64::from_bits(bits));
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::F64]), vec![], c.finish());
        b.export_func("f", f);
        let m = b.finish();
        let text = print_module(&m);
        let reparsed = parse_module(&text).expect("parses");
        assert_eq!(encode(&m), encode(&reparsed), "bits {bits:#x}: {text}");
    }
}

#[test]
fn multi_value_signatures_roundtrip() {
    let mut b = ModuleBuilder::new();
    let pair = b.add_type(FuncType::new(vec![], vec![ValueType::I32, ValueType::I32]));
    let mut c = CodeBuilder::new();
    c.block(BlockType::Func(pair))
        .i32_const(1)
        .i32_const(2)
        .end()
        .op(Opcode::I32Add);
    let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
    b.export_func("f", f);
    let m = b.finish();
    wasm::validate::validate(&m).expect("validates");
    let text = print_module(&m);
    let reparsed = parse_module(&text).unwrap_or_else(|e| panic!("{}\n{text}", e.describe(&text)));
    assert_eq!(encode(&m), encode(&reparsed), "{text}");
}

#[test]
fn typed_select_roundtrips() {
    let src = r#"(module
                   (func (export "pick") (param i32) (result i32)
                     i32.const 10
                     i32.const 20
                     local.get 0
                     select (result i32)))"#;
    let m = parse_module(src).expect("parses");
    wasm::validate::validate(&m).expect("validates");
    assert!(m.funcs[0].code.contains(&0x1Cu8), "uses the select_t opcode");
    let text = print_module(&m);
    let reparsed = parse_module(&text).expect("reparses");
    assert_eq!(encode(&m), encode(&reparsed));
}

#[test]
fn names_lower_into_a_name_section() {
    let m = parse_module(
        r#"(module $demo
             (type $sig (func (param i32 i32) (result i32)))
             (import "env" "log" (func $log (type $sig)))
             (func $add (type $sig) (param $x i32) (param $y i32) (result i32)
               (local $tmp i32)
               local.get $x
               local.get $y
               i32.add
               local.set $tmp
               local.get $tmp)
             (func $main (result i32)
               i32.const 1
               i32.const 2
               call $add)
             (export "main" (func $main)))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    let names = m.name_section();
    assert_eq!(names.module.as_deref(), Some("demo"));
    assert_eq!(names.func_name(0), Some("log"));
    assert_eq!(names.func_name(1), Some("add"));
    assert_eq!(names.func_name(2), Some("main"));
    assert_eq!(names.local_name(1, 0), Some("x"));
    assert_eq!(names.local_name(1, 1), Some("y"));
    assert_eq!(names.local_name(1, 2), Some("tmp"));
    // Decoding the encoded bytes yields the same name section.
    let decoded = wasm::decode::decode(&encode(&m)).expect("decodes");
    assert_eq!(decoded.name_section(), names);
}

#[test]
fn names_roundtrip_byte_identically() {
    let m = parse_module(
        r#"(module $demo
             (type $sig (func (param i32 i32) (result i32)))
             (import "env" "log" (func $log (type $sig)))
             (func $add (type $sig) (param $x i32) (param $y i32) (result i32)
               (local $tmp i32)
               local.get $x
               local.get $y
               i32.add
               local.set $tmp
               local.get $tmp)
             (func $mix (param i32) (param $n i32) (param i32 i32) (local i64 i64) (local $acc i64)
               local.get $n
               drop)
             (func $main (result i32)
               i32.const 1
               i32.const 2
               call $add)
             (export "main" (func $main)))"#,
    )
    .expect("parses");
    wasm::validate::validate(&m).expect("validates");
    let text = print_module(&m);
    assert!(text.contains("(module $demo"), "{text}");
    assert!(text.contains("$add"), "{text}");
    assert!(text.contains("(param $x i32)"), "{text}");
    assert!(text.contains("(local $tmp i32)"), "{text}");
    let reparsed = parse_module(&text).unwrap_or_else(|e| panic!("{}\n{text}", e.describe(&text)));
    assert_eq!(
        encode(&m),
        encode(&reparsed),
        "named round trip must be byte-identical; text was:\n{text}"
    );
    assert_eq!(text, print_module(&reparsed), "printing is a fixpoint");
}

#[test]
fn unprintable_name_sections_fall_back_to_indices() {
    // Names the text format cannot express (spaces, names inside multi-local
    // groups) only arise in binary-built modules; the printer then omits the
    // whole section rather than print a partial or invalid one.
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    c.i32_const(0);
    let f = b.add_func(
        FuncType::new(vec![], vec![ValueType::I32]),
        vec![ValueType::I64, ValueType::I64],
        c.finish(),
    );
    b.export_func("f", f);
    let mut m = b.finish();
    let mut names = wasm::names::NameSection::new();
    names.set_func_name(0, "has a space");
    m.set_name_section(&names);
    let text = print_module(&m);
    assert!(!text.contains('$'), "invalid ids must not print: {text}");
    let reparsed = parse_module(&text).expect("parses");
    assert!(reparsed.name_section().is_empty());

    // A name inside a two-wide local group has no `(local $x ty)` home.
    let mut names = wasm::names::NameSection::new();
    if m.funcs[0].locals == vec![(2, ValueType::I64)] {
        names.set_func_name(0, "f");
        names.set_local_name(0, 1, "hidden");
        m.set_name_section(&names);
        let text = print_module(&m);
        assert!(!text.contains('$'), "partial sections must not print: {text}");
    }
}
