//! Deterministic fuel accounting: the per-opcode cost table and the static
//! per-function [`FuelPlan`].
//!
//! Fuel is the engine's unit of metered work. Every execution tier — the
//! in-place interpreter, the single-pass baseline compiler, and the SSA
//! optimizing tier — consumes fuel according to the *same* plan computed here,
//! so a fuel-limited run traps at the identical bytecode offset with the
//! identical fuel count no matter which tier (or mix of tiers) executed it.
//!
//! # The plan
//!
//! A function body is partitioned into *charge regions*: maximal straight-line
//! runs of instructions that are always executed together. A region's total
//! cost is charged up front at the region's first bytecode offset. Region
//! boundaries are placed so that every possible entry point into the body —
//! function entry, loop back-edge targets, `else` arms, `end` join points,
//! fall-through past a conditional branch, and resumption after a call — is
//! the start of a region. That makes the charge schedule independent of which
//! paths execute: each tier simply charges the region cost whenever control
//! reaches the region's start offset.
//!
//! Concretely, a region is flushed:
//!
//! * **before** `loop`, `else`, and `end` tokens (their offsets are branch
//!   anchors), and
//! * **after** `loop`, `if`, `else`, `end`, `br`, `br_if`, `br_table`,
//!   `return`, `unreachable`, `call`, and `call_indirect` (control may enter
//!   or resume right after them).
//!
//! Zero-cost regions are dropped from the plan.
//!
//! The plan also records *epoch check* offsets: the body-start offset of every
//! `loop`, i.e. the target of its back-edges. Tiers do not emit a separate
//! poll there — the epoch check is fused into the charge-site fuel check
//! (a site that is an epoch offset but charges nothing gets a zero-amount
//! check). Since every cycle through a program executes at least one branch,
//! every cycle passes a charge region's start, so the fused checks (plus the
//! engine's uniform check at call entry) observe preemption requests on every
//! trip around any loop.

use crate::opcode::Opcode;
use crate::reader::{BytecodeReader, ReadError};
use std::collections::{HashMap, HashSet};

/// The fuel cost of one opcode.
///
/// Structural tokens that never do work at runtime cost zero; calls and
/// `memory.grow` are weighted above ordinary instructions. The exact values
/// are an engine-internal contract: what matters for conformance is that all
/// tiers derive charges from this one table.
pub fn fuel_cost(op: Opcode) -> u64 {
    match op {
        // Structural tokens: block shape only, no runtime work.
        Opcode::Block | Opcode::Loop | Opcode::End | Opcode::Else | Opcode::Nop => 0,
        // Calls pay for frame setup in addition to the callee's own fuel.
        Opcode::Call => 5,
        Opcode::CallIndirect => 6,
        // Growing memory is by far the most expensive single instruction.
        Opcode::MemoryGrow => 100,
        _ => 1,
    }
}

/// A static fuel-charging schedule for one function body.
///
/// Built once per function (see [`FuelPlan::build`]) and shared by all tiers:
/// the interpreter consults it per instruction offset, while the baseline and
/// optimizing compilers bake `fuel_check` / `epoch_check` sequences into the
/// generated code at the recorded offsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuelPlan {
    charges: HashMap<u32, u64>,
    epoch_checks: HashSet<u32>,
}

impl FuelPlan {
    /// An empty plan that charges nothing (used for metering-off paths).
    pub fn empty() -> FuelPlan {
        FuelPlan::default()
    }

    /// Computes the charge schedule for `code` (a function body's bytecode,
    /// after local declarations).
    pub fn build(code: &[u8]) -> Result<FuelPlan, ReadError> {
        let mut plan = FuelPlan::default();
        let mut r = BytecodeReader::new(code);
        let mut region_start = 0u32;
        let mut pending = 0u64;
        while !r.is_at_end() {
            let offset = r.pc() as u32;
            let op = r.read_opcode()?;
            // These offsets are branch anchors: close the running region so a
            // jump landing here never skips (or double-pays) a charge.
            if matches!(op, Opcode::Loop | Opcode::Else | Opcode::End) {
                plan.flush(&mut region_start, &mut pending, offset);
            }
            pending += fuel_cost(op);
            r.skip_immediates(op)?;
            let after = r.pc() as u32;
            match op {
                Opcode::Loop => {
                    // Back-edges target the body start: poll the epoch there.
                    plan.epoch_checks.insert(after);
                    plan.flush(&mut region_start, &mut pending, after);
                }
                Opcode::If
                | Opcode::Else
                | Opcode::End
                | Opcode::Br
                | Opcode::BrIf
                | Opcode::BrTable
                | Opcode::Return
                | Opcode::Unreachable
                | Opcode::Call
                | Opcode::CallIndirect => {
                    plan.flush(&mut region_start, &mut pending, after);
                }
                _ => {}
            }
        }
        let end = code.len() as u32;
        plan.flush(&mut region_start, &mut pending, end);
        Ok(plan)
    }

    fn flush(&mut self, region_start: &mut u32, pending: &mut u64, next: u32) {
        if *pending > 0 {
            *self.charges.entry(*region_start).or_insert(0) += *pending;
        }
        *pending = 0;
        *region_start = next;
    }

    /// The fuel to charge when control reaches `offset`, if any.
    pub fn charge_at(&self, offset: u32) -> Option<u64> {
        self.charges.get(&offset).copied()
    }

    /// True when `offset` is a loop-body start where the epoch is polled.
    pub fn epoch_check_at(&self, offset: u32) -> bool {
        self.epoch_checks.contains(&offset)
    }

    /// Number of distinct charge regions.
    pub fn num_charges(&self) -> usize {
        self.charges.len()
    }

    /// Number of epoch poll sites.
    pub fn num_epoch_checks(&self) -> usize {
        self.epoch_checks.len()
    }

    /// Sum of all region charges: the fuel a straight-line execution of every
    /// region exactly once would consume.
    pub fn total_cost(&self) -> u64 {
        self.charges.values().sum()
    }

    /// True when the plan charges nothing and polls nothing.
    pub fn is_empty(&self) -> bool {
        self.charges.is_empty() && self.epoch_checks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CodeBuilder;
    use crate::types::ValueType;

    #[test]
    fn structural_opcodes_are_free() {
        for op in [
            Opcode::Block,
            Opcode::Loop,
            Opcode::End,
            Opcode::Else,
            Opcode::Nop,
        ] {
            assert_eq!(fuel_cost(op), 0, "{op:?} should be free");
        }
        assert!(fuel_cost(Opcode::Call) > fuel_cost(Opcode::I32Add));
        assert!(fuel_cost(Opcode::MemoryGrow) > fuel_cost(Opcode::Call));
    }

    #[test]
    fn straight_line_body_is_one_region_at_offset_zero() {
        // i32.const 1 ; i32.const 2 ; i32.add ; end
        let mut c = CodeBuilder::new();
        c.i32_const(1).i32_const(2).op(Opcode::I32Add);
        let code = c.finish();
        let plan = FuelPlan::build(&code).unwrap();
        assert_eq!(plan.num_charges(), 1);
        // const + const + add = 3; the trailing `end` is free.
        assert_eq!(plan.charge_at(0), Some(3));
        assert_eq!(plan.num_epoch_checks(), 0);
        assert_eq!(plan.total_cost(), 3);
    }

    #[test]
    fn loop_body_start_is_a_charge_region_and_epoch_site() {
        // loop ; br 0 ; end ; end
        let code = vec![
            Opcode::Loop.to_byte(),
            0x40, // empty block type
            Opcode::Br.to_byte(),
            0x00,
            Opcode::End.to_byte(),
            Opcode::End.to_byte(),
        ];
        let plan = FuelPlan::build(&code).unwrap();
        // Loop body starts at offset 2 (after the opcode and block type).
        assert!(plan.epoch_check_at(2));
        assert_eq!(plan.charge_at(2), Some(1), "br costs 1, charged at body start");
        assert_eq!(plan.num_epoch_checks(), 1);
    }

    #[test]
    fn if_arms_charge_independently() {
        // local.get 0 ; if ; i32.const 1 ; drop ; else ; i32.const 2 ; drop ; end ; end
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(crate::types::BlockType::Empty)
            .i32_const(1)
            .drop_()
            .else_()
            .i32_const(2)
            .drop_()
            .end();
        let code = c.finish();
        let plan = FuelPlan::build(&code).unwrap();
        // Region 1: local.get + if (charged before the branch decides).
        assert_eq!(plan.charge_at(0), Some(2));
        // Then-arm and else-arm each form their own two-cost region.
        let arms: Vec<u64> = plan
            .charges
            .iter()
            .filter(|(o, _)| **o != 0)
            .map(|(_, c)| *c)
            .collect();
        assert_eq!(arms.len(), 2);
        assert!(arms.iter().all(|&c| c == 2));
    }

    #[test]
    fn region_resumes_after_calls() {
        // call 0 ; i32.const 7 ; drop ; end
        let mut c = CodeBuilder::new();
        c.call(0).i32_const(7).drop_();
        let code = c.finish();
        let plan = FuelPlan::build(&code).unwrap();
        assert_eq!(plan.num_charges(), 2);
        assert_eq!(plan.charge_at(0), Some(fuel_cost(Opcode::Call)));
        // The post-call region starts right after the call's immediate.
        assert_eq!(plan.total_cost(), fuel_cost(Opcode::Call) + 2);
    }

    #[test]
    fn dead_code_after_br_gets_its_own_region() {
        // block ; br 0 ; i32.const 9 ; drop ; end ; end
        let mut c = CodeBuilder::new();
        c.block(crate::types::BlockType::Empty);
        c.br(0).i32_const(9).drop_().end();
        let code = c.finish();
        let plan = FuelPlan::build(&code).unwrap();
        // The entry region ends right after the br (block 0 + br 1 = 1).
        assert_eq!(plan.charge_at(0), Some(1));
        // The dead region (const + drop, starting at offset 4) exists in the
        // plan but no tier ever reaches its start offset, so it is never
        // charged at runtime.
        assert_eq!(plan.charge_at(4), Some(2));
        assert_eq!(plan.total_cost(), 3);
    }

    #[test]
    fn empty_and_trivial_bodies() {
        let plan = FuelPlan::build(&[]).unwrap();
        assert!(plan.is_empty());
        let plan = FuelPlan::build(&[Opcode::End.to_byte()]).unwrap();
        assert!(plan.is_empty());
        assert_eq!(FuelPlan::empty(), FuelPlan::default());
    }

    #[test]
    fn plan_offsets_align_with_reader_walk() {
        // Every charge offset must be a valid instruction boundary.
        let mut c = CodeBuilder::new();
        c.local_get(0);
        c.if_(crate::types::BlockType::Empty);
        c.i32_const(1).drop_();
        c.end();
        c.block(crate::types::BlockType::Value(ValueType::I32));
        c.i32_const(3);
        c.end();
        c.drop_();
        let code = c.finish();
        let plan = FuelPlan::build(&code).unwrap();
        let mut boundaries = HashSet::new();
        let mut r = BytecodeReader::new(&code);
        while !r.is_at_end() {
            boundaries.insert(r.pc() as u32);
            let op = r.read_opcode().unwrap();
            r.skip_immediates(op).unwrap();
        }
        boundaries.insert(code.len() as u32);
        for offset in plan.charges.keys() {
            assert!(boundaries.contains(offset), "charge at non-boundary {offset}");
        }
    }
}
