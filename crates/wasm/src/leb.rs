//! LEB128 variable-length integer encoding and decoding.
//!
//! WebAssembly uses unsigned LEB128 for indices and sizes and signed LEB128
//! for integer constants. These routines are shared by the binary decoder,
//! the binary encoder, the in-place interpreter (which decodes immediates
//! during execution), and the single-pass compiler.

/// Error produced when a LEB128 value is malformed or truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LebError {
    /// The input ended before the value was complete.
    Truncated,
    /// The encoding used more bytes than allowed for the target width.
    Overlong,
    /// Unused bits beyond the target width were set (non-canonical padding).
    OverflowBits,
}

impl std::fmt::Display for LebError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LebError::Truncated => write!(f, "truncated LEB128 value"),
            LebError::Overlong => write!(f, "overlong LEB128 encoding"),
            LebError::OverflowBits => write!(f, "LEB128 value overflows target width"),
        }
    }
}

impl std::error::Error for LebError {}

/// Decodes an unsigned LEB128 value of at most `bits` bits from `data`
/// starting at `pos`. Returns the value and the number of bytes consumed.
pub fn read_unsigned(data: &[u8], pos: usize, bits: u32) -> Result<(u64, usize), LebError> {
    let max_bytes = (bits as usize).div_ceil(7);
    let mut result: u64 = 0;
    let mut shift = 0u32;
    let mut count = 0usize;
    loop {
        let byte = *data.get(pos + count).ok_or(LebError::Truncated)?;
        count += 1;
        if count > max_bytes {
            return Err(LebError::Overlong);
        }
        let low = (byte & 0x7F) as u64;
        // Check bits that would fall outside the target width.
        if shift + 7 > bits {
            let allowed = bits - shift;
            if low >> allowed != 0 {
                return Err(LebError::OverflowBits);
            }
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((result, count));
        }
        shift += 7;
    }
}

/// Decodes a signed LEB128 value of at most `bits` bits from `data` starting
/// at `pos`. Returns the value and the number of bytes consumed.
pub fn read_signed(data: &[u8], pos: usize, bits: u32) -> Result<(i64, usize), LebError> {
    let max_bytes = (bits as usize).div_ceil(7);
    let mut result: i64 = 0;
    let mut shift = 0u32;
    let mut count = 0usize;
    loop {
        let byte = *data.get(pos + count).ok_or(LebError::Truncated)?;
        count += 1;
        if count > max_bytes {
            return Err(LebError::Overlong);
        }
        let low = (byte & 0x7F) as i64;
        if shift + 7 > bits {
            // The final byte: bits beyond the target width must be a correct
            // sign extension of the value's top bit.
            let allowed = bits - shift;
            if allowed < 7 {
                let sign_bit = (byte >> (allowed - 1)) & 1;
                let upper = (byte & 0x7F) >> allowed;
                let expected = if sign_bit == 1 { 0x7F >> allowed } else { 0 };
                if upper != expected {
                    return Err(LebError::OverflowBits);
                }
            }
        }
        result |= low << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            // Sign-extend from the last bit written.
            if shift < 64 && (byte & 0x40) != 0 {
                result |= -1i64 << shift;
            }
            return Ok((result, count));
        }
    }
}

/// Encodes an unsigned LEB128 value, appending to `out`. Returns the number
/// of bytes written.
pub fn write_unsigned(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut count = 0;
    loop {
        let mut byte = (value & 0x7F) as u8;
        value >>= 7;
        if value != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        count += 1;
        if value == 0 {
            return count;
        }
    }
}

/// Encodes a signed LEB128 value, appending to `out`. Returns the number of
/// bytes written.
pub fn write_signed(out: &mut Vec<u8>, mut value: i64) -> usize {
    let mut count = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        let done = (value == 0 && byte & 0x40 == 0) || (value == -1 && byte & 0x40 != 0);
        out.push(if done { byte } else { byte | 0x80 });
        count += 1;
        if done {
            return count;
        }
    }
}

/// Returns the number of bytes an unsigned LEB128 encoding of `value` takes.
pub fn unsigned_len(value: u64) -> usize {
    let mut v = value;
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(value: u64, bits: u32) {
        let mut buf = Vec::new();
        let written = write_unsigned(&mut buf, value);
        assert_eq!(written, buf.len());
        assert_eq!(written, unsigned_len(value));
        let (decoded, read) = read_unsigned(&buf, 0, bits).expect("decode");
        assert_eq!(decoded, value);
        assert_eq!(read, written);
    }

    fn roundtrip_s(value: i64, bits: u32) {
        let mut buf = Vec::new();
        let written = write_signed(&mut buf, value);
        let (decoded, read) = read_signed(&buf, 0, bits).expect("decode");
        assert_eq!(decoded, value, "value {value}");
        assert_eq!(read, written);
    }

    #[test]
    fn unsigned_roundtrips() {
        for v in [0u64, 1, 2, 63, 64, 127, 128, 129, 255, 256, 16383, 16384, 0xFFFF_FFFF] {
            roundtrip_u(v, 32);
        }
        for v in [0u64, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            roundtrip_u(v, 64);
        }
    }

    #[test]
    fn signed_roundtrips() {
        for v in [
            0i64, 1, -1, 2, -2, 63, -63, 64, -64, 65, -65, 127, -128, 128, 12345, -12345,
            i32::MAX as i64, i32::MIN as i64,
        ] {
            roundtrip_s(v, 32);
        }
        for v in [i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1, 0, -1] {
            roundtrip_s(v, 64);
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert_eq!(read_unsigned(&[0x80], 0, 32), Err(LebError::Truncated));
        assert_eq!(read_signed(&[0xFF], 0, 32), Err(LebError::Truncated));
        assert_eq!(read_unsigned(&[], 0, 32), Err(LebError::Truncated));
    }

    #[test]
    fn overlong_encodings_are_rejected() {
        // Six continuation bytes is too many for a 32-bit value.
        let bytes = [0x80, 0x80, 0x80, 0x80, 0x80, 0x00];
        assert_eq!(read_unsigned(&bytes, 0, 32), Err(LebError::Overlong));
    }

    #[test]
    fn overflow_bits_are_rejected() {
        // 5-byte encoding whose final byte has bits beyond 32 set.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(read_unsigned(&bytes, 0, 32), Err(LebError::OverflowBits));
        // Canonical u32::MAX is fine.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0x0F];
        assert_eq!(read_unsigned(&bytes, 0, 32), Ok((0xFFFF_FFFF, 5)));
    }

    #[test]
    fn reads_respect_offset() {
        let mut buf = vec![0xAA, 0xBB];
        write_unsigned(&mut buf, 300);
        let (v, n) = read_unsigned(&buf, 2, 32).unwrap();
        assert_eq!(v, 300);
        assert_eq!(n, 2);
    }

    #[test]
    fn minimal_encodings_are_minimal() {
        let mut buf = Vec::new();
        write_unsigned(&mut buf, 0);
        assert_eq!(buf, [0x00]);
        buf.clear();
        write_unsigned(&mut buf, 127);
        assert_eq!(buf, [0x7F]);
        buf.clear();
        write_unsigned(&mut buf, 128);
        assert_eq!(buf, [0x80, 0x01]);
        buf.clear();
        write_signed(&mut buf, -1);
        assert_eq!(buf, [0x7F]);
        buf.clear();
        write_signed(&mut buf, 64);
        assert_eq!(buf, [0xC0, 0x00]);
    }
}
