//! Encoding of [`Module`]s to the WebAssembly binary format.
//!
//! The encoder produces spec-conformant `.wasm` bytes that the decoder in
//! [`crate::decode`] round-trips, and which give benchmark modules a real
//! "bytes of input code" size for the paper's compile-speed metrics.

use crate::module::{ConstExpr, ImportKind, Module};
use crate::opcode::Opcode;
use crate::types::{ExternalKind, FuncType, GlobalType, Limits, MemoryType, TableType};
use crate::writer::ByteWriter;

/// The `\0asm` magic number.
pub const MAGIC: [u8; 4] = [0x00, 0x61, 0x73, 0x6D];
/// The binary format version.
pub const VERSION: [u8; 4] = [0x01, 0x00, 0x00, 0x00];

/// Section identifiers of the binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SectionId {
    /// Custom section.
    Custom = 0,
    /// Type section.
    Type = 1,
    /// Import section.
    Import = 2,
    /// Function (type-index) section.
    Function = 3,
    /// Table section.
    Table = 4,
    /// Memory section.
    Memory = 5,
    /// Global section.
    Global = 6,
    /// Export section.
    Export = 7,
    /// Start section.
    Start = 8,
    /// Element section.
    Element = 9,
    /// Code section.
    Code = 10,
    /// Data section.
    Data = 11,
}

impl SectionId {
    /// Decodes a section id byte.
    pub fn from_byte(b: u8) -> Option<SectionId> {
        Some(match b {
            0 => SectionId::Custom,
            1 => SectionId::Type,
            2 => SectionId::Import,
            3 => SectionId::Function,
            4 => SectionId::Table,
            5 => SectionId::Memory,
            6 => SectionId::Global,
            7 => SectionId::Export,
            8 => SectionId::Start,
            9 => SectionId::Element,
            10 => SectionId::Code,
            11 => SectionId::Data,
            _ => return None,
        })
    }
}

/// Encodes a module to binary format bytes.
pub fn encode(module: &Module) -> Vec<u8> {
    let mut out = ByteWriter::new();
    out.write_bytes(&MAGIC);
    out.write_bytes(&VERSION);

    if !module.types.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.types.len() as u32);
        for ty in &module.types {
            write_func_type(&mut s, ty);
        }
        write_section(&mut out, SectionId::Type, &s);
    }

    if !module.imports.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.imports.len() as u32);
        for import in &module.imports {
            s.write_name(&import.module);
            s.write_name(&import.name);
            match &import.kind {
                ImportKind::Func(type_index) => {
                    s.write_u8(ExternalKind::Func.to_byte());
                    s.write_u32_leb(*type_index);
                }
                ImportKind::Table(t) => {
                    s.write_u8(ExternalKind::Table.to_byte());
                    write_table_type(&mut s, t);
                }
                ImportKind::Memory(m) => {
                    s.write_u8(ExternalKind::Memory.to_byte());
                    write_memory_type(&mut s, m);
                }
                ImportKind::Global(g) => {
                    s.write_u8(ExternalKind::Global.to_byte());
                    write_global_type(&mut s, g);
                }
            }
        }
        write_section(&mut out, SectionId::Import, &s);
    }

    if !module.funcs.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.funcs.len() as u32);
        for f in &module.funcs {
            s.write_u32_leb(f.type_index);
        }
        write_section(&mut out, SectionId::Function, &s);
    }

    if !module.tables.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.tables.len() as u32);
        for t in &module.tables {
            write_table_type(&mut s, t);
        }
        write_section(&mut out, SectionId::Table, &s);
    }

    if !module.memories.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.memories.len() as u32);
        for m in &module.memories {
            write_memory_type(&mut s, m);
        }
        write_section(&mut out, SectionId::Memory, &s);
    }

    if !module.globals.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.globals.len() as u32);
        for g in &module.globals {
            write_global_type(&mut s, &g.ty);
            write_const_expr(&mut s, &g.init);
        }
        write_section(&mut out, SectionId::Global, &s);
    }

    if !module.exports.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.exports.len() as u32);
        for e in &module.exports {
            s.write_name(&e.name);
            s.write_u8(e.kind.to_byte());
            s.write_u32_leb(e.index);
        }
        write_section(&mut out, SectionId::Export, &s);
    }

    if let Some(start) = module.start {
        let mut s = ByteWriter::new();
        s.write_u32_leb(start);
        write_section(&mut out, SectionId::Start, &s);
    }

    if !module.elems.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.elems.len() as u32);
        for elem in &module.elems {
            if elem.table_index == 0 {
                // Flag 0: active segment for table 0.
                s.write_u32_leb(0);
            } else {
                // Flag 2: active segment with explicit table index and elemkind.
                s.write_u32_leb(2);
                s.write_u32_leb(elem.table_index);
            }
            write_const_expr(&mut s, &elem.offset);
            if elem.table_index != 0 {
                s.write_u8(0x00); // elemkind: funcref
            }
            s.write_u32_leb(elem.func_indices.len() as u32);
            for &f in &elem.func_indices {
                s.write_u32_leb(f);
            }
        }
        write_section(&mut out, SectionId::Element, &s);
    }

    if !module.funcs.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.funcs.len() as u32);
        for f in &module.funcs {
            let mut body = ByteWriter::new();
            body.write_u32_leb(f.locals.len() as u32);
            for &(count, ty) in &f.locals {
                body.write_u32_leb(count);
                body.write_value_type(ty);
            }
            body.write_bytes(&f.code);
            s.write_sized(&body);
        }
        write_section(&mut out, SectionId::Code, &s);
    }

    if !module.data.is_empty() {
        let mut s = ByteWriter::new();
        s.write_u32_leb(module.data.len() as u32);
        for d in &module.data {
            s.write_u32_leb(if d.memory_index == 0 { 0 } else { 2 });
            if d.memory_index != 0 {
                s.write_u32_leb(d.memory_index);
            }
            write_const_expr(&mut s, &d.offset);
            s.write_u32_leb(d.bytes.len() as u32);
            s.write_bytes(&d.bytes);
        }
        write_section(&mut out, SectionId::Data, &s);
    }

    for custom in &module.custom {
        let mut s = ByteWriter::new();
        s.write_name(&custom.name);
        s.write_bytes(&custom.bytes);
        write_section(&mut out, SectionId::Custom, &s);
    }

    out.into_bytes()
}

fn write_section(out: &mut ByteWriter, id: SectionId, contents: &ByteWriter) {
    out.write_u8(id as u8);
    out.write_sized(contents);
}

fn write_func_type(out: &mut ByteWriter, ty: &FuncType) {
    out.write_u8(0x60);
    out.write_u32_leb(ty.params.len() as u32);
    for &p in &ty.params {
        out.write_value_type(p);
    }
    out.write_u32_leb(ty.results.len() as u32);
    for &r in &ty.results {
        out.write_value_type(r);
    }
}

fn write_limits(out: &mut ByteWriter, limits: &Limits) {
    match limits.max {
        None => {
            out.write_u8(0x00);
            out.write_u32_leb(limits.min);
        }
        Some(max) => {
            out.write_u8(0x01);
            out.write_u32_leb(limits.min);
            out.write_u32_leb(max);
        }
    }
}

fn write_table_type(out: &mut ByteWriter, t: &TableType) {
    out.write_value_type(t.element);
    write_limits(out, &t.limits);
}

fn write_memory_type(out: &mut ByteWriter, m: &MemoryType) {
    write_limits(out, &m.limits);
}

fn write_global_type(out: &mut ByteWriter, g: &GlobalType) {
    out.write_value_type(g.value_type);
    out.write_u8(if g.mutable { 0x01 } else { 0x00 });
}

fn write_const_expr(out: &mut ByteWriter, expr: &ConstExpr) {
    match *expr {
        ConstExpr::I32(v) => {
            out.write_u8(Opcode::I32Const.to_byte());
            out.write_i32_leb(v);
        }
        ConstExpr::I64(v) => {
            out.write_u8(Opcode::I64Const.to_byte());
            out.write_i64_leb(v);
        }
        ConstExpr::F32(v) => {
            out.write_u8(Opcode::F32Const.to_byte());
            out.write_u32_le(v.to_bits());
        }
        ConstExpr::F64(v) => {
            out.write_u8(Opcode::F64Const.to_byte());
            out.write_u64_le(v.to_bits());
        }
        ConstExpr::RefNull(t) => {
            out.write_u8(Opcode::RefNull.to_byte());
            out.write_u8(t.to_byte());
        }
        ConstExpr::RefFunc(i) => {
            out.write_u8(Opcode::RefFunc.to_byte());
            out.write_u32_leb(i);
        }
        ConstExpr::GlobalGet(i) => {
            out.write_u8(Opcode::GlobalGet.to_byte());
            out.write_u32_leb(i);
        }
    }
    out.write_u8(Opcode::End.to_byte());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CodeBuilder, ModuleBuilder};
    use crate::types::{FuncType, ValueType};

    #[test]
    fn empty_module_is_header_only() {
        let bytes = encode(&Module::new());
        assert_eq!(&bytes[0..4], &MAGIC);
        assert_eq!(&bytes[4..8], &VERSION);
        assert_eq!(bytes.len(), 8);
    }

    #[test]
    fn sections_appear_in_order() {
        let mut b = ModuleBuilder::new();
        let f = b.add_func(
            FuncType::new(vec![], vec![ValueType::I32]),
            vec![],
            {
                let mut c = CodeBuilder::new();
                c.i32_const(7);
                c.finish()
            },
        );
        b.export_func("seven", f);
        b.add_memory(Limits::at_least(1));
        let bytes = encode(&b.finish());

        // Collect the section ids in order of appearance.
        let mut ids = Vec::new();
        let mut pos = 8;
        while pos < bytes.len() {
            let id = bytes[pos];
            ids.push(id);
            let (size, n) = crate::leb::read_unsigned(&bytes, pos + 1, 32).unwrap();
            pos += 1 + n + size as usize;
        }
        assert_eq!(
            ids,
            vec![
                SectionId::Type as u8,
                SectionId::Function as u8,
                SectionId::Memory as u8,
                SectionId::Export as u8,
                SectionId::Code as u8,
            ]
        );
    }

    #[test]
    fn section_id_roundtrip() {
        for id in 0u8..=11 {
            assert_eq!(SectionId::from_byte(id).map(|s| s as u8), Some(id));
        }
        assert_eq!(SectionId::from_byte(12), None);
    }
}
