//! Programmatic construction of modules and function bodies.
//!
//! The benchmark-suite generators and most tests build modules through
//! [`ModuleBuilder`] and [`CodeBuilder`] rather than hand-writing binary
//! bytes. The builder produces exactly the same in-memory [`Module`] that the
//! binary decoder produces, so everything downstream (validator, interpreter,
//! compilers, encoder) is exercised identically either way.

use crate::module::{
    ConstExpr, DataSegment, ElemSegment, Export, FuncDecl, Global, Import, ImportKind, Module,
};
use crate::opcode::Opcode;
use crate::types::{
    BlockType, ExternalKind, FuncType, GlobalType, Limits, MemoryType, TableType, ValueType,
};
use crate::writer::ByteWriter;
use std::collections::HashMap;

/// Builds function body bytecode instruction by instruction.
///
/// Every method appends one instruction. [`CodeBuilder::finish`] appends the
/// function's terminating `end` opcode and returns the raw code bytes.
///
/// # Examples
///
/// ```
/// use wasm::builder::CodeBuilder;
/// use wasm::opcode::Opcode;
///
/// let mut code = CodeBuilder::new();
/// code.local_get(0).i32_const(1).op(Opcode::I32Add);
/// let bytes = code.finish();
/// assert_eq!(bytes.last(), Some(&Opcode::End.to_byte()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CodeBuilder {
    w: ByteWriter,
}

impl CodeBuilder {
    /// Creates an empty body builder.
    pub fn new() -> CodeBuilder {
        CodeBuilder::default()
    }

    /// Appends an opcode with no immediates.
    pub fn op(&mut self, op: Opcode) -> &mut Self {
        debug_assert_eq!(
            op.immediate_kind(),
            crate::opcode::ImmediateKind::None,
            "opcode {op} requires immediates; use the dedicated method"
        );
        self.w.write_u8(op.to_byte());
        self
    }

    /// Appends `i32.const value`.
    pub fn i32_const(&mut self, value: i32) -> &mut Self {
        self.w.write_u8(Opcode::I32Const.to_byte());
        self.w.write_i32_leb(value);
        self
    }

    /// Appends `i64.const value`.
    pub fn i64_const(&mut self, value: i64) -> &mut Self {
        self.w.write_u8(Opcode::I64Const.to_byte());
        self.w.write_i64_leb(value);
        self
    }

    /// Appends `f32.const value`.
    pub fn f32_const(&mut self, value: f32) -> &mut Self {
        self.w.write_u8(Opcode::F32Const.to_byte());
        self.w.write_u32_le(value.to_bits());
        self
    }

    /// Appends `f64.const value`.
    pub fn f64_const(&mut self, value: f64) -> &mut Self {
        self.w.write_u8(Opcode::F64Const.to_byte());
        self.w.write_u64_le(value.to_bits());
        self
    }

    /// Appends `local.get index`.
    pub fn local_get(&mut self, index: u32) -> &mut Self {
        self.w.write_u8(Opcode::LocalGet.to_byte());
        self.w.write_u32_leb(index);
        self
    }

    /// Appends `local.set index`.
    pub fn local_set(&mut self, index: u32) -> &mut Self {
        self.w.write_u8(Opcode::LocalSet.to_byte());
        self.w.write_u32_leb(index);
        self
    }

    /// Appends `local.tee index`.
    pub fn local_tee(&mut self, index: u32) -> &mut Self {
        self.w.write_u8(Opcode::LocalTee.to_byte());
        self.w.write_u32_leb(index);
        self
    }

    /// Appends `global.get index`.
    pub fn global_get(&mut self, index: u32) -> &mut Self {
        self.w.write_u8(Opcode::GlobalGet.to_byte());
        self.w.write_u32_leb(index);
        self
    }

    /// Appends `global.set index`.
    pub fn global_set(&mut self, index: u32) -> &mut Self {
        self.w.write_u8(Opcode::GlobalSet.to_byte());
        self.w.write_u32_leb(index);
        self
    }

    /// Appends a `block` with the given block type.
    pub fn block(&mut self, bt: BlockType) -> &mut Self {
        self.w.write_u8(Opcode::Block.to_byte());
        self.write_block_type(bt);
        self
    }

    /// Appends a `loop` with the given block type.
    pub fn loop_(&mut self, bt: BlockType) -> &mut Self {
        self.w.write_u8(Opcode::Loop.to_byte());
        self.write_block_type(bt);
        self
    }

    /// Appends an `if` with the given block type.
    pub fn if_(&mut self, bt: BlockType) -> &mut Self {
        self.w.write_u8(Opcode::If.to_byte());
        self.write_block_type(bt);
        self
    }

    /// Appends an `else`.
    pub fn else_(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::Else.to_byte());
        self
    }

    /// Appends an `end` (closing a block/loop/if).
    pub fn end(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::End.to_byte());
        self
    }

    /// Appends `br depth`.
    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.w.write_u8(Opcode::Br.to_byte());
        self.w.write_u32_leb(depth);
        self
    }

    /// Appends `br_if depth`.
    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.w.write_u8(Opcode::BrIf.to_byte());
        self.w.write_u32_leb(depth);
        self
    }

    /// Appends `br_table targets default`.
    pub fn br_table(&mut self, targets: &[u32], default: u32) -> &mut Self {
        self.w.write_u8(Opcode::BrTable.to_byte());
        self.w.write_u32_leb(targets.len() as u32);
        for &t in targets {
            self.w.write_u32_leb(t);
        }
        self.w.write_u32_leb(default);
        self
    }

    /// Appends `return`.
    pub fn return_(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::Return.to_byte());
        self
    }

    /// Appends `call func_index`.
    pub fn call(&mut self, func_index: u32) -> &mut Self {
        self.w.write_u8(Opcode::Call.to_byte());
        self.w.write_u32_leb(func_index);
        self
    }

    /// Appends `call_indirect type_index table_index`.
    pub fn call_indirect(&mut self, type_index: u32, table_index: u32) -> &mut Self {
        self.w.write_u8(Opcode::CallIndirect.to_byte());
        self.w.write_u32_leb(type_index);
        self.w.write_u32_leb(table_index);
        self
    }

    /// Appends `drop`.
    pub fn drop_(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::Drop.to_byte());
        self
    }

    /// Appends `select`.
    pub fn select(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::Select.to_byte());
        self
    }

    /// Appends a typed `select` with explicit result types.
    pub fn select_t(&mut self, types: &[ValueType]) -> &mut Self {
        self.w.write_u8(Opcode::SelectT.to_byte());
        self.w.write_u32_leb(types.len() as u32);
        for &t in types {
            self.w.write_u8(t.to_byte());
        }
        self
    }

    /// Appends `unreachable`.
    pub fn unreachable(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::Unreachable.to_byte());
        self
    }

    /// Appends `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::Nop.to_byte());
        self
    }

    /// Appends a memory load or store with the given alignment exponent and
    /// constant offset.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `op` is not a memory access opcode.
    pub fn mem(&mut self, op: Opcode, align: u32, offset: u32) -> &mut Self {
        debug_assert!(op.is_memory_access(), "{op} is not a memory access");
        self.w.write_u8(op.to_byte());
        self.w.write_u32_leb(align);
        self.w.write_u32_leb(offset);
        self
    }

    /// Appends `memory.size`.
    pub fn memory_size(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::MemorySize.to_byte());
        self.w.write_u8(0);
        self
    }

    /// Appends `memory.grow`.
    pub fn memory_grow(&mut self) -> &mut Self {
        self.w.write_u8(Opcode::MemoryGrow.to_byte());
        self.w.write_u8(0);
        self
    }

    /// Appends `ref.null type`.
    pub fn ref_null(&mut self, ty: ValueType) -> &mut Self {
        debug_assert!(ty.is_reference());
        self.w.write_u8(Opcode::RefNull.to_byte());
        self.w.write_u8(ty.to_byte());
        self
    }

    /// Appends `ref.func func_index`.
    pub fn ref_func(&mut self, func_index: u32) -> &mut Self {
        self.w.write_u8(Opcode::RefFunc.to_byte());
        self.w.write_u32_leb(func_index);
        self
    }

    /// The number of bytes emitted so far (useful for offset assertions).
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Finishes the body: appends the terminating `end` and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.w.write_u8(Opcode::End.to_byte());
        self.w.into_bytes()
    }

    /// Returns the bytes emitted so far *without* appending a terminating
    /// `end`. Useful when splicing bodies together.
    pub fn into_raw_bytes(self) -> Vec<u8> {
        self.w.into_bytes()
    }

    fn write_block_type(&mut self, bt: BlockType) {
        match bt {
            BlockType::Empty => self.w.write_u8(0x40),
            BlockType::Value(t) => self.w.write_u8(t.to_byte()),
            BlockType::Func(i) => self.w.write_i32_leb(i as i32),
        }
    }
}

/// Builds a [`Module`] incrementally.
///
/// # Examples
///
/// ```
/// use wasm::builder::{CodeBuilder, ModuleBuilder};
/// use wasm::opcode::Opcode;
/// use wasm::types::{FuncType, ValueType};
///
/// let mut b = ModuleBuilder::new();
/// let mut code = CodeBuilder::new();
/// code.local_get(0).local_get(1).op(Opcode::I32Add);
/// let add = b.add_func(
///     FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
///     vec![],
///     code.finish(),
/// );
/// b.export_func("add", add);
/// let module = b.finish();
/// assert_eq!(module.exported_func("add"), Some(add));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModuleBuilder {
    module: Module,
    type_cache: HashMap<FuncType, u32>,
}

impl ModuleBuilder {
    /// Creates an empty module builder.
    pub fn new() -> ModuleBuilder {
        ModuleBuilder::default()
    }

    /// Adds (or reuses) a signature in the type section and returns its index.
    pub fn add_type(&mut self, ty: FuncType) -> u32 {
        if let Some(&i) = self.type_cache.get(&ty) {
            return i;
        }
        let i = self.module.types.len() as u32;
        self.type_cache.insert(ty.clone(), i);
        self.module.types.push(ty);
        i
    }

    /// Imports a function. Imported functions occupy the lowest indices of the
    /// function index space, so all imports must be added before any defined
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if any defined function has already been added.
    pub fn import_func(&mut self, module: &str, name: &str, ty: FuncType) -> u32 {
        assert!(
            self.module.funcs.is_empty(),
            "function imports must precede function definitions"
        );
        let type_index = self.add_type(ty);
        let index = self.module.num_imported_funcs();
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            kind: ImportKind::Func(type_index),
        });
        index
    }

    /// Adds a defined function with the given signature, extra locals, and
    /// body code (as produced by [`CodeBuilder::finish`]). Returns its index
    /// in the function index space.
    pub fn add_func(&mut self, ty: FuncType, locals: Vec<ValueType>, code: Vec<u8>) -> u32 {
        let type_index = self.add_type(ty);
        let grouped = group_locals(&locals);
        let defined_index = self.module.funcs.len() as u32;
        self.module.funcs.push(FuncDecl {
            type_index,
            locals: grouped,
            code,
            code_offset: 0,
        });
        self.module.num_imported_funcs() + defined_index
    }

    /// Adds a linear memory and returns its index.
    pub fn add_memory(&mut self, limits: Limits) -> u32 {
        let index = self.module.num_memories();
        self.module.memories.push(MemoryType { limits });
        index
    }

    /// Adds a table and returns its index.
    pub fn add_table(&mut self, element: ValueType, limits: Limits) -> u32 {
        let index = self.module.num_tables();
        self.module.tables.push(TableType { element, limits });
        index
    }

    /// Adds a global and returns its index.
    pub fn add_global(&mut self, ty: GlobalType, init: ConstExpr) -> u32 {
        let index = self.module.num_globals();
        self.module.globals.push(Global { ty, init });
        index
    }

    /// Exports a function under `name`.
    pub fn export_func(&mut self, name: &str, func_index: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExternalKind::Func,
            index: func_index,
        });
        self
    }

    /// Exports a memory under `name`.
    pub fn export_memory(&mut self, name: &str, memory_index: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExternalKind::Memory,
            index: memory_index,
        });
        self
    }

    /// Exports a global under `name`.
    pub fn export_global(&mut self, name: &str, global_index: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExternalKind::Global,
            index: global_index,
        });
        self
    }

    /// Sets the start function.
    pub fn set_start(&mut self, func_index: u32) -> &mut Self {
        self.module.start = Some(func_index);
        self
    }

    /// Adds an active element segment.
    pub fn add_elem(&mut self, table_index: u32, offset: ConstExpr, funcs: Vec<u32>) -> &mut Self {
        self.module.elems.push(ElemSegment {
            table_index,
            offset,
            func_indices: funcs,
        });
        self
    }

    /// Adds an active data segment.
    pub fn add_data(&mut self, memory_index: u32, offset: ConstExpr, bytes: Vec<u8>) -> &mut Self {
        self.module.data.push(DataSegment {
            memory_index,
            offset,
            bytes,
        });
        self
    }

    /// The number of functions added so far (imports + defined).
    pub fn num_funcs(&self) -> u32 {
        self.module.num_funcs()
    }

    /// Finishes and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Groups a flat list of local types into (count, type) runs, as stored in the
/// binary format.
fn group_locals(locals: &[ValueType]) -> Vec<(u32, ValueType)> {
    let mut grouped: Vec<(u32, ValueType)> = Vec::new();
    for &ty in locals {
        match grouped.last_mut() {
            Some((count, last)) if *last == ty => *count += 1,
            _ => grouped.push((1, ty)),
        }
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::BytecodeReader;

    #[test]
    fn group_locals_runs() {
        use ValueType::*;
        assert_eq!(group_locals(&[]), vec![]);
        assert_eq!(group_locals(&[I32]), vec![(1, I32)]);
        assert_eq!(
            group_locals(&[I32, I32, F64, F64, F64, I32]),
            vec![(2, I32), (3, F64), (1, I32)]
        );
    }

    #[test]
    fn code_builder_emits_decodable_bytecode() {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Value(ValueType::I32))
            .i32_const(10)
            .local_get(0)
            .op(Opcode::I32Sub)
            .br_if(0)
            .i32_const(-1)
            .end();
        let code = c.finish();

        let mut r = BytecodeReader::new(&code);
        let expected = [
            Opcode::Block,
            Opcode::I32Const,
            Opcode::LocalGet,
            Opcode::I32Sub,
            Opcode::BrIf,
            Opcode::I32Const,
            Opcode::End,
            Opcode::End,
        ];
        for &e in &expected {
            let op = r.read_opcode().unwrap();
            assert_eq!(op, e);
            r.skip_immediates(op).unwrap();
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn module_builder_dedups_types() {
        let mut b = ModuleBuilder::new();
        let t0 = b.add_type(FuncType::new(vec![ValueType::I32], vec![]));
        let t1 = b.add_type(FuncType::new(vec![ValueType::I64], vec![]));
        let t2 = b.add_type(FuncType::new(vec![ValueType::I32], vec![]));
        assert_eq!(t0, 0);
        assert_eq!(t1, 1);
        assert_eq!(t0, t2);
        assert_eq!(b.finish().types.len(), 2);
    }

    #[test]
    fn imported_funcs_shift_defined_indices() {
        let mut b = ModuleBuilder::new();
        let imp = b.import_func("env", "log", FuncType::new(vec![ValueType::I32], vec![]));
        let mut code = CodeBuilder::new();
        code.i32_const(1).call(imp).i32_const(0);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], code.finish());
        assert_eq!(imp, 0);
        assert_eq!(f, 1);
        let m = b.finish();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.func_type(1).unwrap().results, vec![ValueType::I32]);
    }

    #[test]
    #[should_panic(expected = "imports must precede")]
    fn imports_after_definitions_panic() {
        let mut b = ModuleBuilder::new();
        b.add_func(FuncType::new(vec![], vec![]), vec![], CodeBuilder::new().finish());
        b.import_func("env", "late", FuncType::new(vec![], vec![]));
    }

    #[test]
    fn module_sections_are_populated() {
        let mut b = ModuleBuilder::new();
        let mem = b.add_memory(Limits::bounded(1, 2));
        let table = b.add_table(ValueType::FuncRef, Limits::at_least(4));
        let g = b.add_global(GlobalType::mutable(ValueType::I64), ConstExpr::I64(9));
        let f = b.add_func(FuncType::new(vec![], vec![]), vec![], CodeBuilder::new().finish());
        b.export_func("f", f);
        b.export_memory("mem", mem);
        b.export_global("g", g);
        b.set_start(f);
        b.add_elem(table, ConstExpr::I32(0), vec![f]);
        b.add_data(mem, ConstExpr::I32(8), vec![1, 2, 3]);
        let m = b.finish();
        assert_eq!(m.memories.len(), 1);
        assert_eq!(m.tables.len(), 1);
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.start, Some(f));
        assert_eq!(m.elems.len(), 1);
        assert_eq!(m.data.len(), 1);
        assert_eq!(m.exports.len(), 3);
    }

    #[test]
    fn mem_helper_writes_align_and_offset() {
        let mut c = CodeBuilder::new();
        c.i32_const(0).mem(Opcode::I32Load, 2, 64).drop_();
        let code = c.finish();
        let mut r = BytecodeReader::new(&code);
        assert_eq!(r.read_opcode().unwrap(), Opcode::I32Const);
        r.read_i32().unwrap();
        assert_eq!(r.read_opcode().unwrap(), Opcode::I32Load);
        let ma = r.read_memarg().unwrap();
        assert_eq!(ma.align, 2);
        assert_eq!(ma.offset, 64);
    }
}
