//! The `name` custom section, parsed into a typed form.
//!
//! The binary format stores debug names in a custom section called `name`,
//! organized as subsections: `0` names the module, `1` maps function indices
//! to names, and `2` maps `(function, local)` index pairs to names. The
//! engine uses these to symbolicate trap backtraces; the WAT pipeline
//! produces them from `$identifiers` and prints them back out.
//!
//! Parsing is deliberately *tolerant*: debug metadata must never make a
//! module unrunnable, so a malformed subsection (truncated LEB, length
//! overrun, invalid UTF-8) stops the parse at that point and keeps whatever
//! was decoded before it. [`NameSection::parse`] therefore has no error
//! type. Encoding is canonical — subsections in ascending id order, name
//! maps sorted by index — so lowering the same names always produces the
//! same bytes, which is what keeps the WAT round trip byte-identical.

use crate::leb;
use crate::writer::ByteWriter;
use std::collections::BTreeMap;

/// Typed contents of the `name` custom section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameSection {
    /// The module's own name (subsection 0).
    pub module: Option<String>,
    /// Function names by function index (subsection 1).
    funcs: BTreeMap<u32, String>,
    /// Local (including parameter) names by function index, then local
    /// index (subsection 2).
    locals: BTreeMap<u32, BTreeMap<u32, String>>,
}

impl NameSection {
    /// An empty name section.
    pub fn new() -> NameSection {
        NameSection::default()
    }

    /// True when no name of any kind is present (an empty section is not
    /// worth a custom section at all).
    pub fn is_empty(&self) -> bool {
        self.module.is_none() && self.funcs.is_empty() && self.locals.is_empty()
    }

    /// The name of function `func_index`, if present.
    pub fn func_name(&self, func_index: u32) -> Option<&str> {
        self.funcs.get(&func_index).map(String::as_str)
    }

    /// The name of local `local_index` of function `func_index`, if present.
    pub fn local_name(&self, func_index: u32, local_index: u32) -> Option<&str> {
        self.locals.get(&func_index)?.get(&local_index).map(String::as_str)
    }

    /// Names a function.
    pub fn set_func_name(&mut self, func_index: u32, name: impl Into<String>) {
        self.funcs.insert(func_index, name.into());
    }

    /// Names a local (or parameter) of a function.
    pub fn set_local_name(&mut self, func_index: u32, local_index: u32, name: impl Into<String>) {
        self.locals.entry(func_index).or_default().insert(local_index, name.into());
    }

    /// All function names, in ascending function-index order.
    pub fn func_names(&self) -> impl Iterator<Item = (u32, &str)> {
        self.funcs.iter().map(|(&i, n)| (i, n.as_str()))
    }

    /// All local names of one function, in ascending local-index order.
    pub fn local_names(&self, func_index: u32) -> impl Iterator<Item = (u32, &str)> {
        self.locals
            .get(&func_index)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&i, n)| (i, n.as_str())))
    }

    /// Number of function names.
    pub fn num_func_names(&self) -> usize {
        self.funcs.len()
    }

    /// Parses the payload of a `name` custom section, keeping everything
    /// decoded before the first malformed byte (see the module docs for why
    /// this never fails).
    pub fn parse(bytes: &[u8]) -> NameSection {
        let mut names = NameSection::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some((id, p)) = read_u8(bytes, pos) else { break };
            let Some((size, p)) = read_u32(bytes, p) else { break };
            let Some(end) = p.checked_add(size as usize).filter(|&e| e <= bytes.len()) else {
                break;
            };
            let sub = &bytes[p..end];
            match id {
                0 => {
                    if let Some((name, _)) = read_name(sub, 0) {
                        names.module = Some(name);
                    }
                }
                1 => parse_name_map(sub, |index, name| {
                    names.funcs.insert(index, name);
                }),
                2 => parse_indirect_map(sub, |func, local, name| {
                    names.locals.entry(func).or_default().insert(local, name);
                }),
                // Unknown subsection (labels, types, ...): skipped, like any
                // other custom payload this engine does not interpret.
                _ => {}
            }
            pos = end;
        }
        names
    }

    /// Encodes the section payload canonically (see the module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = ByteWriter::new();
        if let Some(module) = &self.module {
            let mut sub = ByteWriter::new();
            sub.write_name(module);
            write_subsection(&mut out, 0, &sub);
        }
        if !self.funcs.is_empty() {
            let mut sub = ByteWriter::new();
            sub.write_u32_leb(self.funcs.len() as u32);
            for (&index, name) in &self.funcs {
                sub.write_u32_leb(index);
                sub.write_name(name);
            }
            write_subsection(&mut out, 1, &sub);
        }
        if !self.locals.is_empty() {
            let mut sub = ByteWriter::new();
            sub.write_u32_leb(self.locals.len() as u32);
            for (&func, locals) in &self.locals {
                sub.write_u32_leb(func);
                sub.write_u32_leb(locals.len() as u32);
                for (&local, name) in locals {
                    sub.write_u32_leb(local);
                    sub.write_name(name);
                }
            }
            write_subsection(&mut out, 2, &sub);
        }
        out.into_bytes()
    }
}

fn write_subsection(out: &mut ByteWriter, id: u8, payload: &ByteWriter) {
    out.write_u8(id);
    out.write_u32_leb(payload.len() as u32);
    out.write_bytes(payload.as_bytes());
}

fn read_u8(bytes: &[u8], pos: usize) -> Option<(u8, usize)> {
    bytes.get(pos).map(|&b| (b, pos + 1))
}

fn read_u32(bytes: &[u8], pos: usize) -> Option<(u32, usize)> {
    leb::read_unsigned(bytes, pos, 32).ok().map(|(v, consumed)| (v as u32, pos + consumed))
}

fn read_name(bytes: &[u8], pos: usize) -> Option<(String, usize)> {
    let (len, p) = read_u32(bytes, pos)?;
    let end = p.checked_add(len as usize).filter(|&e| e <= bytes.len())?;
    let name = std::str::from_utf8(&bytes[p..end]).ok()?;
    Some((name.to_string(), end))
}

/// Parses a name map (`count` then `count` × `(index, name)`), stopping at
/// the first malformed entry.
fn parse_name_map(bytes: &[u8], mut put: impl FnMut(u32, String)) {
    let Some((count, mut pos)) = read_u32(bytes, 0) else { return };
    for _ in 0..count {
        let Some((index, p)) = read_u32(bytes, pos) else { return };
        let Some((name, p)) = read_name(bytes, p) else { return };
        put(index, name);
        pos = p;
    }
}

/// Parses an indirect name map (`count` × `(func, inner name map)`),
/// stopping at the first malformed entry.
fn parse_indirect_map(bytes: &[u8], mut put: impl FnMut(u32, u32, String)) {
    let Some((count, mut pos)) = read_u32(bytes, 0) else { return };
    for _ in 0..count {
        let Some((func, p)) = read_u32(bytes, pos) else { return };
        let Some((inner, mut p)) = read_u32(bytes, p) else { return };
        for _ in 0..inner {
            let Some((local, q)) = read_u32(bytes, p) else { return };
            let Some((name, q)) = read_name(bytes, q) else { return };
            put(func, local, name);
            p = q;
        }
        pos = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_encode_and_parse() {
        let mut n = NameSection::new();
        n.module = Some("m".to_string());
        n.set_func_name(0, "main");
        n.set_func_name(3, "helper");
        n.set_local_name(0, 0, "x");
        n.set_local_name(0, 2, "tmp");
        n.set_local_name(3, 1, "y");
        let bytes = n.encode();
        let parsed = NameSection::parse(&bytes);
        assert_eq!(parsed, n);
        // Canonical encoding is a fixed point.
        assert_eq!(parsed.encode(), bytes);
    }

    #[test]
    fn empty_section_encodes_to_nothing() {
        let n = NameSection::new();
        assert!(n.is_empty());
        assert!(n.encode().is_empty());
        assert_eq!(NameSection::parse(&[]), n);
    }

    #[test]
    fn accessors_resolve_names() {
        let mut n = NameSection::new();
        n.set_func_name(2, "fib");
        n.set_local_name(2, 0, "n");
        assert_eq!(n.func_name(2), Some("fib"));
        assert_eq!(n.func_name(0), None);
        assert_eq!(n.local_name(2, 0), Some("n"));
        assert_eq!(n.local_name(2, 1), None);
        assert_eq!(n.local_name(0, 0), None);
        assert_eq!(n.func_names().collect::<Vec<_>>(), vec![(2, "fib")]);
        assert_eq!(n.local_names(2).collect::<Vec<_>>(), vec![(0, "n")]);
    }

    #[test]
    fn malformed_sections_keep_earlier_names() {
        let mut n = NameSection::new();
        n.set_func_name(0, "good");
        let mut bytes = n.encode();
        // A truncated second subsection: id 2 claiming 100 payload bytes.
        bytes.extend_from_slice(&[2, 100]);
        let parsed = NameSection::parse(&bytes);
        assert_eq!(parsed.func_name(0), Some("good"));
        assert!(parsed.locals.is_empty());

        // Invalid UTF-8 inside a name stops that map but keeps prior entries.
        let mut raw = Vec::new();
        let mut sub = ByteWriter::new();
        sub.write_u32_leb(2);
        sub.write_u32_leb(0);
        sub.write_name("ok");
        sub.write_u32_leb(1);
        sub.write_u32_leb(2);
        sub.write_bytes(&[0xFF, 0xFE]);
        raw.push(1);
        leb::write_unsigned(&mut raw, sub.len() as u64);
        raw.extend_from_slice(sub.as_bytes());
        let parsed = NameSection::parse(&raw);
        assert_eq!(parsed.func_name(0), Some("ok"));
        assert_eq!(parsed.func_name(1), None);

        // Garbage from the first byte parses to an empty section.
        assert!(NameSection::parse(&[0xFF, 0xFF, 0xFF]).is_empty());
    }

    #[test]
    fn unknown_subsections_are_skipped() {
        let mut raw = Vec::new();
        // Subsection 7 (labels) with arbitrary payload, then a function map.
        raw.push(7);
        raw.push(3);
        raw.extend_from_slice(&[1, 2, 3]);
        let mut n = NameSection::new();
        n.set_func_name(1, "after");
        raw.extend_from_slice(&n.encode());
        assert_eq!(NameSection::parse(&raw).func_name(1), Some("after"));
    }
}
