//! WebAssembly substrate: module representation, binary format, and validation.
//!
//! This crate is the foundation of the baseline-compiler study. It provides:
//!
//! * [`types`] — value types, signatures, limits, and block types;
//! * [`opcode`] — the opcode set with immediate-shape and signature metadata;
//! * [`leb`], [`reader`], [`writer`] — binary primitives shared by everything
//!   that touches bytecode (decoder, encoder, interpreter, compilers);
//! * [`module`] — the in-memory [`module::Module`], with function bodies kept
//!   as raw bytecode so execution tiers can work *in place*;
//! * [`builder`] — programmatic construction of modules and bodies;
//! * [`decode`] / [`encode`] — the `.wasm` binary format;
//! * [`names`] — the `name` custom section, parsed (tolerantly) into typed
//!   function/local name maps the engine symbolicates trap backtraces with;
//! * [`hash`] — stable FNV-1a content hashing behind
//!   [`module::Module::content_hash`], the engine's code-cache key primitive;
//! * [`validate`] — the forward abstract-interpretation validator whose
//!   algorithm the single-pass compiler reuses;
//! * [`wat`] — the text-format frontend (`.wat` → [`module::Module`]) and the
//!   canonical printer whose output round-trips byte-identically.
//!
//! # Examples
//!
//! Build, encode, decode, and validate a small module:
//!
//! ```
//! use wasm::builder::{CodeBuilder, ModuleBuilder};
//! use wasm::opcode::Opcode;
//! use wasm::types::{FuncType, ValueType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModuleBuilder::new();
//! let mut code = CodeBuilder::new();
//! code.local_get(0).local_get(1).op(Opcode::I32Add);
//! let add = b.add_func(
//!     FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
//!     vec![],
//!     code.finish(),
//! );
//! b.export_func("add", add);
//! let module = b.finish();
//!
//! let bytes = wasm::encode::encode(&module);
//! let decoded = wasm::decode::decode(&bytes)?;
//! let info = wasm::validate::validate(&decoded)?;
//! assert_eq!(info.funcs[0].max_stack, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod decode;
pub mod encode;
pub mod fuel;
pub mod hash;
pub mod leb;
pub mod module;
pub mod names;
pub mod opcode;
pub mod reader;
pub mod types;
pub mod validate;
pub mod wat;
pub mod writer;

pub use module::Module;
pub use opcode::Opcode;
pub use types::{BlockType, FuncType, GlobalType, Limits, ValueType};
