//! Core WebAssembly type definitions: value types, function types, limits,
//! global/table/memory types, and block types.
//!
//! These mirror the type grammar of the WebAssembly 1.0 specification plus
//! the reference types (`funcref`/`externref`) and multi-value extensions the
//! paper's compilers all support.

use std::fmt;

/// A WebAssembly value type.
///
/// Numeric types occupy one 64-bit slot in the engine's value stack; reference
/// types also occupy one slot but carry a *reference* value tag so the host
/// garbage collector can locate roots (see the `interp` and `engine` crates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// A (nullable) reference to a function.
    FuncRef,
    /// A (nullable) reference to a host object. These are the GC roots the
    /// paper's value-tag machinery exists to find.
    ExternRef,
}

impl ValueType {
    /// All value types, in a stable order.
    pub const ALL: [ValueType; 6] = [
        ValueType::I32,
        ValueType::I64,
        ValueType::F32,
        ValueType::F64,
        ValueType::FuncRef,
        ValueType::ExternRef,
    ];

    /// Returns true for the four numeric types.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ValueType::I32 | ValueType::I64 | ValueType::F32 | ValueType::F64
        )
    }

    /// Returns true for reference types (`funcref` and `externref`).
    pub fn is_reference(self) -> bool {
        matches!(self, ValueType::FuncRef | ValueType::ExternRef)
    }

    /// Returns true for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, ValueType::F32 | ValueType::F64)
    }

    /// Returns true for integer types.
    pub fn is_integer(self) -> bool {
        matches!(self, ValueType::I32 | ValueType::I64)
    }

    /// The binary-format byte for this type.
    pub fn to_byte(self) -> u8 {
        match self {
            ValueType::I32 => 0x7F,
            ValueType::I64 => 0x7E,
            ValueType::F32 => 0x7D,
            ValueType::F64 => 0x7C,
            ValueType::FuncRef => 0x70,
            ValueType::ExternRef => 0x6F,
        }
    }

    /// Decodes a value type from its binary-format byte.
    pub fn from_byte(b: u8) -> Option<ValueType> {
        match b {
            0x7F => Some(ValueType::I32),
            0x7E => Some(ValueType::I64),
            0x7D => Some(ValueType::F32),
            0x7C => Some(ValueType::F64),
            0x70 => Some(ValueType::FuncRef),
            0x6F => Some(ValueType::ExternRef),
            _ => None,
        }
    }

    /// The natural byte width of the *payload* of this type (the value stack
    /// always reserves a full 8-byte slot regardless).
    pub fn byte_width(self) -> u32 {
        match self {
            ValueType::I32 | ValueType::F32 => 4,
            _ => 8,
        }
    }

    /// A short lowercase mnemonic (`i32`, `externref`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            ValueType::I32 => "i32",
            ValueType::I64 => "i64",
            ValueType::F32 => "f32",
            ValueType::F64 => "f64",
            ValueType::FuncRef => "funcref",
            ValueType::ExternRef => "externref",
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A function signature: parameter types and result types.
///
/// Multi-value results are supported (the `MV` feature in the paper's Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValueType>,
    /// Result types, in order. More than one result requires multi-value.
    pub results: Vec<ValueType>,
}

impl FuncType {
    /// Creates a new function type.
    pub fn new(params: Vec<ValueType>, results: Vec<ValueType>) -> FuncType {
        FuncType { params, results }
    }

    /// Number of parameters.
    pub fn param_count(&self) -> u32 {
        self.params.len() as u32
    }

    /// Number of results.
    pub fn result_count(&self) -> u32 {
        self.results.len() as u32
    }

    /// True if this signature requires the multi-value extension.
    pub fn needs_multi_value(&self) -> bool {
        self.results.len() > 1
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "] -> [")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

/// Size limits for memories and tables, in pages or elements respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Minimum size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Creates limits with only a minimum.
    pub fn at_least(min: u32) -> Limits {
        Limits { min, max: None }
    }

    /// Creates limits with a minimum and maximum.
    pub fn bounded(min: u32, max: u32) -> Limits {
        Limits {
            min,
            max: Some(max),
        }
    }

    /// Checks that `min <= max` when a maximum is present.
    pub fn is_well_formed(&self) -> bool {
        self.max.is_none_or(|m| self.min <= m)
    }
}

impl fmt::Display for Limits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "{{min {}, max {}}}", self.min, max),
            None => write!(f, "{{min {}}}", self.min),
        }
    }
}

/// The type of a global variable: value type plus mutability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalType {
    /// The type of the global's value.
    pub value_type: ValueType,
    /// Whether the global may be assigned with `global.set`.
    pub mutable: bool,
}

impl GlobalType {
    /// An immutable global of the given type.
    pub fn immutable(value_type: ValueType) -> GlobalType {
        GlobalType {
            value_type,
            mutable: false,
        }
    }

    /// A mutable global of the given type.
    pub fn mutable(value_type: ValueType) -> GlobalType {
        GlobalType {
            value_type,
            mutable: true,
        }
    }
}

impl fmt::Display for GlobalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mutable {
            write!(f, "(mut {})", self.value_type)
        } else {
            write!(f, "{}", self.value_type)
        }
    }
}

/// The type of a table: element type plus limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableType {
    /// The element type; must be a reference type.
    pub element: ValueType,
    /// Table size limits, in elements.
    pub limits: Limits,
}

/// The type of a linear memory: limits in 64 KiB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryType {
    /// Memory size limits, in pages.
    pub limits: Limits,
}

/// WebAssembly page size in bytes.
pub const PAGE_SIZE: u32 = 65536;

/// Maximum number of pages addressable by a 32-bit memory.
pub const MAX_PAGES: u32 = 65536;

/// The type of a structured control construct (`block`, `loop`, `if`).
///
/// `Empty` and `Value` are the classic MVP encodings; `Func` refers to a
/// signature in the type section and enables multi-value blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockType {
    /// `[] -> []`
    Empty,
    /// `[] -> [t]`
    Value(ValueType),
    /// A full signature by type-section index: `params -> results`.
    Func(u32),
}

impl BlockType {
    /// Resolves this block type against a type section into (params, results).
    ///
    /// Returns `None` when `Func(i)` is out of bounds.
    pub fn resolve(
        &self,
        types: &[FuncType],
    ) -> Option<(Vec<ValueType>, Vec<ValueType>)> {
        match *self {
            BlockType::Empty => Some((Vec::new(), Vec::new())),
            BlockType::Value(t) => Some((Vec::new(), vec![t])),
            BlockType::Func(i) => {
                let ft = types.get(i as usize)?;
                Some((ft.params.clone(), ft.results.clone()))
            }
        }
    }
}

impl fmt::Display for BlockType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockType::Empty => write!(f, "[]"),
            BlockType::Value(t) => write!(f, "[{t}]"),
            BlockType::Func(i) => write!(f, "type[{i}]"),
        }
    }
}

/// Kinds of importable/exportable entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExternalKind {
    /// A function.
    Func,
    /// A table.
    Table,
    /// A linear memory.
    Memory,
    /// A global variable.
    Global,
}

impl ExternalKind {
    /// Binary-format byte.
    pub fn to_byte(self) -> u8 {
        match self {
            ExternalKind::Func => 0x00,
            ExternalKind::Table => 0x01,
            ExternalKind::Memory => 0x02,
            ExternalKind::Global => 0x03,
        }
    }

    /// Decodes from a binary-format byte.
    pub fn from_byte(b: u8) -> Option<ExternalKind> {
        match b {
            0x00 => Some(ExternalKind::Func),
            0x01 => Some(ExternalKind::Table),
            0x02 => Some(ExternalKind::Memory),
            0x03 => Some(ExternalKind::Global),
            _ => None,
        }
    }
}

impl fmt::Display for ExternalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExternalKind::Func => "func",
            ExternalKind::Table => "table",
            ExternalKind::Memory => "memory",
            ExternalKind::Global => "global",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_byte_roundtrip() {
        for vt in ValueType::ALL {
            assert_eq!(ValueType::from_byte(vt.to_byte()), Some(vt));
        }
        assert_eq!(ValueType::from_byte(0x00), None);
        assert_eq!(ValueType::from_byte(0x7B), None);
    }

    #[test]
    fn value_type_classification() {
        assert!(ValueType::I32.is_numeric());
        assert!(ValueType::F64.is_numeric());
        assert!(!ValueType::ExternRef.is_numeric());
        assert!(ValueType::ExternRef.is_reference());
        assert!(ValueType::FuncRef.is_reference());
        assert!(ValueType::F32.is_float());
        assert!(!ValueType::I64.is_float());
        assert!(ValueType::I64.is_integer());
        assert!(!ValueType::F32.is_integer());
    }

    #[test]
    fn value_type_widths() {
        assert_eq!(ValueType::I32.byte_width(), 4);
        assert_eq!(ValueType::F32.byte_width(), 4);
        assert_eq!(ValueType::I64.byte_width(), 8);
        assert_eq!(ValueType::F64.byte_width(), 8);
        assert_eq!(ValueType::ExternRef.byte_width(), 8);
    }

    #[test]
    fn func_type_display_and_counts() {
        let ft = FuncType::new(
            vec![ValueType::I32, ValueType::F64],
            vec![ValueType::I64],
        );
        assert_eq!(ft.param_count(), 2);
        assert_eq!(ft.result_count(), 1);
        assert!(!ft.needs_multi_value());
        assert_eq!(ft.to_string(), "[i32 f64] -> [i64]");

        let mv = FuncType::new(vec![], vec![ValueType::I32, ValueType::I32]);
        assert!(mv.needs_multi_value());
    }

    #[test]
    fn limits_well_formed() {
        assert!(Limits::at_least(1).is_well_formed());
        assert!(Limits::bounded(1, 2).is_well_formed());
        assert!(Limits::bounded(2, 2).is_well_formed());
        assert!(!Limits::bounded(3, 2).is_well_formed());
    }

    #[test]
    fn block_type_resolution() {
        let types = vec![FuncType::new(
            vec![ValueType::I32],
            vec![ValueType::I32, ValueType::I32],
        )];
        assert_eq!(
            BlockType::Empty.resolve(&types),
            Some((vec![], vec![]))
        );
        assert_eq!(
            BlockType::Value(ValueType::F32).resolve(&types),
            Some((vec![], vec![ValueType::F32]))
        );
        assert_eq!(
            BlockType::Func(0).resolve(&types),
            Some((vec![ValueType::I32], vec![ValueType::I32, ValueType::I32]))
        );
        assert_eq!(BlockType::Func(1).resolve(&types), None);
    }

    #[test]
    fn external_kind_roundtrip() {
        for k in [
            ExternalKind::Func,
            ExternalKind::Table,
            ExternalKind::Memory,
            ExternalKind::Global,
        ] {
            assert_eq!(ExternalKind::from_byte(k.to_byte()), Some(k));
        }
        assert_eq!(ExternalKind::from_byte(9), None);
    }

    #[test]
    fn global_type_constructors() {
        let g = GlobalType::mutable(ValueType::I64);
        assert!(g.mutable);
        assert_eq!(g.value_type, ValueType::I64);
        let g = GlobalType::immutable(ValueType::F32);
        assert!(!g.mutable);
        assert_eq!(g.to_string(), "f32");
        assert_eq!(GlobalType::mutable(ValueType::I32).to_string(), "(mut i32)");
    }
}
