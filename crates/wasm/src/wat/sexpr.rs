//! S-expression trees over the WAT token stream.
//!
//! Everything in the text format — modules, instructions, and the wast
//! assertion scripts the `conform` crate layers on top — is an s-expression,
//! so this parser is shared between the module frontend and the conformance
//! script runner.

use super::lexer::{tokenize, Token};
use super::WatError;

/// One node of the s-expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sexpr {
    /// A keyword, number, or `$identifier`.
    Atom {
        /// The atom text.
        text: String,
        /// Byte offset in the source.
        offset: usize,
    },
    /// A string literal as raw bytes.
    Str {
        /// The unescaped bytes.
        bytes: Vec<u8>,
        /// Byte offset in the source.
        offset: usize,
    },
    /// A parenthesized list.
    List {
        /// Child expressions.
        items: Vec<Sexpr>,
        /// Byte offset of the opening parenthesis.
        offset: usize,
    },
}

impl Sexpr {
    /// The source offset of this node.
    pub fn offset(&self) -> usize {
        match self {
            Sexpr::Atom { offset, .. } | Sexpr::Str { offset, .. } | Sexpr::List { offset, .. } => {
                *offset
            }
        }
    }

    /// The atom text, if this node is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom { text, .. } => Some(text),
            _ => None,
        }
    }

    /// The string bytes, if this node is a string literal.
    pub fn as_str_bytes(&self) -> Option<&[u8]> {
        match self {
            Sexpr::Str { bytes, .. } => Some(bytes),
            _ => None,
        }
    }

    /// The string contents as UTF-8, if this node is a valid-UTF-8 string.
    pub fn as_name(&self) -> Option<String> {
        self.as_str_bytes()
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
    }

    /// The child list, if this node is a list.
    pub fn as_list(&self) -> Option<&[Sexpr]> {
        match self {
            Sexpr::List { items, .. } => Some(items),
            _ => None,
        }
    }

    /// The leading keyword of a list (`(keyword ...)`), if any.
    pub fn keyword(&self) -> Option<&str> {
        self.as_list()?.first()?.as_atom()
    }
}

/// Parses WAT source into its top-level s-expressions.
///
/// # Errors
///
/// Returns a [`WatError`] on lexical errors or unbalanced parentheses.
pub fn parse_all(src: &str) -> Result<Vec<Sexpr>, WatError> {
    let tokens = tokenize(src)?;
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < tokens.len() {
        let (expr, next) = parse_one(&tokens, pos)?;
        out.push(expr);
        pos = next;
    }
    Ok(out)
}

fn parse_one(tokens: &[(Token, usize)], pos: usize) -> Result<(Sexpr, usize), WatError> {
    let (token, offset) = &tokens[pos];
    match token {
        Token::Atom(text) => Ok((
            Sexpr::Atom {
                text: text.clone(),
                offset: *offset,
            },
            pos + 1,
        )),
        Token::Str(bytes) => Ok((
            Sexpr::Str {
                bytes: bytes.clone(),
                offset: *offset,
            },
            pos + 1,
        )),
        Token::LParen => {
            let mut items = Vec::new();
            let mut cur = pos + 1;
            loop {
                match tokens.get(cur) {
                    None => return Err(WatError::new("unclosed parenthesis", *offset)),
                    Some((Token::RParen, _)) => {
                        return Ok((
                            Sexpr::List {
                                items,
                                offset: *offset,
                            },
                            cur + 1,
                        ))
                    }
                    Some(_) => {
                        let (child, next) = parse_one(tokens, cur)?;
                        items.push(child);
                        cur = next;
                    }
                }
            }
        }
        Token::RParen => Err(WatError::new("unexpected `)`", *offset)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_lists() {
        let exprs = parse_all("(a (b 1) \"s\") c").unwrap();
        assert_eq!(exprs.len(), 2);
        assert_eq!(exprs[0].keyword(), Some("a"));
        let items = exprs[0].as_list().unwrap();
        assert_eq!(items[1].keyword(), Some("b"));
        assert_eq!(items[1].as_list().unwrap()[1].as_atom(), Some("1"));
        assert_eq!(items[2].as_name().as_deref(), Some("s"));
        assert_eq!(exprs[1].as_atom(), Some("c"));
    }

    #[test]
    fn unbalanced_is_rejected() {
        assert!(parse_all("(a (b)").is_err());
        assert!(parse_all(")").is_err());
    }
}
