//! Lowering of parsed WAT s-expressions into a [`Module`].
//!
//! Lowering runs in three passes over the module fields: (A) `(type …)`
//! definitions are collected so every later typeuse — including forward name
//! references — resolves; (B) imports, functions, tables, memories, and
//! globals are declared in order, fixing every index space and symbolic
//! `$name`; (C) global initializers, exports, start, element/data segments,
//! and function bodies are lowered, now that every name is known. Function
//! bodies are encoded directly to the same raw bytecode the binary decoder
//! stores, so the validator, interpreter, and compilers see WAT-built modules
//! exactly as they see decoded ones.

use super::num;
use super::sexpr::Sexpr;
use super::WatError;
use crate::module::{
    ConstExpr, DataSegment, ElemSegment, Export, FuncDecl, Global, Import, ImportKind, Module,
};
use crate::opcode::{ImmediateKind, Opcode};
use crate::types::{
    BlockType, ExternalKind, FuncType, GlobalType, Limits, MemoryType, TableType, ValueType,
};
use crate::writer::ByteWriter;
use std::collections::HashMap;

/// Lowers a `(module …)` s-expression into a [`Module`].
///
/// # Errors
///
/// Returns a [`WatError`] naming the offending source offset for unknown
/// mnemonics, unresolved `$names`, malformed immediates, or out-of-order
/// imports.
pub fn module_from_sexpr(expr: &Sexpr) -> Result<Module, WatError> {
    let items = expr
        .as_list()
        .filter(|items| items.first().and_then(Sexpr::as_atom) == Some("module"))
        .ok_or_else(|| WatError::new("expected (module ...)", expr.offset()))?;
    let mut fields = &items[1..];
    // Optional module identifier (recorded in the name section).
    let mut module_name = None;
    if let Some(id) = fields
        .first()
        .and_then(Sexpr::as_atom)
        .and_then(|a| a.strip_prefix('$'))
    {
        module_name = Some(id.to_string());
        fields = &fields[1..];
    }

    let mut lw = Lowerer::default();

    // Pass A: type definitions.
    for field in fields {
        if field.keyword() == Some("type") {
            lw.define_type(field)?;
        }
    }

    // Pass B: declare everything, stashing work that needs complete name
    // tables for pass C.
    let mut deferred_bodies: Vec<DeferredBody<'_>> = Vec::new();
    let mut deferred_globals: Vec<(usize, &Sexpr)> = Vec::new();
    let mut deferred_fields: Vec<&Sexpr> = Vec::new();
    for field in fields {
        let kw = field
            .keyword()
            .ok_or_else(|| WatError::new("expected a (keyword ...) module field", field.offset()))?;
        match kw {
            "type" => {}
            "import" => lw.lower_import(field)?,
            "func" => {
                if let Some(body) = lw.declare_func(field)? {
                    deferred_bodies.push(body);
                }
            }
            "table" => lw.declare_table(field)?,
            "memory" => lw.declare_memory(field)?,
            "global" => {
                if let Some(deferred) = lw.declare_global(field)? {
                    deferred_globals.push(deferred);
                }
            }
            "export" | "start" | "elem" | "data" => deferred_fields.push(field),
            other => {
                return Err(WatError::new(
                    format!("unsupported module field `{other}`"),
                    field.offset(),
                ))
            }
        }
    }

    // Pass C: everything that can reference any name.
    lw.resolve_pending_inline_elems()?;
    for (index, init) in deferred_globals {
        let init = lw.lower_const_expr(init)?;
        lw.module.globals[index].init = init;
    }
    for field in deferred_fields {
        match field.keyword() {
            Some("export") => lw.lower_export(field)?,
            Some("start") => {
                let items = field.as_list().expect("checked");
                let idx = items
                    .get(1)
                    .ok_or_else(|| WatError::new("start needs a function", field.offset()))?;
                lw.module.start = Some(lw.resolve_func(idx)?);
            }
            Some("elem") => lw.lower_elem(field)?,
            Some("data") => lw.lower_data(field)?,
            _ => unreachable!("stashed fields are export/start/elem/data"),
        }
    }
    let num_imported = lw.module.num_imported_funcs();
    let mut names = crate::names::NameSection::new();
    names.module = module_name;
    for body in deferred_bodies {
        let code = lw.lower_body(&body)?;
        let func_index = num_imported + body.defined_index as u32;
        for (name, &local_index) in &code.local_names {
            names.set_local_name(func_index, local_index, name.clone());
        }
        let func = &mut lw.module.funcs[body.defined_index];
        func.locals = code.locals;
        func.code = code.bytes;
    }
    // Symbolic `$names` become the standard `name` custom section, so debug
    // names survive encoding and the engine can symbolicate backtraces. The
    // printer reads the same section back out, keeping the round trip
    // byte-identical.
    for (name, &func_index) in &lw.func_names {
        names.set_func_name(func_index, name.clone());
    }
    lw.module.set_name_section(&names);
    Ok(lw.module)
}

/// A function body stashed in pass B for lowering in pass C.
struct DeferredBody<'a> {
    defined_index: usize,
    /// The signature's parameter count (declared locals index after these).
    num_params: usize,
    /// Named parameters from the typeuse, by parameter index.
    param_names: Vec<Option<String>>,
    /// The `(local …)*` and instruction items following the typeuse.
    rest: &'a [Sexpr],
    offset: usize,
}

struct LoweredBody {
    locals: Vec<(u32, ValueType)>,
    bytes: Vec<u8>,
    /// Symbolic `$names` of parameters and locals, by local index (feeds the
    /// name section).
    local_names: HashMap<String, u32>,
}

#[derive(Default)]
struct Lowerer {
    module: Module,
    type_names: HashMap<String, u32>,
    func_names: HashMap<String, u32>,
    table_names: HashMap<String, u32>,
    memory_names: HashMap<String, u32>,
    global_names: HashMap<String, u32>,
    /// Inline `(table … (elem f*))` segments whose function names resolve
    /// only after pass B: (elem segment index, function index expressions).
    pending_inline_elems: Vec<(usize, Vec<Sexpr>)>,
}

impl Lowerer {
    // ---- Pass A ---------------------------------------------------------

    fn define_type(&mut self, field: &Sexpr) -> Result<(), WatError> {
        let items = field.as_list().expect("caller checked");
        let mut i = 1;
        if let Some(name) = take_name(items, &mut i) {
            let index = self.module.types.len() as u32;
            if self.type_names.insert(name.to_string(), index).is_some() {
                return Err(WatError::new(format!("duplicate type name {name}"), field.offset()));
            }
        }
        let func = items
            .get(i)
            .filter(|e| e.keyword() == Some("func"))
            .ok_or_else(|| WatError::new("type must contain (func ...)", field.offset()))?;
        let (ty, _names) = parse_func_sig(func.as_list().expect("is a list"), 1)?;
        self.module.types.push(ty);
        Ok(())
    }

    // ---- Pass B ---------------------------------------------------------

    fn lower_import(&mut self, field: &Sexpr) -> Result<(), WatError> {
        let items = field.as_list().expect("caller checked");
        let module_name = items
            .get(1)
            .and_then(Sexpr::as_name)
            .ok_or_else(|| WatError::new("import needs a module name", field.offset()))?;
        let item_name = items
            .get(2)
            .and_then(Sexpr::as_name)
            .ok_or_else(|| WatError::new("import needs an item name", field.offset()))?;
        let desc = items
            .get(3)
            .and_then(Sexpr::as_list)
            .ok_or_else(|| WatError::new("import needs a descriptor", field.offset()))?;
        let kw = desc
            .first()
            .and_then(Sexpr::as_atom)
            .ok_or_else(|| WatError::new("empty import descriptor", field.offset()))?;
        let mut i = 1;
        let name = take_name(desc, &mut i).map(str::to_string);
        let kind = match kw {
            "func" => {
                self.check_import_order(!self.module.funcs.is_empty(), field)?;
                if let Some(n) = name {
                    self.func_names.insert(n, self.module.num_imported_funcs());
                }
                let (type_index, _) = self.resolve_typeuse(desc, &mut i)?;
                ImportKind::Func(type_index)
            }
            "table" => {
                self.check_import_order(!self.module.tables.is_empty(), field)?;
                if let Some(n) = name {
                    self.table_names.insert(n, self.module.num_imported_tables());
                }
                ImportKind::Table(parse_table_type(desc, &mut i, field.offset())?)
            }
            "memory" => {
                self.check_import_order(!self.module.memories.is_empty(), field)?;
                if let Some(n) = name {
                    self.memory_names.insert(n, self.module.num_imported_memories());
                }
                ImportKind::Memory(MemoryType {
                    limits: parse_limits(desc, &mut i, field.offset())?,
                })
            }
            "global" => {
                self.check_import_order(!self.module.globals.is_empty(), field)?;
                if let Some(n) = name {
                    self.global_names.insert(n, self.module.num_imported_globals());
                }
                ImportKind::Global(parse_global_type(desc.get(i), field.offset())?)
            }
            other => {
                return Err(WatError::new(
                    format!("unsupported import kind `{other}`"),
                    field.offset(),
                ))
            }
        };
        self.module.imports.push(Import {
            module: module_name,
            name: item_name,
            kind,
        });
        Ok(())
    }

    fn check_import_order(&self, after_definition: bool, field: &Sexpr) -> Result<(), WatError> {
        if after_definition {
            return Err(WatError::new(
                "imports must precede definitions of the same kind",
                field.offset(),
            ));
        }
        Ok(())
    }

    /// Declares a `(func …)` field: registers its name, inline exports, and
    /// signature. Returns the deferred body unless the field is an inline
    /// import.
    fn declare_func<'a>(&mut self, field: &'a Sexpr) -> Result<Option<DeferredBody<'a>>, WatError> {
        let items = field.as_list().expect("caller checked");
        let mut i = 1;
        let name = take_name(items, &mut i).map(str::to_string);
        let index = self.module.num_funcs();
        if let Some(n) = &name {
            if self.func_names.insert(n.clone(), index).is_some() {
                return Err(WatError::new(format!("duplicate function name {n}"), field.offset()));
            }
        }
        self.take_inline_exports(items, &mut i, ExternalKind::Func, index);
        if let Some((module, item)) = take_inline_import(items, &mut i, field.offset())? {
            self.check_import_order(!self.module.funcs.is_empty(), field)?;
            let (type_index, _) = self.resolve_typeuse(items, &mut i)?;
            self.module.imports.push(Import {
                module,
                name: item,
                kind: ImportKind::Func(type_index),
            });
            return Ok(None);
        }
        let (type_index, param_names) = self.resolve_typeuse(items, &mut i)?;
        // The local index space starts after the *signature's* parameters,
        // which can outnumber the inline `(param …)` names when the typeuse
        // is a bare `(type $t)` reference.
        let num_params = self.module.types[type_index as usize].params.len();
        let defined_index = self.module.funcs.len();
        self.module.funcs.push(FuncDecl {
            type_index,
            locals: Vec::new(),
            code: vec![Opcode::End.to_byte()],
            code_offset: 0,
        });
        Ok(Some(DeferredBody {
            defined_index,
            num_params,
            param_names,
            rest: &items[i..],
            offset: field.offset(),
        }))
    }

    fn declare_table(&mut self, field: &Sexpr) -> Result<(), WatError> {
        let items = field.as_list().expect("caller checked");
        let mut i = 1;
        let name = take_name(items, &mut i).map(str::to_string);
        let index = self.module.num_tables();
        if let Some(n) = name {
            if self.table_names.insert(n.clone(), index).is_some() {
                return Err(WatError::new(format!("duplicate table name ${n}"), field.offset()));
            }
        }
        self.take_inline_exports(items, &mut i, ExternalKind::Table, index);
        if let Some((module, item)) = take_inline_import(items, &mut i, field.offset())? {
            self.check_import_order(!self.module.tables.is_empty(), field)?;
            let ty = parse_table_type(items, &mut i, field.offset())?;
            self.module.imports.push(Import {
                module,
                name: item,
                kind: ImportKind::Table(ty),
            });
            return Ok(());
        }
        // Inline element segment: `(table $t funcref (elem f*))`.
        if let (Some(elem_ty), Some(elems)) = (
            items.get(i).and_then(Sexpr::as_atom).and_then(parse_ref_type),
            items.get(i + 1).filter(|e| e.keyword() == Some("elem")),
        ) {
            let funcs = elems.as_list().expect("is a list")[1..].to_vec();
            let count = funcs.len() as u32;
            self.module.tables.push(TableType {
                element: elem_ty,
                limits: Limits::bounded(count, count),
            });
            // The function names may refer to later definitions; resolution
            // is deferred until every name is registered (pass C).
            self.module.elems.push(ElemSegment {
                table_index: index,
                offset: ConstExpr::I32(0),
                func_indices: Vec::new(),
            });
            self.pending_inline_elems
                .push((self.module.elems.len() - 1, funcs));
            return Ok(());
        }
        let ty = parse_table_type(items, &mut i, field.offset())?;
        self.module.tables.push(ty);
        Ok(())
    }

    fn declare_memory(&mut self, field: &Sexpr) -> Result<(), WatError> {
        let items = field.as_list().expect("caller checked");
        let mut i = 1;
        let name = take_name(items, &mut i).map(str::to_string);
        let index = self.module.num_memories();
        if let Some(n) = name {
            if self.memory_names.insert(n.clone(), index).is_some() {
                return Err(WatError::new(format!("duplicate memory name ${n}"), field.offset()));
            }
        }
        self.take_inline_exports(items, &mut i, ExternalKind::Memory, index);
        if let Some((module, item)) = take_inline_import(items, &mut i, field.offset())? {
            self.check_import_order(!self.module.memories.is_empty(), field)?;
            let limits = parse_limits(items, &mut i, field.offset())?;
            self.module.imports.push(Import {
                module,
                name: item,
                kind: ImportKind::Memory(MemoryType { limits }),
            });
            return Ok(());
        }
        let limits = parse_limits(items, &mut i, field.offset())?;
        self.module.memories.push(MemoryType { limits });
        Ok(())
    }

    /// Declares a `(global …)`; the initializer is deferred to pass C so it
    /// can reference later names (`ref.func` of a later function).
    fn declare_global<'a>(
        &mut self,
        field: &'a Sexpr,
    ) -> Result<Option<(usize, &'a Sexpr)>, WatError> {
        let items = field.as_list().expect("caller checked");
        let mut i = 1;
        let name = take_name(items, &mut i).map(str::to_string);
        let index = self.module.num_globals();
        if let Some(n) = name {
            if self.global_names.insert(n.clone(), index).is_some() {
                return Err(WatError::new(format!("duplicate global name ${n}"), field.offset()));
            }
        }
        self.take_inline_exports(items, &mut i, ExternalKind::Global, index);
        if let Some((module, item)) = take_inline_import(items, &mut i, field.offset())? {
            self.check_import_order(!self.module.globals.is_empty(), field)?;
            let ty = parse_global_type(items.get(i), field.offset())?;
            self.module.imports.push(Import {
                module,
                name: item,
                kind: ImportKind::Global(ty),
            });
            return Ok(None);
        }
        let ty = parse_global_type(items.get(i), field.offset())?;
        i += 1;
        let init = items
            .get(i)
            .ok_or_else(|| WatError::new("global needs an initializer", field.offset()))?;
        let defined_index = self.module.globals.len();
        self.module.globals.push(Global {
            ty,
            init: ConstExpr::I32(0),
        });
        Ok(Some((defined_index, init)))
    }

    fn take_inline_exports(
        &mut self,
        items: &[Sexpr],
        i: &mut usize,
        kind: ExternalKind,
        index: u32,
    ) {
        while let Some(list) = items.get(*i).filter(|e| e.keyword() == Some("export")) {
            if let Some(name) = list.as_list().and_then(|l| l.get(1)).and_then(Sexpr::as_name) {
                self.module.exports.push(Export { name, kind, index });
            }
            *i += 1;
        }
    }

    // ---- Pass C ---------------------------------------------------------

    fn lower_export(&mut self, field: &Sexpr) -> Result<(), WatError> {
        let items = field.as_list().expect("caller checked");
        let name = items
            .get(1)
            .and_then(Sexpr::as_name)
            .ok_or_else(|| WatError::new("export needs a name", field.offset()))?;
        let desc = items
            .get(2)
            .and_then(Sexpr::as_list)
            .ok_or_else(|| WatError::new("export needs a descriptor", field.offset()))?;
        let kw = desc.first().and_then(Sexpr::as_atom).unwrap_or("");
        let target = desc
            .get(1)
            .ok_or_else(|| WatError::new("export descriptor needs an index", field.offset()))?;
        let (kind, index) = match kw {
            "func" => (ExternalKind::Func, self.resolve_func(target)?),
            "table" => (ExternalKind::Table, self.resolve_named(target, &self.table_names)?),
            "memory" => (ExternalKind::Memory, self.resolve_named(target, &self.memory_names)?),
            "global" => (ExternalKind::Global, self.resolve_named(target, &self.global_names)?),
            other => {
                return Err(WatError::new(
                    format!("unsupported export kind `{other}`"),
                    field.offset(),
                ))
            }
        };
        self.module.exports.push(Export {
            name,
            kind,
            index,
        });
        Ok(())
    }

    fn lower_elem(&mut self, field: &Sexpr) -> Result<(), WatError> {
        let items = field.as_list().expect("caller checked");
        let mut i = 1;
        let table_index = match items.get(i).filter(|e| e.keyword() == Some("table")) {
            Some(t) => {
                i += 1;
                let idx = t.as_list().and_then(|l| l.get(1)).ok_or_else(|| {
                    WatError::new("(table ...) needs an index", field.offset())
                })?;
                self.resolve_named(idx, &self.table_names)?
            }
            None => 0,
        };
        let offset_expr = items
            .get(i)
            .ok_or_else(|| WatError::new("elem needs an offset", field.offset()))?;
        let offset = self.lower_offset(offset_expr)?;
        i += 1;
        // Optional `func` keyword before the index list.
        if items.get(i).and_then(Sexpr::as_atom) == Some("func") {
            i += 1;
        }
        let mut funcs = Vec::new();
        for item in &items[i..] {
            funcs.push(self.resolve_func(item)?);
        }
        self.module.elems.push(ElemSegment {
            table_index,
            offset,
            func_indices: funcs,
        });
        Ok(())
    }

    fn lower_data(&mut self, field: &Sexpr) -> Result<(), WatError> {
        let items = field.as_list().expect("caller checked");
        let mut i = 1;
        let memory_index = match items.get(i).filter(|e| e.keyword() == Some("memory")) {
            Some(t) => {
                i += 1;
                let idx = t.as_list().and_then(|l| l.get(1)).ok_or_else(|| {
                    WatError::new("(memory ...) needs an index", field.offset())
                })?;
                self.resolve_named(idx, &self.memory_names)?
            }
            None => 0,
        };
        let offset_expr = items
            .get(i)
            .ok_or_else(|| WatError::new("data needs an offset", field.offset()))?;
        let offset = self.lower_offset(offset_expr)?;
        i += 1;
        let mut bytes = Vec::new();
        for item in &items[i..] {
            bytes.extend_from_slice(item.as_str_bytes().ok_or_else(|| {
                WatError::new("data contents must be string literals", item.offset())
            })?);
        }
        self.module.data.push(DataSegment {
            memory_index,
            offset,
            bytes,
        });
        Ok(())
    }

    /// Lowers `(offset e)` or a bare folded const expression.
    fn lower_offset(&self, expr: &Sexpr) -> Result<ConstExpr, WatError> {
        if expr.keyword() == Some("offset") {
            let inner = expr.as_list().expect("is a list").get(1).ok_or_else(|| {
                WatError::new("(offset ...) needs an expression", expr.offset())
            })?;
            return self.lower_const_expr(inner);
        }
        self.lower_const_expr(expr)
    }

    fn lower_const_expr(&self, expr: &Sexpr) -> Result<ConstExpr, WatError> {
        let items = expr
            .as_list()
            .ok_or_else(|| WatError::new("expected a constant expression", expr.offset()))?;
        let kw = items.first().and_then(Sexpr::as_atom).unwrap_or("");
        let arg = items.get(1);
        let need = |what: &str| WatError::new(format!("{kw} needs {what}"), expr.offset());
        let int_arg = |bits: u32| -> Result<u64, WatError> {
            let text = arg.and_then(Sexpr::as_atom).ok_or_else(|| need("a value"))?;
            num::parse_int(text, bits).map_err(|m| WatError::new(m, expr.offset()))
        };
        Ok(match kw {
            "i32.const" => ConstExpr::I32(int_arg(32)? as u32 as i32),
            "i64.const" => ConstExpr::I64(int_arg(64)? as i64),
            "f32.const" => {
                let text = arg.and_then(Sexpr::as_atom).ok_or_else(|| need("a value"))?;
                ConstExpr::F32(f32::from_bits(
                    num::parse_f32(text).map_err(|m| WatError::new(m, expr.offset()))?,
                ))
            }
            "f64.const" => {
                let text = arg.and_then(Sexpr::as_atom).ok_or_else(|| need("a value"))?;
                ConstExpr::F64(f64::from_bits(
                    num::parse_f64(text).map_err(|m| WatError::new(m, expr.offset()))?,
                ))
            }
            "global.get" => {
                ConstExpr::GlobalGet(self.resolve_named(arg.ok_or_else(|| need("an index"))?, &self.global_names)?)
            }
            "ref.func" => ConstExpr::RefFunc(self.resolve_func(arg.ok_or_else(|| need("an index"))?)?),
            "ref.null" => {
                let ty = arg
                    .and_then(Sexpr::as_atom)
                    .and_then(parse_ref_type)
                    .ok_or_else(|| need("a reference type"))?;
                ConstExpr::RefNull(ty)
            }
            other => {
                return Err(WatError::new(
                    format!("unsupported constant expression `{other}`"),
                    expr.offset(),
                ))
            }
        })
    }

    // ---- Shared resolution ---------------------------------------------

    /// Resolves `(type x)? (param …)* (result …)*` starting at `items[*i]`,
    /// returning the type index and the named parameters.
    fn resolve_typeuse(
        &mut self,
        items: &[Sexpr],
        i: &mut usize,
    ) -> Result<(u32, Vec<Option<String>>), WatError> {
        let mut explicit: Option<u32> = None;
        if let Some(t) = items.get(*i).filter(|e| e.keyword() == Some("type")) {
            let idx = t
                .as_list()
                .expect("is a list")
                .get(1)
                .ok_or_else(|| WatError::new("(type ...) needs an index", t.offset()))?;
            explicit = Some(self.resolve_named(idx, &self.type_names)?);
            *i += 1;
        }
        let (sig, names) = parse_func_sig(items, *i)?;
        // Skip the consumed param/result lists.
        while items
            .get(*i)
            .and_then(Sexpr::keyword)
            .is_some_and(|k| k == "param" || k == "result")
        {
            *i += 1;
        }
        match explicit {
            Some(index) => {
                let declared = self
                    .module
                    .types
                    .get(index as usize)
                    .ok_or_else(|| WatError::new("type index out of range", 0))?;
                if !(sig.params.is_empty() && sig.results.is_empty()) && *declared != sig {
                    return Err(WatError::new(
                        "inline signature disagrees with referenced type",
                        items.first().map_or(0, Sexpr::offset),
                    ));
                }
                Ok((index, names))
            }
            None => {
                // First matching type wins; otherwise append (spec semantics).
                let index = match self.module.types.iter().position(|t| *t == sig) {
                    Some(p) => p as u32,
                    None => {
                        self.module.types.push(sig);
                        self.module.types.len() as u32 - 1
                    }
                };
                Ok((index, names))
            }
        }
    }

    fn resolve_func(&self, expr: &Sexpr) -> Result<u32, WatError> {
        self.resolve_named(expr, &self.func_names)
    }

    fn resolve_named(&self, expr: &Sexpr, names: &HashMap<String, u32>) -> Result<u32, WatError> {
        let text = expr
            .as_atom()
            .ok_or_else(|| WatError::new("expected an index or $name", expr.offset()))?;
        if let Some(name) = text.strip_prefix('$') {
            return names.get(name).copied().ok_or_else(|| {
                WatError::new(format!("unknown name ${name}"), expr.offset())
            });
        }
        num::parse_int(text, 32)
            .map(|v| v as u32)
            .map_err(|m| WatError::new(m, expr.offset()))
    }

    // ---- Function bodies ------------------------------------------------

    fn lower_body(&mut self, body: &DeferredBody<'_>) -> Result<LoweredBody, WatError> {
        let mut local_names: HashMap<String, u32> = HashMap::new();
        for (p, name) in body.param_names.iter().enumerate() {
            if let Some(n) = name {
                local_names.insert(n.clone(), p as u32);
            }
        }
        let mut next_local = body.num_params as u32;
        let mut groups: Vec<(u32, ValueType)> = Vec::new();
        let mut i = 0;
        while let Some(field) = body.rest.get(i).filter(|e| e.keyword() == Some("local")) {
            let items = field.as_list().expect("is a list");
            let mut j = 1;
            if let Some(name) = take_name(items, &mut j) {
                let ty = items
                    .get(j)
                    .and_then(Sexpr::as_atom)
                    .and_then(parse_value_type)
                    .ok_or_else(|| WatError::new("named local needs one type", field.offset()))?;
                local_names.insert(name.to_string(), next_local);
                next_local += 1;
                groups.push((1, ty));
            } else {
                // One group per `(local …)` field, with runs merged inside
                // the field only — this exactly mirrors the printer, keeping
                // the binary local groupings bit-stable through round trips.
                let mut field_groups: Vec<(u32, ValueType)> = Vec::new();
                for item in &items[1..] {
                    let ty = item
                        .as_atom()
                        .and_then(parse_value_type)
                        .ok_or_else(|| WatError::new("expected a value type", item.offset()))?;
                    next_local += 1;
                    match field_groups.last_mut() {
                        Some((n, last)) if *last == ty => *n += 1,
                        _ => field_groups.push((1, ty)),
                    }
                }
                groups.extend(field_groups);
            }
            i += 1;
        }

        let mut bl = BodyLowerer {
            lw: self,
            local_names,
            labels: Vec::new(),
            w: ByteWriter::new(),
        };
        bl.instr_seq(&body.rest[i..])?;
        if !bl.labels.is_empty() {
            return Err(WatError::new("unclosed block in function body", body.offset));
        }
        let local_names = std::mem::take(&mut bl.local_names);
        let mut bytes = bl.w.into_bytes();
        bytes.push(Opcode::End.to_byte());
        Ok(LoweredBody {
            locals: groups,
            bytes,
            local_names,
        })
    }
}

// Inline element segments need function-name resolution that is only complete
// once pass B finishes, so the lowerer keeps them on the side.
impl Lowerer {
    fn resolve_pending_inline_elems(&mut self) -> Result<(), WatError> {
        let pending = std::mem::take(&mut self.pending_inline_elems);
        for (seg, funcs) in pending {
            let mut indices = Vec::with_capacity(funcs.len());
            for f in &funcs {
                indices.push(self.resolve_func(f)?);
            }
            self.module.elems[seg].func_indices = indices;
        }
        Ok(())
    }
}

struct BodyLowerer<'m> {
    lw: &'m mut Lowerer,
    local_names: HashMap<String, u32>,
    /// Open structured constructs, innermost last.
    labels: Vec<Option<String>>,
    w: ByteWriter,
}

impl BodyLowerer<'_> {
    fn instr_seq(&mut self, items: &[Sexpr]) -> Result<(), WatError> {
        let mut i = 0;
        while i < items.len() {
            i = self.instr(items, i)?;
        }
        Ok(())
    }

    /// Lowers one instruction starting at `items[i]`, returning the index of
    /// the next one.
    fn instr(&mut self, items: &[Sexpr], i: usize) -> Result<usize, WatError> {
        match &items[i] {
            Sexpr::Atom { text, offset } => self.flat_instr(items, i, text, *offset),
            list @ Sexpr::List { .. } => {
                self.folded_instr(list)?;
                Ok(i + 1)
            }
            Sexpr::Str { offset, .. } => {
                Err(WatError::new("unexpected string in instruction sequence", *offset))
            }
        }
    }

    fn flat_instr(
        &mut self,
        items: &[Sexpr],
        i: usize,
        mnemonic: &str,
        offset: usize,
    ) -> Result<usize, WatError> {
        match mnemonic {
            "block" | "loop" | "if" => {
                let mut j = i + 1;
                let label = take_name(items, &mut j).map(str::to_string);
                let bt = self.parse_block_type(items, &mut j)?;
                self.labels.push(label);
                let op = match mnemonic {
                    "block" => Opcode::Block,
                    "loop" => Opcode::Loop,
                    _ => Opcode::If,
                };
                self.w.write_u8(op.to_byte());
                write_block_type(&mut self.w, bt);
                Ok(j)
            }
            "else" => {
                let mut j = i + 1;
                take_name(items, &mut j);
                self.w.write_u8(Opcode::Else.to_byte());
                Ok(j)
            }
            "end" => {
                if self.labels.pop().is_none() {
                    return Err(WatError::new("`end` without an open block", offset));
                }
                let mut j = i + 1;
                take_name(items, &mut j);
                self.w.write_u8(Opcode::End.to_byte());
                Ok(j)
            }
            "select" => {
                // Typed select is spelled `select (result t)`.
                if items.get(i + 1).is_some_and(|e| e.keyword() == Some("result")) {
                    let imm = self.select_types_imm(&items[i + 1])?;
                    self.w.write_u8(Opcode::SelectT.to_byte());
                    self.w.write_bytes(&imm);
                    Ok(i + 2)
                } else {
                    self.w.write_u8(Opcode::Select.to_byte());
                    Ok(i + 1)
                }
            }
            _ => {
                let op = lookup_opcode(mnemonic)
                    .ok_or_else(|| WatError::new(format!("unknown instruction `{mnemonic}`"), offset))?;
                let (imm, j) = self.parse_immediates(op, items, i + 1, offset)?;
                self.w.write_u8(op.to_byte());
                self.w.write_bytes(&imm);
                Ok(j)
            }
        }
    }

    fn folded_instr(&mut self, expr: &Sexpr) -> Result<(), WatError> {
        let items = expr.as_list().expect("caller checked");
        let offset = expr.offset();
        let mnemonic = items
            .first()
            .and_then(Sexpr::as_atom)
            .ok_or_else(|| WatError::new("expected an instruction", offset))?;
        match mnemonic {
            "block" | "loop" => {
                let mut j = 1;
                let label = take_name(items, &mut j).map(str::to_string);
                let bt = self.parse_block_type(items, &mut j)?;
                self.labels.push(label);
                let op = if mnemonic == "block" { Opcode::Block } else { Opcode::Loop };
                self.w.write_u8(op.to_byte());
                write_block_type(&mut self.w, bt);
                self.instr_seq(&items[j..])?;
                self.labels.pop();
                self.w.write_u8(Opcode::End.to_byte());
                Ok(())
            }
            "if" => {
                let mut j = 1;
                let label = take_name(items, &mut j).map(str::to_string);
                let bt = self.parse_block_type(items, &mut j)?;
                // Leading folded expressions before (then …) are the
                // condition and execute *before* the `if` opcode.
                let then_at = items[j..]
                    .iter()
                    .position(|e| e.keyword() == Some("then"))
                    .map(|p| p + j)
                    .ok_or_else(|| WatError::new("folded if needs (then ...)", offset))?;
                for cond in &items[j..then_at] {
                    self.folded_instr(cond)?;
                }
                self.labels.push(label);
                self.w.write_u8(Opcode::If.to_byte());
                write_block_type(&mut self.w, bt);
                let then_items = items[then_at].as_list().expect("is a list");
                self.instr_seq(&then_items[1..])?;
                if let Some(else_expr) = items.get(then_at + 1) {
                    if else_expr.keyword() != Some("else") {
                        return Err(WatError::new("expected (else ...)", else_expr.offset()));
                    }
                    let else_items = else_expr.as_list().expect("is a list");
                    if !else_items[1..].is_empty() {
                        self.w.write_u8(Opcode::Else.to_byte());
                        self.instr_seq(&else_items[1..])?;
                    }
                }
                self.labels.pop();
                self.w.write_u8(Opcode::End.to_byte());
                Ok(())
            }
            "select" => {
                let mut j = 1;
                let mut typed_imm = None;
                if items.get(j).is_some_and(|e| e.keyword() == Some("result")) {
                    typed_imm = Some(self.select_types_imm(&items[j])?);
                    j += 1;
                }
                for operand in &items[j..] {
                    self.folded_instr(operand)?;
                }
                match typed_imm {
                    Some(imm) => {
                        self.w.write_u8(Opcode::SelectT.to_byte());
                        self.w.write_bytes(&imm);
                    }
                    None => self.w.write_u8(Opcode::Select.to_byte()),
                }
                Ok(())
            }
            _ => {
                let op = lookup_opcode(mnemonic)
                    .ok_or_else(|| WatError::new(format!("unknown instruction `{mnemonic}`"), offset))?;
                let (imm, j) = self.parse_immediates(op, items, 1, offset)?;
                for operand in &items[j..] {
                    self.folded_instr(operand)?;
                }
                self.w.write_u8(op.to_byte());
                self.w.write_bytes(&imm);
                Ok(())
            }
        }
    }

    /// Parses the immediates of `op` from `items[j..]`, returning their
    /// binary encoding and the index after the last consumed item.
    fn parse_immediates(
        &mut self,
        op: Opcode,
        items: &[Sexpr],
        j: usize,
        offset: usize,
    ) -> Result<(Vec<u8>, usize), WatError> {
        let mut w = ByteWriter::new();
        let mut j = j;
        match op.immediate_kind() {
            ImmediateKind::None => {}
            ImmediateKind::LabelIndex => {
                let depth = self.resolve_label(items.get(j), offset)?;
                w.write_u32_leb(depth);
                j += 1;
            }
            ImmediateKind::BranchTable => {
                let mut targets = Vec::new();
                while let Some(expr) = items.get(j).filter(|e| is_index_atom(e)) {
                    targets.push(self.resolve_label(Some(expr), offset)?);
                    j += 1;
                }
                let default = targets
                    .pop()
                    .ok_or_else(|| WatError::new("br_table needs at least one label", offset))?;
                w.write_u32_leb(targets.len() as u32);
                for t in &targets {
                    w.write_u32_leb(*t);
                }
                w.write_u32_leb(default);
            }
            ImmediateKind::FuncIndex => {
                let target = items
                    .get(j)
                    .ok_or_else(|| WatError::new("expected a function index", offset))?;
                w.write_u32_leb(self.lw.resolve_func(target)?);
                j += 1;
            }
            ImmediateKind::CallIndirect => {
                // `call_indirect tableidx? typeuse`.
                let mut table = 0;
                if let Some(expr) = items.get(j).filter(|e| is_index_atom(e)) {
                    table = self.lw.resolve_named(expr, &self.lw.table_names)?;
                    j += 1;
                }
                let (type_index, _) = self.lw.resolve_typeuse(items, &mut j)?;
                w.write_u32_leb(type_index);
                w.write_u32_leb(table);
            }
            ImmediateKind::LocalIndex => {
                let expr = items
                    .get(j)
                    .ok_or_else(|| WatError::new("expected a local index", offset))?;
                w.write_u32_leb(self.resolve_local(expr)?);
                j += 1;
            }
            ImmediateKind::GlobalIndex => {
                let expr = items
                    .get(j)
                    .ok_or_else(|| WatError::new("expected a global index", offset))?;
                w.write_u32_leb(self.lw.resolve_named(expr, &self.lw.global_names)?);
                j += 1;
            }
            ImmediateKind::MemArg => {
                let mut mem_offset: u64 = 0;
                let mut align_bytes: Option<u64> = None;
                while let Some(text) = items.get(j).and_then(Sexpr::as_atom) {
                    if let Some(v) = text.strip_prefix("offset=") {
                        mem_offset = num::parse_int(v, 32)
                            .map_err(|m| WatError::new(m, items[j].offset()))?;
                        j += 1;
                    } else if let Some(v) = text.strip_prefix("align=") {
                        align_bytes = Some(
                            num::parse_int(v, 32)
                                .map_err(|m| WatError::new(m, items[j].offset()))?,
                        );
                        j += 1;
                    } else {
                        break;
                    }
                }
                let align_log2 = match align_bytes {
                    Some(bytes) => {
                        if bytes == 0 || !bytes.is_power_of_two() {
                            return Err(WatError::new("alignment must be a power of two", offset));
                        }
                        bytes.trailing_zeros()
                    }
                    None => op.access_width().unwrap_or(1).trailing_zeros(),
                };
                w.write_u32_leb(align_log2);
                w.write_u32_leb(mem_offset as u32);
            }
            ImmediateKind::MemoryIndex => {
                if let Some(expr) = items.get(j).filter(|e| is_index_atom(e)) {
                    let idx = self.lw.resolve_named(expr, &self.lw.memory_names)?;
                    if idx != 0 {
                        return Err(WatError::new("only memory 0 is supported", expr.offset()));
                    }
                    j += 1;
                }
                w.write_u8(0);
            }
            ImmediateKind::I32Const => {
                let text = items
                    .get(j)
                    .and_then(Sexpr::as_atom)
                    .ok_or_else(|| WatError::new("expected an i32 literal", offset))?;
                let v = num::parse_int(text, 32).map_err(|m| WatError::new(m, offset))?;
                w.write_i32_leb(v as u32 as i32);
                j += 1;
            }
            ImmediateKind::I64Const => {
                let text = items
                    .get(j)
                    .and_then(Sexpr::as_atom)
                    .ok_or_else(|| WatError::new("expected an i64 literal", offset))?;
                let v = num::parse_int(text, 64).map_err(|m| WatError::new(m, offset))?;
                w.write_i64_leb(v as i64);
                j += 1;
            }
            ImmediateKind::F32Const => {
                let text = items
                    .get(j)
                    .and_then(Sexpr::as_atom)
                    .ok_or_else(|| WatError::new("expected an f32 literal", offset))?;
                let bits = num::parse_f32(text).map_err(|m| WatError::new(m, offset))?;
                w.write_u32_le(bits);
                j += 1;
            }
            ImmediateKind::F64Const => {
                let text = items
                    .get(j)
                    .and_then(Sexpr::as_atom)
                    .ok_or_else(|| WatError::new("expected an f64 literal", offset))?;
                let bits = num::parse_f64(text).map_err(|m| WatError::new(m, offset))?;
                w.write_u64_le(bits);
                j += 1;
            }
            ImmediateKind::RefType => {
                let ty = items
                    .get(j)
                    .and_then(Sexpr::as_atom)
                    .and_then(parse_ref_type)
                    .ok_or_else(|| WatError::new("expected `func` or `extern`", offset))?;
                w.write_u8(ty.to_byte());
                j += 1;
            }
            ImmediateKind::BlockType | ImmediateKind::SelectTyped => {
                unreachable!("block/select instructions are special-cased before immediate parsing")
            }
        }
        Ok((w.into_bytes(), j))
    }

    fn select_types_imm(&self, result: &Sexpr) -> Result<Vec<u8>, WatError> {
        let items = result.as_list().expect("caller checked");
        let mut w = ByteWriter::new();
        w.write_u32_leb(items.len() as u32 - 1);
        for item in &items[1..] {
            let ty = item
                .as_atom()
                .and_then(parse_value_type)
                .ok_or_else(|| WatError::new("expected a value type", item.offset()))?;
            w.write_u8(ty.to_byte());
        }
        Ok(w.into_bytes())
    }

    fn parse_block_type(&mut self, items: &[Sexpr], j: &mut usize) -> Result<BlockType, WatError> {
        if let Some(t) = items.get(*j).filter(|e| e.keyword() == Some("type")) {
            let idx = t
                .as_list()
                .expect("is a list")
                .get(1)
                .ok_or_else(|| WatError::new("(type ...) needs an index", t.offset()))?;
            let index = self.lw.resolve_named(idx, &self.lw.type_names)?;
            *j += 1;
            // Skip redundant inline param/result lists.
            while items
                .get(*j)
                .and_then(Sexpr::keyword)
                .is_some_and(|k| k == "param" || k == "result")
            {
                *j += 1;
            }
            return Ok(BlockType::Func(index));
        }
        let (sig, _) = parse_func_sig(items, *j)?;
        while items
            .get(*j)
            .and_then(Sexpr::keyword)
            .is_some_and(|k| k == "param" || k == "result")
        {
            *j += 1;
        }
        if sig.params.is_empty() && sig.results.is_empty() {
            return Ok(BlockType::Empty);
        }
        if sig.params.is_empty() && sig.results.len() == 1 {
            return Ok(BlockType::Value(sig.results[0]));
        }
        // Multi-value blocks need a real signature in the type section.
        let index = match self.lw.module.types.iter().position(|t| *t == sig) {
            Some(p) => p as u32,
            None => {
                self.lw.module.types.push(sig);
                self.lw.module.types.len() as u32 - 1
            }
        };
        Ok(BlockType::Func(index))
    }

    fn resolve_local(&self, expr: &Sexpr) -> Result<u32, WatError> {
        let text = expr
            .as_atom()
            .ok_or_else(|| WatError::new("expected a local index or $name", expr.offset()))?;
        if let Some(name) = text.strip_prefix('$') {
            return self
                .local_names
                .get(name)
                .copied()
                .ok_or_else(|| WatError::new(format!("unknown local ${name}"), expr.offset()));
        }
        num::parse_int(text, 32)
            .map(|v| v as u32)
            .map_err(|m| WatError::new(m, expr.offset()))
    }

    fn resolve_label(&self, expr: Option<&Sexpr>, offset: usize) -> Result<u32, WatError> {
        let expr = expr.ok_or_else(|| WatError::new("expected a label", offset))?;
        let text = expr
            .as_atom()
            .ok_or_else(|| WatError::new("expected a label index or $name", expr.offset()))?;
        if let Some(name) = text.strip_prefix('$') {
            let pos = self
                .labels
                .iter()
                .rposition(|l| l.as_deref() == Some(name))
                .ok_or_else(|| WatError::new(format!("unknown label ${name}"), expr.offset()))?;
            return Ok((self.labels.len() - 1 - pos) as u32);
        }
        num::parse_int(text, 32)
            .map(|v| v as u32)
            .map_err(|m| WatError::new(m, expr.offset()))
    }
}

// ---- Free helpers -------------------------------------------------------

/// Consumes an optional `$name` atom at `items[*i]`.
fn take_name<'a>(items: &'a [Sexpr], i: &mut usize) -> Option<&'a str> {
    let name = items.get(*i)?.as_atom()?.strip_prefix('$')?;
    *i += 1;
    Some(name)
}

/// Recognizes `(import "m" "n")` at `items[*i]`.
fn take_inline_import(
    items: &[Sexpr],
    i: &mut usize,
    offset: usize,
) -> Result<Option<(String, String)>, WatError> {
    let Some(list) = items.get(*i).filter(|e| e.keyword() == Some("import")) else {
        return Ok(None);
    };
    let l = list.as_list().expect("is a list");
    let module = l
        .get(1)
        .and_then(Sexpr::as_name)
        .ok_or_else(|| WatError::new("inline import needs a module name", offset))?;
    let name = l
        .get(2)
        .and_then(Sexpr::as_name)
        .ok_or_else(|| WatError::new("inline import needs an item name", offset))?;
    *i += 1;
    Ok(Some((module, name)))
}

/// Parses `(param …)* (result …)*` at `items[i..]` into a signature without
/// consuming (callers advance the cursor themselves).
fn parse_func_sig(items: &[Sexpr], i: usize) -> Result<(FuncType, Vec<Option<String>>), WatError> {
    let mut params = Vec::new();
    let mut names = Vec::new();
    let mut results = Vec::new();
    let mut seen_result = false;
    for item in &items[i..] {
        match item.keyword() {
            Some("param") => {
                if seen_result {
                    return Err(WatError::new("params must precede results", item.offset()));
                }
                let l = item.as_list().expect("is a list");
                let mut j = 1;
                if let Some(name) = take_name(l, &mut j) {
                    let ty = l
                        .get(j)
                        .and_then(Sexpr::as_atom)
                        .and_then(parse_value_type)
                        .ok_or_else(|| {
                            WatError::new("named param needs exactly one type", item.offset())
                        })?;
                    params.push(ty);
                    names.push(Some(name.to_string()));
                } else {
                    for t in &l[1..] {
                        let ty = t.as_atom().and_then(parse_value_type).ok_or_else(|| {
                            WatError::new("expected a value type", t.offset())
                        })?;
                        params.push(ty);
                        names.push(None);
                    }
                }
            }
            Some("result") => {
                seen_result = true;
                let l = item.as_list().expect("is a list");
                for t in &l[1..] {
                    let ty = t.as_atom().and_then(parse_value_type).ok_or_else(|| {
                        WatError::new("expected a value type", t.offset())
                    })?;
                    results.push(ty);
                }
            }
            _ => break,
        }
    }
    Ok((FuncType::new(params, results), names))
}

fn parse_limits(items: &[Sexpr], i: &mut usize, offset: usize) -> Result<Limits, WatError> {
    let min_text = items
        .get(*i)
        .and_then(Sexpr::as_atom)
        .ok_or_else(|| WatError::new("expected a minimum size", offset))?;
    let min = num::parse_int(min_text, 32)
        .map_err(|m| WatError::new(m, offset))? as u32;
    *i += 1;
    let max = match items.get(*i).and_then(Sexpr::as_atom) {
        Some(text) if !text.starts_with('$') && num::parse_int(text, 32).is_ok() => {
            *i += 1;
            Some(num::parse_int(text, 32).expect("just checked") as u32)
        }
        _ => None,
    };
    Ok(match max {
        Some(max) => Limits::bounded(min, max),
        None => Limits::at_least(min),
    })
}

fn parse_table_type(items: &[Sexpr], i: &mut usize, offset: usize) -> Result<TableType, WatError> {
    let limits = parse_limits(items, i, offset)?;
    let element = items
        .get(*i)
        .and_then(Sexpr::as_atom)
        .and_then(parse_ref_type)
        .ok_or_else(|| WatError::new("table needs an element type", offset))?;
    *i += 1;
    Ok(TableType { element, limits })
}

fn parse_global_type(expr: Option<&Sexpr>, offset: usize) -> Result<GlobalType, WatError> {
    let expr = expr.ok_or_else(|| WatError::new("global needs a type", offset))?;
    if let Some(atom) = expr.as_atom() {
        let ty = parse_value_type(atom)
            .ok_or_else(|| WatError::new("expected a value type", expr.offset()))?;
        return Ok(GlobalType::immutable(ty));
    }
    if expr.keyword() == Some("mut") {
        let l = expr.as_list().expect("is a list");
        let ty = l
            .get(1)
            .and_then(Sexpr::as_atom)
            .and_then(parse_value_type)
            .ok_or_else(|| WatError::new("(mut ...) needs a value type", expr.offset()))?;
        return Ok(GlobalType::mutable(ty));
    }
    Err(WatError::new("expected a global type", expr.offset()))
}

fn parse_value_type(text: &str) -> Option<ValueType> {
    match text {
        "i32" => Some(ValueType::I32),
        "i64" => Some(ValueType::I64),
        "f32" => Some(ValueType::F32),
        "f64" => Some(ValueType::F64),
        "funcref" => Some(ValueType::FuncRef),
        "externref" => Some(ValueType::ExternRef),
        _ => None,
    }
}

fn parse_ref_type(text: &str) -> Option<ValueType> {
    match text {
        "func" | "funcref" => Some(ValueType::FuncRef),
        "extern" | "externref" => Some(ValueType::ExternRef),
        _ => None,
    }
}

fn is_index_atom(expr: &Sexpr) -> bool {
    expr.as_atom()
        .is_some_and(|t| t.starts_with('$') || t.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

fn write_block_type(w: &mut ByteWriter, bt: BlockType) {
    match bt {
        BlockType::Empty => w.write_u8(0x40),
        BlockType::Value(t) => w.write_u8(t.to_byte()),
        BlockType::Func(i) => w.write_i32_leb(i as i32),
    }
}

fn lookup_opcode(mnemonic: &str) -> Option<Opcode> {
    use std::sync::OnceLock;
    static TABLE: OnceLock<HashMap<&'static str, Opcode>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut m = HashMap::new();
        for &op in Opcode::ALL {
            // `select_t` shares the `select` spelling and is special-cased.
            if op != Opcode::SelectT {
                m.insert(op.mnemonic(), op);
            }
        }
        m
    });
    table.get(mnemonic).copied()
}
