//! Printing a [`Module`] back to canonical WAT text.
//!
//! The printer emits a flat (non-folded) form designed so that re-parsing its
//! output re-encodes **byte-identically**: every type is printed explicitly
//! and referenced by index, every local group becomes its own `(local …)`
//! field, float constants use the exact hex-float / `nan:0x…` literals from
//! [`super::num`], and memory arguments print their alignment only when it
//! differs from the natural one (mirroring the parser's defaults). Custom
//! sections have no text representation and are skipped — except the `name`
//! section, which prints back as the `$identifiers` it was lowered from
//! (function, parameter, and local names), so named modules round-trip
//! byte-identically too. A name section the text format cannot express
//! (names that are not valid WAT ids, duplicates, or names attached to
//! multi-local groups of a binary-built module) is left out wholesale rather
//! than printed partially, keeping the printer's output deterministic.

use super::lexer::escape_string;
use super::num;
use crate::module::{ConstExpr, Module};
use crate::names::NameSection;
use crate::opcode::{ImmediateKind, Opcode};
use crate::reader::BytecodeReader;
use crate::types::{BlockType, ExternalKind, FuncType, GlobalType, Limits, ValueType};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Prints a module as WAT text.
pub fn print_module(m: &Module) -> String {
    let names = expressible_names(m);
    let mut out = String::new();
    match names.as_ref().and_then(|n| n.module.as_deref()) {
        Some(id) => out.push_str(&format!("(module ${id}\n")),
        None => out.push_str("(module\n"),
    }
    for ty in &m.types {
        let _ = writeln!(out, "  (type (func{}))", signature(ty));
    }
    let mut func_imports = 0u32;
    for import in &m.imports {
        let desc = match &import.kind {
            crate::module::ImportKind::Func(t) => {
                let id = names
                    .as_ref()
                    .and_then(|n| n.func_name(func_imports))
                    .map(|n| format!("${n} "))
                    .unwrap_or_default();
                func_imports += 1;
                format!("(func {id}(type {t}))")
            }
            crate::module::ImportKind::Table(t) => {
                format!("(table {} {})", limits(&t.limits), ref_type(t.element))
            }
            crate::module::ImportKind::Memory(t) => format!("(memory {})", limits(&t.limits)),
            crate::module::ImportKind::Global(t) => format!("(global {})", global_type(t)),
        };
        let _ = writeln!(
            out,
            "  (import \"{}\" \"{}\" {desc})",
            escape_string(import.module.as_bytes()),
            escape_string(import.name.as_bytes()),
        );
    }
    for table in &m.tables {
        let _ = writeln!(out, "  (table {} {})", limits(&table.limits), ref_type(table.element));
    }
    for memory in &m.memories {
        let _ = writeln!(out, "  (memory {})", limits(&memory.limits));
    }
    for global in &m.globals {
        let _ = writeln!(
            out,
            "  (global {} {})",
            global_type(&global.ty),
            const_expr(&global.init)
        );
    }
    let num_imported = m.num_imported_funcs();
    for (defined, func) in m.funcs.iter().enumerate() {
        let func_index = num_imported + defined as u32;
        let id = names
            .as_ref()
            .and_then(|n| n.func_name(func_index))
            .map(|n| format!("${n} "))
            .unwrap_or_default();
        let sig = m.types.get(func.type_index as usize);
        let num_params = sig.map(|s| s.params.len() as u32).unwrap_or(0);
        // A named parameter forces the full inline signature (the text format
        // has nowhere else to put the name); the parser checks it against the
        // `(type N)` reference, which holds since it is printed *from* it.
        let any_param_named = names.as_ref().is_some_and(|n| {
            (0..num_params).any(|i| n.local_name(func_index, i).is_some())
        });
        let inline = match (any_param_named, sig) {
            (true, Some(sig)) => {
                named_signature(sig, |i| {
                    names.as_ref().and_then(|n| n.local_name(func_index, i))
                })
            }
            _ => String::new(),
        };
        let _ = writeln!(out, "  (func {id}(type {}){inline}", func.type_index);
        let mut next_local = num_params;
        for &(count, ty) in &func.locals {
            let name = (count == 1)
                .then(|| names.as_ref().and_then(|n| n.local_name(func_index, next_local)))
                .flatten();
            match name {
                Some(n) => {
                    let _ = writeln!(out, "    (local ${n} {})", ty.mnemonic());
                }
                None => {
                    let types = vec![ty.mnemonic(); count as usize].join(" ");
                    let _ = writeln!(out, "    (local {types})");
                }
            }
            next_local += count;
        }
        print_body(&mut out, &func.code);
        out.push_str("  )\n");
    }
    for export in &m.exports {
        let kind = match export.kind {
            ExternalKind::Func => "func",
            ExternalKind::Table => "table",
            ExternalKind::Memory => "memory",
            ExternalKind::Global => "global",
        };
        let _ = writeln!(
            out,
            "  (export \"{}\" ({kind} {}))",
            escape_string(export.name.as_bytes()),
            export.index
        );
    }
    if let Some(start) = m.start {
        let _ = writeln!(out, "  (start {start})");
    }
    for elem in &m.elems {
        let funcs = elem
            .func_indices
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let sep = if funcs.is_empty() { "" } else { " " };
        let _ = writeln!(
            out,
            "  (elem (table {}) (offset {}) func{sep}{funcs})",
            elem.table_index,
            const_expr(&elem.offset)
        );
    }
    for data in &m.data {
        let _ = writeln!(
            out,
            "  (data (memory {}) (offset {}) \"{}\")",
            data.memory_index,
            const_expr(&data.offset),
            escape_string(&data.bytes)
        );
    }
    out.push_str(")\n");
    out
}

/// Disassembles body bytecode into flat instructions, indenting nested
/// structured constructs. The terminating `end` of the body is not printed —
/// the parser re-appends it.
fn print_body(out: &mut String, code: &[u8]) {
    let mut r = BytecodeReader::new(code);
    let mut depth: usize = 0;
    while !r.is_at_end() {
        let Ok(op) = r.read_opcode() else {
            // Unknown byte: not printable as WAT; emit a comment so the
            // output at least lexes (such bodies only arise from invalid
            // modules, which the round-trip tests never print).
            let _ = writeln!(out, "    ;; <unprintable byte>");
            return;
        };
        if op == Opcode::End {
            if depth == 0 {
                // The function body's terminating `end`.
                debug_assert!(r.is_at_end(), "code continues past the body's final end");
                return;
            }
            depth -= 1;
        }
        if op == Opcode::Else {
            let _ = write!(out, "    {}", "  ".repeat(depth.saturating_sub(1)));
        } else {
            let _ = write!(out, "    {}", "  ".repeat(depth));
        }
        print_instruction(out, op, &mut r);
        out.push('\n');
        if op.opens_block() {
            depth += 1;
        }
    }
}

fn print_instruction(out: &mut String, op: Opcode, r: &mut BytecodeReader<'_>) {
    if op == Opcode::SelectT {
        let types = r.read_select_types().unwrap_or_default();
        let list = types.iter().map(|t| t.mnemonic()).collect::<Vec<_>>().join(" ");
        let _ = write!(out, "select (result {list})");
        return;
    }
    let _ = write!(out, "{}", op.mnemonic());
    match op.immediate_kind() {
        ImmediateKind::None => {}
        ImmediateKind::BlockType => {
            if let Ok(bt) = r.read_block_type() {
                match bt {
                    BlockType::Empty => {}
                    BlockType::Value(t) => {
                        let _ = write!(out, " (result {t})");
                    }
                    BlockType::Func(i) => {
                        let _ = write!(out, " (type {i})");
                    }
                }
            }
        }
        ImmediateKind::LabelIndex
        | ImmediateKind::FuncIndex
        | ImmediateKind::LocalIndex
        | ImmediateKind::GlobalIndex => {
            if let Ok(i) = r.read_index() {
                let _ = write!(out, " {i}");
            }
        }
        ImmediateKind::BranchTable => {
            if let Ok((targets, default)) = r.read_branch_table() {
                for t in targets {
                    let _ = write!(out, " {t}");
                }
                let _ = write!(out, " {default}");
            }
        }
        ImmediateKind::CallIndirect => {
            if let Ok((type_index, table_index)) = r.read_call_indirect() {
                if table_index != 0 {
                    let _ = write!(out, " {table_index}");
                }
                let _ = write!(out, " (type {type_index})");
            }
        }
        ImmediateKind::MemArg => {
            if let Ok(memarg) = r.read_memarg() {
                if memarg.offset != 0 {
                    let _ = write!(out, " offset={}", memarg.offset);
                }
                let natural = op.access_width().unwrap_or(1).trailing_zeros();
                if memarg.align != natural {
                    let _ = write!(out, " align={}", 1u32 << memarg.align.min(31));
                }
            }
        }
        ImmediateKind::MemoryIndex => {
            let _ = r.read_memory_index();
        }
        ImmediateKind::I32Const => {
            if let Ok(v) = r.read_i32() {
                let _ = write!(out, " {v}");
            }
        }
        ImmediateKind::I64Const => {
            if let Ok(v) = r.read_i64() {
                let _ = write!(out, " {v}");
            }
        }
        ImmediateKind::F32Const => {
            if let Ok(v) = r.read_f32() {
                let _ = write!(out, " {}", num::print_f32(v.to_bits()));
            }
        }
        ImmediateKind::F64Const => {
            if let Ok(v) = r.read_f64() {
                let _ = write!(out, " {}", num::print_f64(v.to_bits()));
            }
        }
        ImmediateKind::RefType => {
            if let Ok(t) = r.read_ref_type() {
                let _ = write!(out, " {}", ref_heap_type(t));
            }
        }
        ImmediateKind::SelectTyped => unreachable!("handled above"),
    }
}

/// Returns the module's name section iff the WAT text format can express
/// *all* of it (see the module docs). `None` prints a bare, nameless module.
fn expressible_names(m: &Module) -> Option<NameSection> {
    let names = m.name_section();
    if names.is_empty() {
        return None;
    }
    if names.module.as_deref().is_some_and(|n| !valid_id(n)) {
        return None;
    }
    let mut seen = HashSet::new();
    for (index, name) in names.func_names() {
        if index >= m.num_funcs() || !valid_id(name) || !seen.insert(name) {
            return None;
        }
    }
    let num_imported = m.num_imported_funcs();
    for func_index in 0..m.num_funcs() {
        let mut local_seen = HashSet::new();
        for (local_index, name) in names.local_names(func_index) {
            if !valid_id(name) || !local_seen.insert(name) {
                return None;
            }
            // Imported functions have no body to hang local names on.
            let defined = func_index.checked_sub(num_imported)?;
            let func = m.funcs.get(defined as usize)?;
            let sig = m.types.get(func.type_index as usize)?;
            let num_params = sig.params.len() as u32;
            if local_index < num_params {
                continue;
            }
            // A named local must sit in its own singleton `(local …)` group;
            // names inside wider groups (only binary-built modules produce
            // those) are not expressible.
            let mut at = num_params;
            let mut singleton = false;
            for &(count, _) in &func.locals {
                if local_index < at + count {
                    singleton = count == 1;
                    break;
                }
                at += count;
            }
            if !singleton {
                return None;
            }
        }
    }
    Some(names)
}

/// True when `name` is a non-empty sequence of WAT `idchar`s, i.e. printable
/// as `$name` without quoting (which this printer does not emit).
fn valid_id(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| {
            b.is_ascii_alphanumeric()
                || matches!(
                    b,
                    b'!' | b'#'
                        | b'$'
                        | b'%'
                        | b'&'
                        | b'\''
                        | b'*'
                        | b'+'
                        | b'-'
                        | b'.'
                        | b'/'
                        | b':'
                        | b'<'
                        | b'='
                        | b'>'
                        | b'?'
                        | b'@'
                        | b'\\'
                        | b'^'
                        | b'_'
                        | b'`'
                        | b'|'
                        | b'~'
                )
        })
}

/// Prints a full inline signature with `$names` on the named parameters.
/// Runs of unnamed parameters share one `(param …)` group, named ones get
/// singleton groups — exactly the grouping the lowerer reads back.
fn named_signature<'a>(ty: &FuncType, name_of: impl Fn(u32) -> Option<&'a str>) -> String {
    let mut s = String::new();
    let mut i = 0usize;
    while i < ty.params.len() {
        if let Some(name) = name_of(i as u32) {
            let _ = write!(s, " (param ${name} {})", ty.params[i].mnemonic());
            i += 1;
        } else {
            let start = i;
            while i < ty.params.len() && name_of(i as u32).is_none() {
                i += 1;
            }
            let params =
                ty.params[start..i].iter().map(|t| t.mnemonic()).collect::<Vec<_>>().join(" ");
            let _ = write!(s, " (param {params})");
        }
    }
    if !ty.results.is_empty() {
        let results = ty.results.iter().map(|t| t.mnemonic()).collect::<Vec<_>>().join(" ");
        let _ = write!(s, " (result {results})");
    }
    s
}

fn signature(ty: &FuncType) -> String {
    let mut s = String::new();
    if !ty.params.is_empty() {
        let params = ty.params.iter().map(|t| t.mnemonic()).collect::<Vec<_>>().join(" ");
        let _ = write!(s, " (param {params})");
    }
    if !ty.results.is_empty() {
        let results = ty.results.iter().map(|t| t.mnemonic()).collect::<Vec<_>>().join(" ");
        let _ = write!(s, " (result {results})");
    }
    s
}

fn limits(l: &Limits) -> String {
    match l.max {
        Some(max) => format!("{} {max}", l.min),
        None => format!("{}", l.min),
    }
}

fn global_type(g: &GlobalType) -> String {
    if g.mutable {
        format!("(mut {})", g.value_type)
    } else {
        g.value_type.to_string()
    }
}

fn ref_type(t: ValueType) -> &'static str {
    match t {
        ValueType::ExternRef => "externref",
        _ => "funcref",
    }
}

fn ref_heap_type(t: ValueType) -> &'static str {
    match t {
        ValueType::ExternRef => "extern",
        _ => "func",
    }
}

fn const_expr(e: &ConstExpr) -> String {
    match *e {
        ConstExpr::I32(v) => format!("(i32.const {v})"),
        ConstExpr::I64(v) => format!("(i64.const {v})"),
        ConstExpr::F32(v) => format!("(f32.const {})", num::print_f32(v.to_bits())),
        ConstExpr::F64(v) => format!("(f64.const {})", num::print_f64(v.to_bits())),
        ConstExpr::RefNull(t) => format!("(ref.null {})", ref_heap_type(t)),
        ConstExpr::RefFunc(f) => format!("(ref.func {f})"),
        ConstExpr::GlobalGet(g) => format!("(global.get {g})"),
    }
}
