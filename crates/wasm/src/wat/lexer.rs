//! Tokenizer for the WebAssembly text format.
//!
//! Produces parentheses, atoms (keywords, numbers, `$identifiers`), and
//! string literals (as raw bytes, since data segments may contain arbitrary
//! byte escapes). Line comments (`;; …`) and nestable block comments
//! (`(; … ;)`) are skipped.

use super::WatError;

/// One lexical token, tagged with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// A keyword, number, or `$identifier`.
    Atom(String),
    /// A string literal, unescaped to raw bytes.
    Str(Vec<u8>),
}

/// Tokenizes WAT source into `(token, byte_offset)` pairs.
///
/// # Errors
///
/// Returns a [`WatError`] for unterminated strings or comments and malformed
/// escapes.
pub fn tokenize(src: &str) -> Result<Vec<(Token, usize)>, WatError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b';' => {
                if bytes.get(i + 1) == Some(&b';') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    return Err(WatError::new("stray `;` (use `;;` for comments)", i));
                }
            }
            b'(' => {
                if bytes.get(i + 1) == Some(&b';') {
                    i = skip_block_comment(bytes, i)?;
                } else {
                    out.push((Token::LParen, i));
                    i += 1;
                }
            }
            b')' => {
                out.push((Token::RParen, i));
                i += 1;
            }
            b'"' => {
                let (s, next) = lex_string(bytes, i)?;
                out.push((Token::Str(s), i));
                i = next;
            }
            _ => {
                let start = i;
                while i < bytes.len() && !is_atom_end(bytes[i]) {
                    i += 1;
                }
                if i == start {
                    return Err(WatError::new(
                        format!("unexpected byte {:#04x}", bytes[i]),
                        i,
                    ));
                }
                let text = std::str::from_utf8(&bytes[start..i])
                    .map_err(|_| WatError::new("atom is not valid UTF-8", start))?;
                out.push((Token::Atom(text.to_string()), start));
            }
        }
    }
    Ok(out)
}

fn is_atom_end(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | b'\n' | b'(' | b')' | b'"' | b';')
}

fn skip_block_comment(bytes: &[u8], start: usize) -> Result<usize, WatError> {
    // `bytes[start..start+2]` is `(;`. Block comments nest.
    let mut depth = 1;
    let mut i = start + 2;
    while i < bytes.len() {
        if bytes[i] == b'(' && bytes.get(i + 1) == Some(&b';') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b';' && bytes.get(i + 1) == Some(&b')') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return Ok(i);
            }
        } else {
            i += 1;
        }
    }
    Err(WatError::new("unterminated block comment", start))
}

fn lex_string(bytes: &[u8], start: usize) -> Result<(Vec<u8>, usize), WatError> {
    let mut out = Vec::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = *bytes
                    .get(i + 1)
                    .ok_or_else(|| WatError::new("unterminated escape", i))?;
                match esc {
                    b'n' => {
                        out.push(b'\n');
                        i += 2;
                    }
                    b't' => {
                        out.push(b'\t');
                        i += 2;
                    }
                    b'r' => {
                        out.push(b'\r');
                        i += 2;
                    }
                    b'"' | b'\'' | b'\\' => {
                        out.push(esc);
                        i += 2;
                    }
                    b'u' => {
                        // \u{hex} — a Unicode scalar, emitted as UTF-8.
                        if bytes.get(i + 2) != Some(&b'{') {
                            return Err(WatError::new("expected `{` after \\u", i));
                        }
                        let close = bytes[i + 3..]
                            .iter()
                            .position(|&b| b == b'}')
                            .ok_or_else(|| WatError::new("unterminated \\u{...}", i))?;
                        let digits = std::str::from_utf8(&bytes[i + 3..i + 3 + close])
                            .map_err(|_| WatError::new("bad \\u{...} digits", i))?
                            .replace('_', "");
                        let v = u32::from_str_radix(&digits, 16)
                            .map_err(|_| WatError::new("bad \\u{...} digits", i))?;
                        let c = char::from_u32(v)
                            .ok_or_else(|| WatError::new("\\u{...} is not a scalar value", i))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        i += 3 + close + 1;
                    }
                    _ => {
                        // Two hex digits.
                        let hi = hex_digit(esc)
                            .ok_or_else(|| WatError::new("invalid string escape", i))?;
                        let lo = bytes
                            .get(i + 2)
                            .copied()
                            .and_then(hex_digit)
                            .ok_or_else(|| WatError::new("invalid hex escape", i))?;
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    Err(WatError::new("unterminated string literal", start))
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Escapes raw bytes into a WAT string literal body (without the quotes).
///
/// Printable ASCII passes through; quotes, backslashes, and everything else
/// become `\hh` (or the named escapes), so the printer's output re-lexes to
/// exactly the same bytes.
pub fn escape_string(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len());
    for &b in bytes {
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\r' => out.push_str("\\r"),
            0x20..=0x7E => out.push(b as char),
            _ => out.push_str(&format!("\\{b:02x}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            atoms("(module $m)"),
            vec![
                Token::LParen,
                Token::Atom("module".into()),
                Token::Atom("$m".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            atoms(";; line\n(a (; nested (; inner ;) ;) b)"),
            vec![
                Token::LParen,
                Token::Atom("a".into()),
                Token::Atom("b".into()),
                Token::RParen,
            ]
        );
        assert!(tokenize("(; unterminated").is_err());
    }

    #[test]
    fn strings_unescape_to_bytes() {
        assert_eq!(
            atoms(r#""a\n\t\"\\\00\ff""#),
            vec![Token::Str(vec![b'a', b'\n', b'\t', b'"', b'\\', 0x00, 0xFF])]
        );
        assert_eq!(atoms(r#""\u{1F600}""#), vec![Token::Str("😀".as_bytes().to_vec())]);
        assert!(tokenize("\"open").is_err());
        assert!(tokenize(r#""\zz""#).is_err());
    }

    #[test]
    fn escape_string_roundtrip() {
        let cases: &[&[u8]] = &[b"hello", b"a\"b\\c", &[0, 1, 0xFF, b'\n'], b""];
        for &case in cases {
            let escaped = escape_string(case);
            let src = format!("\"{escaped}\"");
            assert_eq!(atoms(&src), vec![Token::Str(case.to_vec())], "{escaped}");
        }
    }

    #[test]
    fn numbers_and_offsets() {
        let toks = tokenize("i32.const -0x1_0 offset=4").unwrap();
        assert_eq!(toks[0].0, Token::Atom("i32.const".into()));
        assert_eq!(toks[1].0, Token::Atom("-0x1_0".into()));
        assert_eq!(toks[2].0, Token::Atom("offset=4".into()));
        assert_eq!(toks[2].1, 17);
    }
}
