//! Exact parsing and printing of WAT numeric literals.
//!
//! Integers accept sign, decimal or `0x` hex, and `_` separators, with the
//! spec's "signed or unsigned interpretation" range rule. Floats accept
//! decimal (delegated to Rust's correctly-rounded parser), hex-float
//! (`0x1.8p+1`, parsed exactly with round-to-nearest-even), `inf`, `nan`, and
//! `nan:0xPAYLOAD`. The printers emit hex-float / `nan:0x…` forms whose
//! re-parse reproduces the original bit pattern exactly — the property the
//! WAT round-trip tests rely on.

/// Parses an integer literal into its 64-bit two's-complement bit pattern,
/// checking the range for `bits`-wide (32 or 64) values: the value must fit
/// either the signed or the unsigned interpretation.
pub fn parse_int(text: &str, bits: u32) -> Result<u64, String> {
    let (negative, rest) = match text.as_bytes().first() {
        Some(b'-') => (true, &text[1..]),
        Some(b'+') => (false, &text[1..]),
        _ => (false, text),
    };
    let cleaned = rest.replace('_', "");
    let (digits, radix) = match cleaned.strip_prefix("0x").or_else(|| cleaned.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => (cleaned.as_str(), 10),
    };
    if digits.is_empty() {
        return Err(format!("empty integer literal `{text}`"));
    }
    let magnitude = u128::from_str_radix(digits, radix)
        .map_err(|_| format!("invalid integer literal `{text}`"))?;
    let (smin, umax): (u128, u128) = match bits {
        32 => (1 << 31, u32::MAX as u128),
        64 => (1 << 63, u64::MAX as u128),
        _ => unreachable!("only 32- and 64-bit integers exist"),
    };
    if negative {
        if magnitude > smin {
            return Err(format!("integer literal `{text}` out of range"));
        }
        Ok((magnitude as u64).wrapping_neg() & mask(bits))
    } else {
        if magnitude > umax {
            return Err(format!("integer literal `{text}` out of range"));
        }
        Ok(magnitude as u64)
    }
}

fn mask(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Parses an `f32` literal into its bit pattern.
pub fn parse_f32(text: &str) -> Result<u32, String> {
    parse_float(text, 24, 127).map(|bits| bits as u32)
}

/// Parses an `f64` literal into its bit pattern.
pub fn parse_f64(text: &str) -> Result<u64, String> {
    parse_float(text, 53, 1023)
}

/// Parses a float literal into a `sig_bits`-significand IEEE bit pattern
/// (24/127 for f32, 53/1023 for f64), returned right-aligned in a u64.
fn parse_float(text: &str, sig_bits: u32, bias: i32) -> Result<u64, String> {
    let total_bits = if sig_bits == 24 { 32 } else { 64 };
    let sign_bit = 1u64 << (total_bits - 1);
    let frac_bits = sig_bits - 1;
    let exp_all_ones = ((1u64 << (total_bits - sig_bits)) - 1) << frac_bits;

    let (negative, rest) = match text.as_bytes().first() {
        Some(b'-') => (true, &text[1..]),
        Some(b'+') => (false, &text[1..]),
        _ => (false, text),
    };
    let sign = if negative { sign_bit } else { 0 };
    let cleaned = rest.replace('_', "");

    if cleaned == "inf" {
        return Ok(sign | exp_all_ones);
    }
    if cleaned == "nan" {
        // Canonical NaN: quiet bit set, rest of the payload zero.
        return Ok(sign | exp_all_ones | (1u64 << (frac_bits - 1)));
    }
    if let Some(payload) = cleaned.strip_prefix("nan:0x").or_else(|| cleaned.strip_prefix("nan:0X"))
    {
        let p = u64::from_str_radix(payload, 16)
            .map_err(|_| format!("invalid nan payload `{text}`"))?;
        if p == 0 || p >> frac_bits != 0 {
            return Err(format!("nan payload `{text}` out of range"));
        }
        return Ok(sign | exp_all_ones | p);
    }
    if let Some(hex) = cleaned.strip_prefix("0x").or_else(|| cleaned.strip_prefix("0X")) {
        return parse_hex_float(hex, sig_bits, bias, total_bits).map(|m| sign | m);
    }

    // Decimal: Rust's parser is correctly rounded. Normalize `1.` / `.5`
    // endings it rejects.
    let mut dec = cleaned.clone();
    if dec.ends_with('.') {
        dec.push('0');
    }
    if dec.starts_with('.') {
        dec.insert(0, '0');
    }
    let dec = dec.replace(".e", ".0e").replace(".E", ".0E");
    if sig_bits == 24 {
        let v: f32 = dec
            .parse()
            .map_err(|_| format!("invalid float literal `{text}`"))?;
        if v.is_nan() || (v.is_infinite() && !cleaned.contains("inf")) {
            return Err(format!("float literal `{text}` out of range"));
        }
        Ok(sign | v.abs().to_bits() as u64)
    } else {
        let v: f64 = dec
            .parse()
            .map_err(|_| format!("invalid float literal `{text}`"))?;
        if v.is_nan() || (v.is_infinite() && !cleaned.contains("inf")) {
            return Err(format!("float literal `{text}` out of range"));
        }
        Ok(sign | v.abs().to_bits())
    }
}

/// Exact hex-float parsing: `hex` is the part after `0x`, in the form
/// `H*.H* [pP][+-]D+`. Rounds to nearest, ties to even.
fn parse_hex_float(hex: &str, sig_bits: u32, bias: i32, total_bits: u32) -> Result<u64, String> {
    let frac_bits = sig_bits - 1;
    let exp_all_ones = ((1u64 << (total_bits - sig_bits)) - 1) << frac_bits;

    // Split the binary exponent suffix.
    let (mantissa_part, exp_part) = match hex.find(['p', 'P']) {
        Some(i) => (&hex[..i], Some(&hex[i + 1..])),
        None => (hex, None),
    };
    let p: i64 = match exp_part {
        Some(e) => e
            .parse()
            .map_err(|_| format!("invalid hex-float exponent `{hex}`"))?,
        None => 0,
    };
    let (int_part, frac_part) = match mantissa_part.find('.') {
        Some(i) => (&mantissa_part[..i], &mantissa_part[i + 1..]),
        None => (mantissa_part, ""),
    };
    if int_part.is_empty() && frac_part.is_empty() {
        return Err(format!("hex float `{hex}` has no digits"));
    }

    // Accumulate the significand into a u128, tracking a binary exponent for
    // digits that no longer fit and a sticky bit for truncated precision.
    let mut m: u128 = 0;
    let mut e2: i64 = p;
    let mut sticky = false;
    for &(digits, fractional) in &[(int_part, false), (frac_part, true)] {
        for ch in digits.chars() {
            let d = ch
                .to_digit(16)
                .ok_or_else(|| format!("invalid hex digit `{ch}`"))? as u128;
            if m >> 120 == 0 {
                m = m * 16 + d;
                if fractional {
                    e2 -= 4;
                }
            } else {
                // Digit does not fit: integer digits scale the exponent,
                // fractional digits only affect the sticky bit.
                if !fractional {
                    e2 += 4;
                }
                sticky |= d != 0;
            }
        }
    }
    if m == 0 {
        return Ok(0);
    }

    // Position of the most significant bit and the value's unbiased exponent.
    let bl = 128 - m.leading_zeros() as i64;
    let exp = bl - 1 + e2;
    if exp > bias as i64 {
        return Err("hex float overflows to infinity".to_string());
    }

    // Number of significand bits representable at this magnitude (subnormals
    // lose precision below the minimum exponent).
    let width = if exp >= 1 - bias as i64 {
        sig_bits as i64
    } else {
        sig_bits as i64 - ((1 - bias as i64) - exp)
    };
    if width <= 0 {
        // Smaller than half the minimum subnormal rounds to zero; exactly
        // half with anything extra rounds up to the minimum subnormal.
        let rounds_up = width == 0 && (m != 1 << (bl - 1) || sticky);
        return Ok(if rounds_up { 1 } else { 0 });
    }

    let drop = bl - width;
    let mut kept = if drop > 0 {
        let kept = (m >> drop) as u64;
        let round_bit = (m >> (drop - 1)) & 1 == 1;
        let lower_sticky = sticky || (m & ((1u128 << (drop - 1)) - 1)) != 0;
        let round_up = round_bit && (lower_sticky || kept & 1 == 1);
        kept + round_up as u64
    } else {
        (m as u64) << (-drop)
    };
    let _ = exp_all_ones;

    if exp < 1 - bias as i64 {
        // Subnormal domain: the bits field is the significand itself. A
        // rounding carry out of the top (`kept == 1 << width`) lands exactly
        // on the next representable value — including the minimum normal
        // when `width == frac_bits` — by IEEE bit-pattern continuity.
        debug_assert!(kept >> sig_bits == 0);
        return Ok(kept);
    }

    // Normal domain: `width == sig_bits`, renormalize a rounding carry.
    let mut exp = exp;
    if kept >> sig_bits != 0 {
        kept >>= 1;
        exp += 1;
        if exp > bias as i64 {
            return Err("hex float overflows to infinity".to_string());
        }
    }
    debug_assert!(kept >> frac_bits == 1);
    let biased = (exp + bias as i64) as u64;
    Ok((biased << frac_bits) | (kept & ((1u64 << frac_bits) - 1)))
}

/// Prints an `f32` bit pattern as a literal that parses back bit-exactly.
pub fn print_f32(bits: u32) -> String {
    print_float(bits as u64, 24, 127, 32)
}

/// Prints an `f64` bit pattern as a literal that parses back bit-exactly.
pub fn print_f64(bits: u64) -> String {
    print_float(bits, 53, 1023, 64)
}

fn print_float(bits: u64, sig_bits: u32, bias: i32, total_bits: u32) -> String {
    let frac_bits = sig_bits - 1;
    let sign = if bits >> (total_bits - 1) & 1 == 1 { "-" } else { "" };
    let exp_field = (bits >> frac_bits) & ((1u64 << (total_bits - sig_bits)) - 1);
    let frac = bits & ((1u64 << frac_bits) - 1);
    let exp_max = (1u64 << (total_bits - sig_bits)) - 1;

    if exp_field == exp_max {
        if frac == 0 {
            return format!("{sign}inf");
        }
        if frac == 1 << (frac_bits - 1) {
            return format!("{sign}nan");
        }
        return format!("{sign}nan:0x{frac:x}");
    }
    if exp_field == 0 && frac == 0 {
        return format!("{sign}0x0p+0");
    }

    // Hex digits of the fraction: pad the fraction to a whole number of
    // nibbles (f64: 52 bits = 13 digits; f32: 23 bits -> shift to 24 = 6).
    let nibbles = frac_bits.div_ceil(4);
    let shifted = frac << (nibbles * 4 - frac_bits);
    let mut digits = format!("{shifted:0width$x}", width = nibbles as usize);
    while digits.ends_with('0') {
        digits.pop();
    }

    let (lead, exp) = if exp_field == 0 {
        ("0", 1 - bias) // subnormal: 0.fraction × 2^(1−bias)
    } else {
        ("1", exp_field as i32 - bias)
    };
    let frac_str = if digits.is_empty() {
        String::new()
    } else {
        format!(".{digits}")
    };
    format!("{sign}0x{lead}{frac_str}p{exp:+}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_parse_with_sign_and_radix() {
        assert_eq!(parse_int("42", 32).unwrap(), 42);
        assert_eq!(parse_int("-1", 32).unwrap(), 0xFFFF_FFFF);
        assert_eq!(parse_int("0xff", 32).unwrap(), 255);
        assert_eq!(parse_int("-0x80000000", 32).unwrap(), 0x8000_0000);
        assert_eq!(parse_int("4294967295", 32).unwrap(), u32::MAX as u64);
        assert_eq!(parse_int("1_000", 32).unwrap(), 1000);
        assert_eq!(parse_int("-9223372036854775808", 64).unwrap(), 1 << 63);
        assert_eq!(parse_int("18446744073709551615", 64).unwrap(), u64::MAX);
        assert!(parse_int("4294967296", 32).is_err());
        assert!(parse_int("-2147483649", 32).is_err());
        assert!(parse_int("xyz", 32).is_err());
        assert!(parse_int("", 32).is_err());
    }

    #[test]
    fn float_special_values() {
        assert_eq!(parse_f32("inf").unwrap(), f32::INFINITY.to_bits());
        assert_eq!(parse_f32("-inf").unwrap(), f32::NEG_INFINITY.to_bits());
        assert_eq!(parse_f32("nan").unwrap(), 0x7FC0_0000);
        assert_eq!(parse_f32("-nan").unwrap(), 0xFFC0_0000);
        assert_eq!(parse_f32("nan:0x200000").unwrap(), 0x7FA0_0000);
        assert_eq!(parse_f64("nan").unwrap(), 0x7FF8_0000_0000_0000);
        assert!(parse_f32("nan:0x0").is_err());
        assert!(parse_f32("nan:0x800000").is_err());
    }

    #[test]
    fn decimal_floats_match_rust_parsing() {
        assert_eq!(parse_f64("1.5").unwrap(), 1.5f64.to_bits());
        assert_eq!(parse_f64("-0.1").unwrap(), (-0.1f64).to_bits());
        assert_eq!(parse_f64("1e10").unwrap(), 1e10f64.to_bits());
        assert_eq!(parse_f64("-0").unwrap(), (-0.0f64).to_bits());
        assert_eq!(parse_f32("3.25").unwrap(), 3.25f32.to_bits());
        assert_eq!(parse_f64("2.").unwrap(), 2.0f64.to_bits());
    }

    #[test]
    fn hex_floats_parse_exactly() {
        assert_eq!(parse_f64("0x1p+0").unwrap(), 1.0f64.to_bits());
        assert_eq!(parse_f64("0x1.8p+1").unwrap(), 3.0f64.to_bits());
        assert_eq!(parse_f64("0x1.fp3").unwrap(), 15.5f64.to_bits());
        assert_eq!(parse_f64("-0x1p-1").unwrap(), (-0.5f64).to_bits());
        assert_eq!(parse_f64("0x0p+0").unwrap(), 0);
        assert_eq!(parse_f64("0x.8p1").unwrap(), 1.0f64.to_bits());
        // Max finite and min subnormal.
        assert_eq!(
            parse_f64("0x1.fffffffffffffp+1023").unwrap(),
            f64::MAX.to_bits()
        );
        assert_eq!(parse_f64("0x1p-1074").unwrap(), 1);
        assert_eq!(parse_f32("0x1p-149").unwrap(), 1);
        // Overflow and rounding.
        assert!(parse_f64("0x1p+1024").is_err());
        assert_eq!(parse_f64("0x1p-1076").unwrap(), 0, "underflow to zero");
        assert_eq!(
            parse_f64("0x1.00000000000008p+0").unwrap(),
            1.0f64.to_bits(),
            "round to even"
        );
        assert_eq!(
            parse_f64("0x1.000000000000081p+0").unwrap(),
            1.0f64.to_bits() + 1,
            "sticky bit rounds up"
        );
        assert_eq!(
            parse_f64("0x1.00000000000018p+0").unwrap(),
            1.0f64.to_bits() + 2,
            "ties to even rounds odd up"
        );
        // Subnormal boundary: the max subnormal is exact, and rounding up
        // from just below the min normal carries into the min normal.
        assert_eq!(
            parse_f64("0x1.ffffffffffffep-1023").unwrap(),
            0xF_FFFF_FFFF_FFFF,
            "max subnormal"
        );
        assert_eq!(
            parse_f64("0x1.fffffffffffffp-1023").unwrap(),
            0x0010_0000_0000_0000,
            "carry promotes to the min normal"
        );
    }

    #[test]
    fn print_parse_roundtrip_f64() {
        let cases = [
            0u64,
            (-0.0f64).to_bits(),
            1.0f64.to_bits(),
            (-1.5f64).to_bits(),
            f64::MAX.to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            1,               // min subnormal
            0xF_FFFF_FFFF_FFFF, // max subnormal
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            0x7FF8_0000_0000_0000, // canonical nan
            0x7FF8_0000_0000_0001, // nan with payload
            0xFFF0_0000_0000_0001, // -nan with small payload
            std::f64::consts::PI.to_bits(),
            0x0010_0000_0000_0001,
        ];
        for bits in cases {
            let text = print_f64(bits);
            assert_eq!(parse_f64(&text).unwrap(), bits, "{text}");
        }
    }

    #[test]
    fn print_parse_roundtrip_f32() {
        let cases = [
            0u32,
            (-0.0f32).to_bits(),
            1.0f32.to_bits(),
            0.1f32.to_bits(),
            f32::MAX.to_bits(),
            f32::MIN_POSITIVE.to_bits(),
            1,
            0x7F_FFFF,
            f32::INFINITY.to_bits(),
            0x7FC0_0000,
            0x7F80_0001,
            0xFF80_0001,
        ];
        for bits in cases {
            let text = print_f32(bits);
            assert_eq!(parse_f32(&text).unwrap(), bits, "{text}");
        }
    }

    #[test]
    fn exhaustive_f32_print_parse_roundtrip_samples() {
        // A dense deterministic sweep over f32 bit patterns.
        let mut bits = 0u32;
        while bits < 0xFF80_0000 {
            let text = print_f32(bits);
            assert_eq!(parse_f32(&text).unwrap(), bits, "bits {bits:#x} -> {text}");
            bits = bits.wrapping_add(0x01F4_3219);
        }
    }
}
