//! The WebAssembly text format (WAT) frontend and printer.
//!
//! This module gives the engine a second, human-writable frontend next to the
//! binary decoder: `.wat` source is lexed ([`lexer`]), parsed into
//! s-expressions ([`sexpr`]), and lowered ([`lower`]) into exactly the same
//! in-memory [`Module`] the binary decoder produces, so everything downstream
//! (validator, interpreter, compilers, encoder) is exercised identically from
//! either format. The inverse direction — [`print::print_module`] — emits
//! canonical flat WAT whose re-parse re-encodes byte-identically, which is the
//! round-trip property the conformance fuzzer checks for every generated
//! module.
//!
//! Supported surface: the full opcode/type set the validator accepts
//! (including `br_table`, `call_indirect`, typed `select`, reference
//! instructions, and multi-value signatures), symbolic `$names` for every
//! index space (types, functions, tables, memories, globals, locals, labels),
//! folded instruction expressions, inline imports/exports, and the standard
//! literal forms for integers (decimal/hex, underscores) and floats (decimal,
//! hex-float, `inf`, `nan`, `nan:0x…`) with exact, bit-preserving semantics
//! ([`num`]).
//!
//! # Examples
//!
//! Parse a module, validate it, and round-trip it through the printer:
//!
//! ```
//! let module = wasm::wat::parse_module(
//!     r#"(module
//!          (func (export "add") (param i32 i32) (result i32)
//!            local.get 0
//!            local.get 1
//!            i32.add))"#,
//! ).unwrap();
//! wasm::validate::validate(&module).unwrap();
//! assert_eq!(module.exported_func("add"), Some(0));
//!
//! // Round trip: print and re-parse, encodings are byte-identical.
//! let text = wasm::wat::print::print_module(&module);
//! let reparsed = wasm::wat::parse_module(&text).unwrap();
//! assert_eq!(wasm::encode::encode(&module), wasm::encode::encode(&reparsed));
//! ```

pub mod lexer;
pub mod lower;
pub mod num;
pub mod print;
pub mod sexpr;

use crate::module::Module;
use std::fmt;

/// An error produced while lexing, parsing, or lowering WAT text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the source text where the error was detected.
    pub offset: usize,
}

impl WatError {
    /// Creates an error at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> WatError {
        WatError {
            message: message.into(),
            offset,
        }
    }

    /// Renders the error with a `line:column` location computed from `src`.
    pub fn describe(&self, src: &str) -> String {
        let upto = &src[..self.offset.min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        format!("{}:{}: {}", line, col, self.message)
    }
}

impl fmt::Display for WatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wat error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WatError {}

/// Parses WAT source containing a single `(module ...)` into a [`Module`].
///
/// A bare sequence of module fields (without the `(module)` wrapper) is also
/// accepted, matching the text-format abbreviation.
///
/// # Errors
///
/// Returns a [`WatError`] if the text fails to lex, parse, or lower.
pub fn parse_module(src: &str) -> Result<Module, WatError> {
    let exprs = sexpr::parse_all(src)?;
    match exprs.as_slice() {
        [e] if e.keyword() == Some("module") => lower::module_from_sexpr(e),
        [] => Err(WatError::new("empty input", 0)),
        _ => {
            // Bare field sequence: wrap in an implicit module.
            let offset = exprs[0].offset();
            let wrapped = sexpr::Sexpr::List {
                items: std::iter::once(sexpr::Sexpr::Atom {
                    text: "module".to_string(),
                    offset,
                })
                .chain(exprs)
                .collect(),
                offset,
            };
            lower::module_from_sexpr(&wrapped)
        }
    }
}
