//! Byte and bytecode readers.
//!
//! [`ByteReader`] is a cursor over raw bytes used by the module decoder.
//! [`BytecodeReader`] layers instruction-aware reads on top of it and is the
//! iterator that the validator, the in-place interpreter, and the single-pass
//! compiler all use to walk a function body one instruction at a time.

use crate::leb::{self, LebError};
use crate::opcode::{ImmediateKind, Opcode};
use crate::types::{BlockType, ValueType};
use std::fmt;

/// Errors produced while reading bytes or bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The input ended unexpectedly.
    UnexpectedEnd {
        /// Offset at which more bytes were needed.
        offset: usize,
    },
    /// A LEB128 value was malformed.
    BadLeb {
        /// Offset of the value.
        offset: usize,
        /// The underlying LEB error.
        error: LebError,
    },
    /// An unknown opcode byte was encountered.
    UnknownOpcode {
        /// Offset of the opcode byte.
        offset: usize,
        /// The offending byte.
        byte: u8,
    },
    /// An invalid value type or block type byte was encountered.
    BadType {
        /// Offset of the type byte.
        offset: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::UnexpectedEnd { offset } => {
                write!(f, "unexpected end of input at offset {offset}")
            }
            ReadError::BadLeb { offset, error } => {
                write!(f, "malformed LEB128 at offset {offset}: {error}")
            }
            ReadError::UnknownOpcode { offset, byte } => {
                write!(f, "unknown opcode {byte:#04x} at offset {offset}")
            }
            ReadError::BadType { offset, byte } => {
                write!(f, "invalid type byte {byte:#04x} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// A memory access immediate: alignment exponent and byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemArg {
    /// log2 of the access alignment hint.
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

/// A cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data` starting at offset zero.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// Creates a reader starting at `pos`.
    pub fn at(data: &'a [u8], pos: usize) -> ByteReader<'a> {
        ByteReader { data, pos }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Sets the current offset.
    pub fn set_pos(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// The underlying data.
    pub fn data(&self) -> &'a [u8] {
        self.data
    }

    /// Remaining bytes from the current position.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// True when all bytes have been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, ReadError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or(ReadError::UnexpectedEnd { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` bytes as a slice.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.remaining() < n {
            return Err(ReadError::UnexpectedEnd { offset: self.pos });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a 32-bit little-endian value.
    pub fn read_u32_le(&mut self) -> Result<u32, ReadError> {
        let bytes = self.read_bytes(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a 64-bit little-endian value.
    pub fn read_u64_le(&mut self) -> Result<u64, ReadError> {
        let bytes = self.read_bytes(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an unsigned LEB128 value with at most 32 bits.
    pub fn read_u32_leb(&mut self) -> Result<u32, ReadError> {
        let (v, n) = leb::read_unsigned(self.data, self.pos, 32).map_err(|error| {
            map_leb_error(error, self.data, self.pos)
        })?;
        self.pos += n;
        Ok(v as u32)
    }

    /// Reads an unsigned LEB128 value with at most 64 bits.
    pub fn read_u64_leb(&mut self) -> Result<u64, ReadError> {
        let (v, n) = leb::read_unsigned(self.data, self.pos, 64).map_err(|error| {
            map_leb_error(error, self.data, self.pos)
        })?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a signed LEB128 value with at most 32 bits.
    pub fn read_i32_leb(&mut self) -> Result<i32, ReadError> {
        let (v, n) = leb::read_signed(self.data, self.pos, 32).map_err(|error| {
            map_leb_error(error, self.data, self.pos)
        })?;
        self.pos += n;
        Ok(v as i32)
    }

    /// Reads a signed LEB128 value with at most 64 bits.
    pub fn read_i64_leb(&mut self) -> Result<i64, ReadError> {
        let (v, n) = leb::read_signed(self.data, self.pos, 64).map_err(|error| {
            map_leb_error(error, self.data, self.pos)
        })?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a UTF-8 name prefixed by its length.
    pub fn read_name(&mut self) -> Result<String, ReadError> {
        let len = self.read_u32_leb()? as usize;
        let offset = self.pos;
        let bytes = self.read_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ReadError::BadType { offset, byte: 0 })
    }

    /// Reads a value type byte.
    pub fn read_value_type(&mut self) -> Result<ValueType, ReadError> {
        let offset = self.pos;
        let b = self.read_u8()?;
        ValueType::from_byte(b).ok_or(ReadError::BadType { offset, byte: b })
    }
}

fn map_leb_error(error: LebError, data: &[u8], offset: usize) -> ReadError {
    match error {
        LebError::Truncated => ReadError::UnexpectedEnd {
            offset: data.len(),
        },
        other => ReadError::BadLeb {
            offset,
            error: other,
        },
    }
}

/// An instruction-aware reader over a function body's code bytes.
///
/// Offsets reported by this reader are *bytecode offsets* relative to the
/// start of the code (after local declarations), which is exactly the program
/// counter notion the paper's instrumentation and tier transfer use.
#[derive(Debug, Clone)]
pub struct BytecodeReader<'a> {
    inner: ByteReader<'a>,
}

impl<'a> BytecodeReader<'a> {
    /// Creates a bytecode reader over `code`.
    pub fn new(code: &'a [u8]) -> BytecodeReader<'a> {
        BytecodeReader {
            inner: ByteReader::new(code),
        }
    }

    /// The current bytecode offset.
    pub fn pc(&self) -> usize {
        self.inner.pos()
    }

    /// Repositions the reader.
    pub fn set_pc(&mut self, pc: usize) {
        self.inner.set_pos(pc);
    }

    /// True when the whole body has been read.
    pub fn is_at_end(&self) -> bool {
        self.inner.is_at_end()
    }

    /// The underlying code bytes.
    pub fn code(&self) -> &'a [u8] {
        self.inner.data()
    }

    /// Reads the next opcode byte.
    pub fn read_opcode(&mut self) -> Result<Opcode, ReadError> {
        let offset = self.inner.pos();
        let b = self.inner.read_u8()?;
        Opcode::from_byte(b).ok_or(ReadError::UnknownOpcode { offset, byte: b })
    }

    /// Peeks the next opcode without advancing. Returns `None` at the end of
    /// the body or on an unknown byte.
    pub fn peek_opcode(&self) -> Option<Opcode> {
        self.inner
            .data()
            .get(self.inner.pos())
            .copied()
            .and_then(Opcode::from_byte)
    }

    /// Reads an unsigned 32-bit LEB index immediate.
    pub fn read_index(&mut self) -> Result<u32, ReadError> {
        self.inner.read_u32_leb()
    }

    /// Reads an `i32.const` immediate.
    pub fn read_i32(&mut self) -> Result<i32, ReadError> {
        self.inner.read_i32_leb()
    }

    /// Reads an `i64.const` immediate.
    pub fn read_i64(&mut self) -> Result<i64, ReadError> {
        self.inner.read_i64_leb()
    }

    /// Reads an `f32.const` immediate.
    pub fn read_f32(&mut self) -> Result<f32, ReadError> {
        Ok(f32::from_bits(self.inner.read_u32_le()?))
    }

    /// Reads an `f64.const` immediate.
    pub fn read_f64(&mut self) -> Result<f64, ReadError> {
        Ok(f64::from_bits(self.inner.read_u64_le()?))
    }

    /// Reads a block type immediate.
    pub fn read_block_type(&mut self) -> Result<BlockType, ReadError> {
        let offset = self.inner.pos();
        let b = *self
            .inner
            .data()
            .get(offset)
            .ok_or(ReadError::UnexpectedEnd { offset })?;
        if b == 0x40 {
            self.inner.set_pos(offset + 1);
            return Ok(BlockType::Empty);
        }
        if let Some(vt) = ValueType::from_byte(b) {
            self.inner.set_pos(offset + 1);
            return Ok(BlockType::Value(vt));
        }
        // Otherwise it is a signed LEB type index (must be non-negative).
        let idx = self.inner.read_i32_leb()?;
        if idx < 0 {
            return Err(ReadError::BadType { offset, byte: b });
        }
        Ok(BlockType::Func(idx as u32))
    }

    /// Reads a memory argument (alignment + offset).
    pub fn read_memarg(&mut self) -> Result<MemArg, ReadError> {
        let align = self.inner.read_u32_leb()?;
        let offset = self.inner.read_u32_leb()?;
        Ok(MemArg { align, offset })
    }

    /// Reads a `br_table` immediate: the list of targets plus the default.
    pub fn read_branch_table(&mut self) -> Result<(Vec<u32>, u32), ReadError> {
        let count = self.inner.read_u32_leb()?;
        let mut targets = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            targets.push(self.inner.read_u32_leb()?);
        }
        let default = self.inner.read_u32_leb()?;
        Ok((targets, default))
    }

    /// Reads the reference type immediate of `ref.null`.
    pub fn read_ref_type(&mut self) -> Result<ValueType, ReadError> {
        let offset = self.inner.pos();
        let b = self.inner.read_u8()?;
        match ValueType::from_byte(b) {
            Some(t) if t.is_reference() => Ok(t),
            _ => Err(ReadError::BadType { offset, byte: b }),
        }
    }

    /// Reads the `call_indirect` immediate: type index and table index.
    pub fn read_call_indirect(&mut self) -> Result<(u32, u32), ReadError> {
        let type_index = self.inner.read_u32_leb()?;
        let table_index = self.inner.read_u32_leb()?;
        Ok((type_index, table_index))
    }

    /// Skips over the immediates of `op`, leaving the reader at the next
    /// opcode. This is how clients iterate instructions they do not care
    /// about (e.g. probe insertion scanning for branches).
    pub fn skip_immediates(&mut self, op: Opcode) -> Result<(), ReadError> {
        match op.immediate_kind() {
            ImmediateKind::None => {}
            ImmediateKind::BlockType => {
                self.read_block_type()?;
            }
            ImmediateKind::LabelIndex
            | ImmediateKind::FuncIndex
            | ImmediateKind::LocalIndex
            | ImmediateKind::GlobalIndex => {
                self.read_index()?;
            }
            ImmediateKind::BranchTable => {
                self.read_branch_table()?;
            }
            ImmediateKind::CallIndirect => {
                self.read_call_indirect()?;
            }
            ImmediateKind::MemArg => {
                self.read_memarg()?;
            }
            ImmediateKind::MemoryIndex => {
                self.inner.read_u8()?;
            }
            ImmediateKind::I32Const => {
                self.read_i32()?;
            }
            ImmediateKind::I64Const => {
                self.read_i64()?;
            }
            ImmediateKind::F32Const => {
                self.read_f32()?;
            }
            ImmediateKind::F64Const => {
                self.read_f64()?;
            }
            ImmediateKind::RefType => {
                self.read_ref_type()?;
            }
            ImmediateKind::SelectTyped => {
                let count = self.read_index()?;
                for _ in 0..count {
                    self.inner.read_value_type()?;
                }
            }
        }
        Ok(())
    }

    /// Reads a reserved single-byte memory index (must currently be zero).
    pub fn read_memory_index(&mut self) -> Result<u8, ReadError> {
        self.inner.read_u8()
    }

    /// Reads the typed-select immediate (list of result types).
    pub fn read_select_types(&mut self) -> Result<Vec<ValueType>, ReadError> {
        let count = self.read_index()?;
        let mut types = Vec::with_capacity(count.min(16) as usize);
        for _ in 0..count {
            types.push(self.inner.read_value_type()?);
        }
        Ok(types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leb;

    #[test]
    fn byte_reader_basics() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        let mut r = ByteReader::new(&data);
        assert_eq!(r.read_u8().unwrap(), 1);
        assert_eq!(r.read_u32_le().unwrap(), u32::from_le_bytes([2, 3, 4, 5]));
        assert_eq!(r.pos(), 5);
        assert_eq!(r.remaining(), 7);
        assert!(!r.is_at_end());
        let rest = r.read_bytes(7).unwrap();
        assert_eq!(rest, &[6, 7, 8, 9, 10, 11, 12]);
        assert!(r.is_at_end());
        assert!(matches!(r.read_u8(), Err(ReadError::UnexpectedEnd { .. })));
    }

    #[test]
    fn byte_reader_leb() {
        let mut data = Vec::new();
        leb::write_unsigned(&mut data, 624485);
        leb::write_signed(&mut data, -123456);
        leb::write_unsigned(&mut data, u64::MAX);
        let mut r = ByteReader::new(&data);
        assert_eq!(r.read_u32_leb().unwrap(), 624485);
        assert_eq!(r.read_i32_leb().unwrap(), -123456);
        assert_eq!(r.read_u64_leb().unwrap(), u64::MAX);
        assert!(r.is_at_end());
    }

    #[test]
    fn read_name_roundtrip() {
        let mut data = Vec::new();
        leb::write_unsigned(&mut data, 5);
        data.extend_from_slice(b"hello");
        let mut r = ByteReader::new(&data);
        assert_eq!(r.read_name().unwrap(), "hello");
    }

    #[test]
    fn bytecode_reader_opcode_and_immediates() {
        // i32.const 42 ; local.get 3 ; i32.add ; end
        let mut code = vec![Opcode::I32Const.to_byte()];
        leb::write_signed(&mut code, 42);
        code.push(Opcode::LocalGet.to_byte());
        leb::write_unsigned(&mut code, 3);
        code.push(Opcode::I32Add.to_byte());
        code.push(Opcode::End.to_byte());

        let mut r = BytecodeReader::new(&code);
        assert_eq!(r.read_opcode().unwrap(), Opcode::I32Const);
        assert_eq!(r.read_i32().unwrap(), 42);
        assert_eq!(r.read_opcode().unwrap(), Opcode::LocalGet);
        assert_eq!(r.read_index().unwrap(), 3);
        assert_eq!(r.peek_opcode(), Some(Opcode::I32Add));
        assert_eq!(r.read_opcode().unwrap(), Opcode::I32Add);
        assert_eq!(r.read_opcode().unwrap(), Opcode::End);
        assert!(r.is_at_end());
    }

    #[test]
    fn bytecode_reader_block_types() {
        let code = [0x40u8, 0x7F, 0x05];
        let mut r = BytecodeReader::new(&code);
        assert_eq!(r.read_block_type().unwrap(), BlockType::Empty);
        assert_eq!(r.read_block_type().unwrap(), BlockType::Value(ValueType::I32));
        assert_eq!(r.read_block_type().unwrap(), BlockType::Func(5));
    }

    #[test]
    fn bytecode_reader_branch_table() {
        let mut code = Vec::new();
        leb::write_unsigned(&mut code, 3);
        for t in [0u64, 1, 2] {
            leb::write_unsigned(&mut code, t);
        }
        leb::write_unsigned(&mut code, 7);
        let mut r = BytecodeReader::new(&code);
        let (targets, default) = r.read_branch_table().unwrap();
        assert_eq!(targets, vec![0, 1, 2]);
        assert_eq!(default, 7);
    }

    #[test]
    fn skip_immediates_lands_on_next_opcode() {
        // f64.const 1.5 ; br_table [0 1] 2 ; i32.load align=2 offset=16 ; nop
        let mut code = vec![Opcode::F64Const.to_byte()];
        code.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        code.push(Opcode::BrTable.to_byte());
        leb::write_unsigned(&mut code, 2);
        leb::write_unsigned(&mut code, 0);
        leb::write_unsigned(&mut code, 1);
        leb::write_unsigned(&mut code, 2);
        code.push(Opcode::I32Load.to_byte());
        leb::write_unsigned(&mut code, 2);
        leb::write_unsigned(&mut code, 16);
        code.push(Opcode::Nop.to_byte());

        let mut r = BytecodeReader::new(&code);
        for expected in [Opcode::F64Const, Opcode::BrTable, Opcode::I32Load, Opcode::Nop] {
            let op = r.read_opcode().unwrap();
            assert_eq!(op, expected);
            r.skip_immediates(op).unwrap();
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn float_immediates_roundtrip_bit_exact() {
        let mut code = vec![Opcode::F32Const.to_byte()];
        code.extend_from_slice(&f32::NAN.to_bits().to_le_bytes());
        code.push(Opcode::F64Const.to_byte());
        code.extend_from_slice(&(-0.0f64).to_bits().to_le_bytes());
        let mut r = BytecodeReader::new(&code);
        assert_eq!(r.read_opcode().unwrap(), Opcode::F32Const);
        assert_eq!(r.read_f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(r.read_opcode().unwrap(), Opcode::F64Const);
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn unknown_opcode_is_reported_with_offset() {
        let code = [Opcode::Nop.to_byte(), 0xF5];
        let mut r = BytecodeReader::new(&code);
        r.read_opcode().unwrap();
        match r.read_opcode() {
            Err(ReadError::UnknownOpcode { offset, byte }) => {
                assert_eq!(offset, 1);
                assert_eq!(byte, 0xF5);
            }
            other => panic!("expected unknown opcode error, got {other:?}"),
        }
    }

    #[test]
    fn ref_type_immediate_validation() {
        let code = [0x6F, 0x7F];
        let mut r = BytecodeReader::new(&code);
        assert_eq!(r.read_ref_type().unwrap(), ValueType::ExternRef);
        assert!(matches!(r.read_ref_type(), Err(ReadError::BadType { .. })));
    }
}
