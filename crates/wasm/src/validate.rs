//! The WebAssembly validation algorithm.
//!
//! Validation is a single forward pass of abstract interpretation over types:
//! an abstract operand stack of value types plus a control stack of open
//! structured constructs. This is exactly the algorithm skeleton that
//! single-pass compilers reuse to drive code generation (the paper's Section
//! III), so the validator doubles as the reference for the `spc` crate's
//! abstract interpreter.
//!
//! Besides checking the module, validation computes per-function metadata
//! (maximum operand stack height, local counts) that the interpreter and
//! compilers use to size frames.

use crate::module::{ConstExpr, Module};
use crate::opcode::{OpSignature, Opcode};
use crate::reader::BytecodeReader;
use crate::types::{BlockType, ExternalKind, FuncType, ValueType};
use std::fmt;

/// An error found during validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// The function (in the defined-function index space) where the error was
    /// found, if it was inside a body.
    pub func: Option<u32>,
    /// The bytecode offset within the function body, if applicable.
    pub offset: Option<usize>,
    /// A human-readable message.
    pub message: String,
}

impl ValidateError {
    fn module(message: impl Into<String>) -> ValidateError {
        ValidateError {
            func: None,
            offset: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.func, self.offset) {
            (Some(func), Some(offset)) => {
                write!(f, "validation error in func {func} at +{offset}: {}", self.message)
            }
            (Some(func), None) => write!(f, "validation error in func {func}: {}", self.message),
            _ => write!(f, "validation error: {}", self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Per-function metadata computed during validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuncInfo {
    /// Maximum operand stack height reached anywhere in the body.
    pub max_stack: u32,
    /// Total number of local slots (parameters + declared locals).
    pub num_locals: u32,
    /// Number of parameters.
    pub num_params: u32,
    /// Length of the body code in bytes.
    pub body_len: u32,
    /// Number of call sites (direct + indirect) in the body.
    pub call_sites: u32,
    /// Number of structured control constructs in the body.
    pub control_constructs: u32,
}

/// Module-level metadata produced by successful validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleInfo {
    /// Metadata for each *defined* function, indexed like `Module::funcs`.
    pub funcs: Vec<FuncInfo>,
}

impl ModuleInfo {
    /// Metadata for the defined function with the given function-space index.
    pub fn for_func_index(&self, module: &Module, func_index: u32) -> Option<&FuncInfo> {
        let defined = func_index.checked_sub(module.num_imported_funcs())?;
        self.funcs.get(defined as usize)
    }
}

/// Validates a module and returns per-function metadata.
pub fn validate(module: &Module) -> Result<ModuleInfo, ValidateError> {
    validate_module_level(module)?;
    let mut info = ModuleInfo::default();
    for (i, func) in module.funcs.iter().enumerate() {
        let func_index = module.num_imported_funcs() + i as u32;
        let sig = module
            .func_type(func_index)
            .ok_or_else(|| ValidateError::module(format!("func {i} has invalid type index")))?;
        let mut v = FuncValidator::new(module, i as u32, sig, func_index)?;
        let fi = v.validate(&func.code)?;
        info.funcs.push(fi);
    }
    Ok(info)
}

fn validate_module_level(module: &Module) -> Result<(), ValidateError> {
    // Import and definition type indices must be in range.
    for import in &module.imports {
        if let crate::module::ImportKind::Func(t) = import.kind {
            if t as usize >= module.types.len() {
                return Err(ValidateError::module(format!(
                    "import {}.{} has out-of-range type index {t}",
                    import.module, import.name
                )));
            }
        }
    }
    for (i, f) in module.funcs.iter().enumerate() {
        if f.type_index as usize >= module.types.len() {
            return Err(ValidateError::module(format!(
                "function {i} has out-of-range type index {}",
                f.type_index
            )));
        }
    }
    // Limits must be well-formed.
    for (i, m) in module.memories.iter().enumerate() {
        if !m.limits.is_well_formed() {
            return Err(ValidateError::module(format!("memory {i} has min > max")));
        }
    }
    for (i, t) in module.tables.iter().enumerate() {
        if !t.limits.is_well_formed() {
            return Err(ValidateError::module(format!("table {i} has min > max")));
        }
        if !t.element.is_reference() {
            return Err(ValidateError::module(format!(
                "table {i} element type must be a reference"
            )));
        }
    }
    if module.num_memories() > 1 {
        return Err(ValidateError::module("at most one memory is supported"));
    }
    // Globals: initializer type must match, and global.get may only refer to
    // imported immutable globals.
    let num_imported_globals = module.num_imported_globals();
    for (i, g) in module.globals.iter().enumerate() {
        let init_ty = match g.init {
            ConstExpr::GlobalGet(gi) => {
                if gi >= num_imported_globals {
                    return Err(ValidateError::module(format!(
                        "global {i} initializer refers to non-imported global {gi}"
                    )));
                }
                let gt = module.global_type(gi).ok_or_else(|| {
                    ValidateError::module(format!("global {i} initializer refers to unknown global"))
                })?;
                if gt.mutable {
                    return Err(ValidateError::module(format!(
                        "global {i} initializer refers to mutable global {gi}"
                    )));
                }
                gt.value_type
            }
            ConstExpr::RefFunc(f) => {
                if f >= module.num_funcs() {
                    return Err(ValidateError::module(format!(
                        "global {i} initializer refers to unknown function {f}"
                    )));
                }
                ValueType::FuncRef
            }
            other => other
                .value_type(&module.global_types())
                .ok_or_else(|| ValidateError::module(format!("global {i} has invalid initializer")))?,
        };
        if init_ty != g.ty.value_type {
            return Err(ValidateError::module(format!(
                "global {i} initializer type {init_ty} does not match declared type {}",
                g.ty.value_type
            )));
        }
    }
    // Exports must refer to existing entities and have unique names.
    let mut names = std::collections::HashSet::new();
    for e in &module.exports {
        if !names.insert(e.name.as_str()) {
            return Err(ValidateError::module(format!("duplicate export name {}", e.name)));
        }
        let limit = match e.kind {
            ExternalKind::Func => module.num_funcs(),
            ExternalKind::Table => module.num_tables(),
            ExternalKind::Memory => module.num_memories(),
            ExternalKind::Global => module.num_globals(),
        };
        if e.index >= limit {
            return Err(ValidateError::module(format!(
                "export {} refers to out-of-range {} index {}",
                e.name, e.kind, e.index
            )));
        }
    }
    // Start function must exist and have type [] -> [].
    if let Some(start) = module.start {
        let ty = module
            .func_type(start)
            .ok_or_else(|| ValidateError::module("start function index out of range"))?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidateError::module("start function must have type [] -> []"));
        }
    }
    // Element segments must refer to existing tables and functions.
    for (i, elem) in module.elems.iter().enumerate() {
        if elem.table_index >= module.num_tables() {
            return Err(ValidateError::module(format!(
                "element segment {i} refers to unknown table {}",
                elem.table_index
            )));
        }
        for &f in &elem.func_indices {
            if f >= module.num_funcs() {
                return Err(ValidateError::module(format!(
                    "element segment {i} refers to unknown function {f}"
                )));
            }
        }
    }
    // Data segments must refer to an existing memory.
    for (i, d) in module.data.iter().enumerate() {
        if d.memory_index >= module.num_memories() {
            return Err(ValidateError::module(format!(
                "data segment {i} refers to unknown memory {}",
                d.memory_index
            )));
        }
    }
    Ok(())
}

/// An entry on the abstract operand stack: either a known type or "unknown"
/// (the bottom type that appears in unreachable code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abstract {
    Known(ValueType),
    Unknown,
}

/// The kind of an open control construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ControlKind {
    Func,
    Block,
    Loop,
    If,
    Else,
}

#[derive(Debug, Clone)]
struct ControlFrame {
    kind: ControlKind,
    start_types: Vec<ValueType>,
    end_types: Vec<ValueType>,
    height: usize,
    unreachable: bool,
}

impl ControlFrame {
    fn label_types(&self) -> &[ValueType] {
        if self.kind == ControlKind::Loop {
            &self.start_types
        } else {
            &self.end_types
        }
    }
}

struct FuncValidator<'m> {
    module: &'m Module,
    defined_index: u32,
    locals: Vec<ValueType>,
    results: Vec<ValueType>,
    vals: Vec<Abstract>,
    ctrls: Vec<ControlFrame>,
    max_stack: usize,
    pc: usize,
    call_sites: u32,
    control_constructs: u32,
}

impl<'m> FuncValidator<'m> {
    fn new(
        module: &'m Module,
        defined_index: u32,
        sig: &FuncType,
        func_index: u32,
    ) -> Result<FuncValidator<'m>, ValidateError> {
        let locals = module
            .func_local_types(func_index)
            .ok_or_else(|| ValidateError::module(format!("func {defined_index} missing body")))?;
        Ok(FuncValidator {
            module,
            defined_index,
            locals,
            results: sig.results.clone(),
            vals: Vec::new(),
            ctrls: Vec::new(),
            max_stack: 0,
            pc: 0,
            call_sites: 0,
            control_constructs: 0,
        })
    }

    fn error(&self, message: impl Into<String>) -> ValidateError {
        ValidateError {
            func: Some(self.defined_index),
            offset: Some(self.pc),
            message: message.into(),
        }
    }

    fn push(&mut self, t: ValueType) {
        self.vals.push(Abstract::Known(t));
        self.max_stack = self.max_stack.max(self.vals.len());
    }

    fn push_unknown(&mut self) {
        self.vals.push(Abstract::Unknown);
        self.max_stack = self.max_stack.max(self.vals.len());
    }

    fn pop_any(&mut self) -> Result<Abstract, ValidateError> {
        let frame = self
            .ctrls
            .last()
            .ok_or_else(|| self.error("value stack access outside any control frame"))?;
        if self.vals.len() == frame.height {
            if frame.unreachable {
                return Ok(Abstract::Unknown);
            }
            return Err(self.error("operand stack underflow"));
        }
        Ok(self.vals.pop().expect("non-empty checked above"))
    }

    fn pop_expect(&mut self, expect: ValueType) -> Result<(), ValidateError> {
        match self.pop_any()? {
            Abstract::Unknown => Ok(()),
            Abstract::Known(t) if t == expect => Ok(()),
            Abstract::Known(t) => Err(self.error(format!("expected {expect}, found {t}"))),
        }
    }

    fn pop_expects(&mut self, expects: &[ValueType]) -> Result<(), ValidateError> {
        for &t in expects.iter().rev() {
            self.pop_expect(t)?;
        }
        Ok(())
    }

    fn push_all(&mut self, types: &[ValueType]) {
        for &t in types {
            self.push(t);
        }
    }

    fn push_ctrl(&mut self, kind: ControlKind, start: Vec<ValueType>, end: Vec<ValueType>) {
        let height = self.vals.len();
        self.ctrls.push(ControlFrame {
            kind,
            start_types: start.clone(),
            end_types: end,
            height,
            unreachable: false,
        });
        self.push_all(&start);
    }

    fn pop_ctrl(&mut self) -> Result<ControlFrame, ValidateError> {
        let frame = self
            .ctrls
            .last()
            .cloned()
            .ok_or_else(|| self.error("unbalanced end"))?;
        self.pop_expects(&frame.end_types.clone())?;
        if self.vals.len() != frame.height {
            return Err(self.error("operand stack height mismatch at end of block"));
        }
        self.ctrls.pop();
        Ok(frame)
    }

    fn mark_unreachable(&mut self) -> Result<(), ValidateError> {
        if self.ctrls.is_empty() {
            return Err(self.error("unreachable outside any control frame"));
        }
        let frame = self.ctrls.last_mut().expect("checked non-empty");
        self.vals.truncate(frame.height);
        frame.unreachable = true;
        Ok(())
    }

    fn label(&self, depth: u32) -> Result<&ControlFrame, ValidateError> {
        let len = self.ctrls.len();
        if (depth as usize) >= len {
            return Err(self.error(format!("branch depth {depth} exceeds nesting {len}")));
        }
        Ok(&self.ctrls[len - 1 - depth as usize])
    }

    fn local_type(&self, index: u32) -> Result<ValueType, ValidateError> {
        self.locals
            .get(index as usize)
            .copied()
            .ok_or_else(|| self.error(format!("unknown local {index}")))
    }

    fn block_signature(
        &self,
        bt: BlockType,
    ) -> Result<(Vec<ValueType>, Vec<ValueType>), ValidateError> {
        bt.resolve(&self.module.types)
            .ok_or_else(|| self.error("block type refers to unknown signature"))
    }

    fn validate(&mut self, code: &[u8]) -> Result<FuncInfo, ValidateError> {
        self.push_ctrl(ControlKind::Func, Vec::new(), self.results.clone());
        let mut reader = BytecodeReader::new(code);
        let mut memory_required = false;
        while !self.ctrls.is_empty() {
            if reader.is_at_end() {
                return Err(self.error("body ended with unclosed control constructs"));
            }
            self.pc = reader.pc();
            let op = reader.read_opcode().map_err(|e| self.error(e.to_string()))?;
            self.validate_instruction(op, &mut reader, &mut memory_required)?;
        }
        if !reader.is_at_end() {
            return Err(self.error("trailing bytes after final end"));
        }
        if memory_required && self.module.num_memories() == 0 {
            return Err(self.error("memory instruction used but module has no memory"));
        }
        Ok(FuncInfo {
            max_stack: self.max_stack as u32,
            num_locals: self.locals.len() as u32,
            num_params: self
                .module
                .func_type(self.module.num_imported_funcs() + self.defined_index)
                .map(|t| t.param_count())
                .unwrap_or(0),
            body_len: code.len() as u32,
            call_sites: self.call_sites,
            control_constructs: self.control_constructs,
        })
    }

    fn validate_instruction(
        &mut self,
        op: Opcode,
        reader: &mut BytecodeReader<'_>,
        memory_required: &mut bool,
    ) -> Result<(), ValidateError> {
        use Opcode::*;
        match op {
            Nop => {}
            Unreachable => self.mark_unreachable()?,
            Block | Loop | If => {
                self.control_constructs += 1;
                let bt = reader
                    .read_block_type()
                    .map_err(|e| self.error(e.to_string()))?;
                let (params, results) = self.block_signature(bt)?;
                if op == If {
                    self.pop_expect(ValueType::I32)?;
                }
                self.pop_expects(&params)?;
                let kind = match op {
                    Block => ControlKind::Block,
                    Loop => ControlKind::Loop,
                    _ => ControlKind::If,
                };
                self.push_ctrl(kind, params, results);
            }
            Else => {
                let frame = self.pop_ctrl()?;
                if frame.kind != ControlKind::If {
                    return Err(self.error("else without matching if"));
                }
                self.push_ctrl(ControlKind::Else, frame.start_types, frame.end_types);
            }
            End => {
                let frame = self.pop_ctrl()?;
                if frame.kind == ControlKind::If && frame.start_types != frame.end_types {
                    return Err(self.error("if without else must have matching param/result types"));
                }
                self.push_all(&frame.end_types);
            }
            Br => {
                let depth = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                let types = self.label(depth)?.label_types().to_vec();
                self.pop_expects(&types)?;
                self.mark_unreachable()?;
            }
            BrIf => {
                let depth = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                self.pop_expect(ValueType::I32)?;
                let types = self.label(depth)?.label_types().to_vec();
                self.pop_expects(&types)?;
                self.push_all(&types);
            }
            BrTable => {
                let (targets, default) = reader
                    .read_branch_table()
                    .map_err(|e| self.error(e.to_string()))?;
                self.pop_expect(ValueType::I32)?;
                let default_types = self.label(default)?.label_types().to_vec();
                for &t in &targets {
                    let types = self.label(t)?.label_types().to_vec();
                    if types.len() != default_types.len() {
                        return Err(self.error("br_table targets have mismatched arities"));
                    }
                }
                self.pop_expects(&default_types)?;
                self.mark_unreachable()?;
            }
            Return => {
                let results = self.results.clone();
                self.pop_expects(&results)?;
                self.mark_unreachable()?;
            }
            Call => {
                self.call_sites += 1;
                let func_index = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                let sig = self
                    .module
                    .func_type(func_index)
                    .cloned()
                    .ok_or_else(|| self.error(format!("call to unknown function {func_index}")))?;
                self.pop_expects(&sig.params)?;
                self.push_all(&sig.results);
            }
            CallIndirect => {
                self.call_sites += 1;
                let (type_index, table_index) = reader
                    .read_call_indirect()
                    .map_err(|e| self.error(e.to_string()))?;
                if table_index >= self.module.num_tables() {
                    return Err(self.error(format!("call_indirect unknown table {table_index}")));
                }
                let sig = self
                    .module
                    .types
                    .get(type_index as usize)
                    .cloned()
                    .ok_or_else(|| self.error(format!("call_indirect unknown type {type_index}")))?;
                self.pop_expect(ValueType::I32)?;
                self.pop_expects(&sig.params)?;
                self.push_all(&sig.results);
            }
            Drop => {
                self.pop_any()?;
            }
            Select => {
                self.pop_expect(ValueType::I32)?;
                let a = self.pop_any()?;
                let b = self.pop_any()?;
                match (a, b) {
                    (Abstract::Known(ta), Abstract::Known(tb)) => {
                        if ta != tb {
                            return Err(self.error(format!("select operands differ: {ta} vs {tb}")));
                        }
                        if ta.is_reference() {
                            return Err(self.error("untyped select may not be used with references"));
                        }
                        self.push(ta);
                    }
                    (Abstract::Known(t), Abstract::Unknown)
                    | (Abstract::Unknown, Abstract::Known(t)) => self.push(t),
                    (Abstract::Unknown, Abstract::Unknown) => self.push_unknown(),
                }
            }
            SelectT => {
                let types = reader
                    .read_select_types()
                    .map_err(|e| self.error(e.to_string()))?;
                if types.len() != 1 {
                    return Err(self.error("typed select must list exactly one type"));
                }
                self.pop_expect(ValueType::I32)?;
                self.pop_expect(types[0])?;
                self.pop_expect(types[0])?;
                self.push(types[0]);
            }
            LocalGet => {
                let index = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                let t = self.local_type(index)?;
                self.push(t);
            }
            LocalSet => {
                let index = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                let t = self.local_type(index)?;
                self.pop_expect(t)?;
            }
            LocalTee => {
                let index = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                let t = self.local_type(index)?;
                self.pop_expect(t)?;
                self.push(t);
            }
            GlobalGet => {
                let index = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                let g = self
                    .module
                    .global_type(index)
                    .ok_or_else(|| self.error(format!("unknown global {index}")))?;
                self.push(g.value_type);
            }
            GlobalSet => {
                let index = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                let g = self
                    .module
                    .global_type(index)
                    .ok_or_else(|| self.error(format!("unknown global {index}")))?;
                if !g.mutable {
                    return Err(self.error(format!("global {index} is immutable")));
                }
                self.pop_expect(g.value_type)?;
            }
            MemorySize => {
                *memory_required = true;
                reader
                    .read_memory_index()
                    .map_err(|e| self.error(e.to_string()))?;
                self.push(ValueType::I32);
            }
            MemoryGrow => {
                *memory_required = true;
                reader
                    .read_memory_index()
                    .map_err(|e| self.error(e.to_string()))?;
                self.pop_expect(ValueType::I32)?;
                self.push(ValueType::I32);
            }
            I32Const => {
                reader.read_i32().map_err(|e| self.error(e.to_string()))?;
                self.push(ValueType::I32);
            }
            I64Const => {
                reader.read_i64().map_err(|e| self.error(e.to_string()))?;
                self.push(ValueType::I64);
            }
            F32Const => {
                reader.read_f32().map_err(|e| self.error(e.to_string()))?;
                self.push(ValueType::F32);
            }
            F64Const => {
                reader.read_f64().map_err(|e| self.error(e.to_string()))?;
                self.push(ValueType::F64);
            }
            RefNull => {
                let t = reader
                    .read_ref_type()
                    .map_err(|e| self.error(e.to_string()))?;
                self.push(t);
            }
            RefIsNull => {
                match self.pop_any()? {
                    Abstract::Known(t) if !t.is_reference() => {
                        return Err(self.error(format!("ref.is_null on non-reference {t}")))
                    }
                    _ => {}
                }
                self.push(ValueType::I32);
            }
            RefFunc => {
                let index = reader.read_index().map_err(|e| self.error(e.to_string()))?;
                if index >= self.module.num_funcs() {
                    return Err(self.error(format!("ref.func unknown function {index}")));
                }
                self.push(ValueType::FuncRef);
            }
            _ => {
                // Simple typed opcodes (arithmetic, comparisons, conversions,
                // loads, and stores) are driven by their signatures.
                match op.signature() {
                    OpSignature::Const(_) | OpSignature::Special => {
                        return Err(self.error(format!("unhandled opcode {op}")))
                    }
                    OpSignature::Unary(input, output) => {
                        self.pop_expect(input)?;
                        self.push(output);
                    }
                    OpSignature::Binary(input, output) => {
                        self.pop_expect(input)?;
                        self.pop_expect(input)?;
                        self.push(output);
                    }
                    OpSignature::Load(output) => {
                        *memory_required = true;
                        let memarg = reader
                            .read_memarg()
                            .map_err(|e| self.error(e.to_string()))?;
                        self.check_alignment(op, memarg.align)?;
                        self.pop_expect(ValueType::I32)?;
                        self.push(output);
                    }
                    OpSignature::Store(input) => {
                        *memory_required = true;
                        let memarg = reader
                            .read_memarg()
                            .map_err(|e| self.error(e.to_string()))?;
                        self.check_alignment(op, memarg.align)?;
                        self.pop_expect(input)?;
                        self.pop_expect(ValueType::I32)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn check_alignment(&self, op: Opcode, align: u32) -> Result<(), ValidateError> {
        let width = op.access_width().unwrap_or(1);
        let max_align = width.trailing_zeros();
        if align > max_align {
            return Err(self.error(format!(
                "alignment 2^{align} exceeds natural alignment of {op}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CodeBuilder, ModuleBuilder};
    use crate::types::{GlobalType, Limits};

    fn single_func_module(
        params: Vec<ValueType>,
        results: Vec<ValueType>,
        locals: Vec<ValueType>,
        code: CodeBuilder,
    ) -> Module {
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::at_least(1));
        let f = b.add_func(FuncType::new(params, results), locals, code.finish());
        b.export_func("f", f);
        b.finish()
    }

    #[test]
    fn valid_arithmetic_function() {
        let mut c = CodeBuilder::new();
        c.local_get(0).local_get(1).op(Opcode::I32Add);
        let m = single_func_module(
            vec![ValueType::I32, ValueType::I32],
            vec![ValueType::I32],
            vec![],
            c,
        );
        let info = validate(&m).expect("valid");
        assert_eq!(info.funcs.len(), 1);
        assert_eq!(info.funcs[0].max_stack, 2);
        assert_eq!(info.funcs[0].num_locals, 2);
        assert_eq!(info.funcs[0].num_params, 2);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = CodeBuilder::new();
        c.i32_const(1).f64_const(2.0).op(Opcode::I32Add);
        let m = single_func_module(vec![], vec![ValueType::I32], vec![], c);
        let err = validate(&m).unwrap_err();
        assert!(err.message.contains("expected i32"), "{}", err.message);
    }

    #[test]
    fn stack_underflow_is_rejected() {
        let mut c = CodeBuilder::new();
        c.op(Opcode::I32Add);
        let m = single_func_module(vec![], vec![ValueType::I32], vec![], c);
        let err = validate(&m).unwrap_err();
        assert!(err.message.contains("underflow"), "{}", err.message);
    }

    #[test]
    fn branch_depths_are_checked() {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty).br(2).end();
        let m = single_func_module(vec![], vec![], vec![], c);
        let err = validate(&m).unwrap_err();
        assert!(err.message.contains("depth"), "{}", err.message);
    }

    #[test]
    fn structured_control_with_loop_and_if() {
        // Count down from local 0 to zero, summing into local 1.
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(1)
            .local_get(0)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(1);
        let m = single_func_module(
            vec![ValueType::I32],
            vec![ValueType::I32],
            vec![ValueType::I32],
            c,
        );
        let info = validate(&m).expect("valid");
        assert_eq!(info.funcs[0].control_constructs, 2);
        assert!(info.funcs[0].max_stack >= 2);
    }

    #[test]
    fn if_without_else_requires_matching_types() {
        let mut c = CodeBuilder::new();
        c.i32_const(1).if_(BlockType::Value(ValueType::I32)).i32_const(2).end();
        let m = single_func_module(vec![], vec![ValueType::I32], vec![], c);
        let err = validate(&m).unwrap_err();
        assert!(err.message.contains("else"), "{}", err.message);
    }

    #[test]
    fn if_else_with_results_validates() {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(BlockType::Value(ValueType::I32))
            .i32_const(1)
            .else_()
            .i32_const(2)
            .end();
        let m = single_func_module(vec![ValueType::I32], vec![ValueType::I32], vec![], c);
        validate(&m).expect("valid");
    }

    #[test]
    fn unreachable_code_is_permissive() {
        let mut c = CodeBuilder::new();
        c.unreachable().op(Opcode::I32Add).drop_();
        let m = single_func_module(vec![], vec![], vec![], c);
        validate(&m).expect("valid: dead code is type-checked loosely");
    }

    #[test]
    fn call_signatures_are_checked() {
        let mut b = ModuleBuilder::new();
        let callee = {
            let mut c = CodeBuilder::new();
            c.local_get(0);
            b.add_func(
                FuncType::new(vec![ValueType::I64], vec![ValueType::I64]),
                vec![],
                c.finish(),
            )
        };
        let mut c = CodeBuilder::new();
        c.i32_const(0).call(callee).drop_();
        b.add_func(FuncType::new(vec![], vec![]), vec![], c.finish());
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("expected i64"), "{}", err.message);
    }

    #[test]
    fn call_counts_are_recorded() {
        let mut b = ModuleBuilder::new();
        let f0 = b.add_func(FuncType::new(vec![], vec![]), vec![], CodeBuilder::new().finish());
        let mut c = CodeBuilder::new();
        c.call(f0).call(f0);
        b.add_func(FuncType::new(vec![], vec![]), vec![], c.finish());
        let info = validate(&b.finish()).unwrap();
        assert_eq!(info.funcs[1].call_sites, 2);
    }

    #[test]
    fn global_rules_are_enforced() {
        let mut b = ModuleBuilder::new();
        let g = b.add_global(GlobalType::immutable(ValueType::I32), ConstExpr::I32(3));
        let mut c = CodeBuilder::new();
        c.i32_const(4).global_set(g);
        b.add_func(FuncType::new(vec![], vec![]), vec![], c.finish());
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("immutable"), "{}", err.message);
    }

    #[test]
    fn global_initializer_type_mismatch_rejected() {
        let mut b = ModuleBuilder::new();
        b.add_global(GlobalType::mutable(ValueType::I32), ConstExpr::F64(1.0));
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("initializer type"), "{}", err.message);
    }

    #[test]
    fn memory_instructions_require_a_memory() {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.i32_const(0).mem(Opcode::I32Load, 2, 0).drop_();
        b.add_func(FuncType::new(vec![], vec![]), vec![], c.finish());
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("no memory"), "{}", err.message);
    }

    #[test]
    fn excessive_alignment_rejected() {
        let mut c = CodeBuilder::new();
        c.i32_const(0).mem(Opcode::I32Load, 3, 0).drop_();
        let m = single_func_module(vec![], vec![], vec![], c);
        let err = validate(&m).unwrap_err();
        assert!(err.message.contains("alignment"), "{}", err.message);
    }

    #[test]
    fn export_and_start_rules() {
        let mut b = ModuleBuilder::new();
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![]),
            vec![],
            {
                let mut c = CodeBuilder::new();
                c.nop();
                c.finish()
            },
        );
        b.set_start(f);
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("start function"), "{}", err.message);

        let mut b = ModuleBuilder::new();
        b.export_func("f", 3);
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("out-of-range"), "{}", err.message);
    }

    #[test]
    fn duplicate_export_names_rejected() {
        let mut b = ModuleBuilder::new();
        let f = b.add_func(FuncType::new(vec![], vec![]), vec![], CodeBuilder::new().finish());
        b.export_func("same", f);
        b.export_func("same", f);
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("duplicate"), "{}", err.message);
    }

    #[test]
    fn br_table_validates_targets() {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .block(BlockType::Empty)
            .local_get(0)
            .br_table(&[0, 1], 0)
            .end()
            .end();
        let m = single_func_module(vec![ValueType::I32], vec![], vec![], c);
        validate(&m).expect("valid br_table");
    }

    #[test]
    fn select_type_rules() {
        let mut c = CodeBuilder::new();
        c.i32_const(1).f32_const(2.0).i32_const(0).select().drop_();
        let m = single_func_module(vec![], vec![], vec![], c);
        let err = validate(&m).unwrap_err();
        assert!(err.message.contains("select"), "{}", err.message);
    }

    #[test]
    fn multi_value_blocks_validate() {
        let mut b = ModuleBuilder::new();
        let pair = b.add_type(FuncType::new(vec![], vec![ValueType::I32, ValueType::I32]));
        let mut c = CodeBuilder::new();
        c.block(BlockType::Func(pair))
            .i32_const(1)
            .i32_const(2)
            .end()
            .op(Opcode::I32Add);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
        b.export_func("f", f);
        let info = validate(&b.finish()).expect("multi-value block valid");
        assert_eq!(info.funcs[0].max_stack, 2);
    }

    #[test]
    fn ref_instructions_validate() {
        let mut c = CodeBuilder::new();
        c.ref_null(ValueType::ExternRef).op(Opcode::RefIsNull);
        let m = single_func_module(vec![], vec![ValueType::I32], vec![], c);
        validate(&m).expect("valid ref code");
    }

    #[test]
    fn trailing_bytes_after_end_rejected() {
        let mut c = CodeBuilder::new();
        c.nop();
        let mut code = c.finish();
        code.push(Opcode::Nop.to_byte());
        let mut b = ModuleBuilder::new();
        b.add_func(FuncType::new(vec![], vec![]), vec![], code);
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.message.contains("trailing"), "{}", err.message);
    }
}
