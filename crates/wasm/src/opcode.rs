//! The WebAssembly opcode set used throughout the engine.
//!
//! Opcodes are represented by their single-byte binary encodings, which lets
//! the in-place interpreter and the single-pass compiler both dispatch
//! directly on the raw bytecode without a rewriting step.

use crate::types::ValueType;
use std::fmt;

/// The kind of immediate operands that follow an opcode in the bytecode.
///
/// Knowing the immediate shape is enough to skip over an instruction, which
/// both the validator's and single-pass compiler's bytecode iterators rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmediateKind {
    /// No immediates.
    None,
    /// A block type (for `block`, `loop`, `if`).
    BlockType,
    /// A single label index (`br`, `br_if`).
    LabelIndex,
    /// A vector of label indices plus a default (`br_table`).
    BranchTable,
    /// A function index (`call`, `ref.func`).
    FuncIndex,
    /// A type index and a table index (`call_indirect`).
    CallIndirect,
    /// A local variable index.
    LocalIndex,
    /// A global variable index.
    GlobalIndex,
    /// A memory argument: alignment and offset.
    MemArg,
    /// A single reserved byte (`memory.size`, `memory.grow`).
    MemoryIndex,
    /// A signed 32-bit LEB constant.
    I32Const,
    /// A signed 64-bit LEB constant.
    I64Const,
    /// A little-endian 4-byte float constant.
    F32Const,
    /// A little-endian 8-byte float constant.
    F64Const,
    /// A reference type byte (`ref.null`).
    RefType,
    /// A `select` with explicit result types.
    SelectTyped,
}

macro_rules! opcodes {
    ($( $name:ident = $byte:expr, $mnemonic:expr, $imm:ident ; )*) => {
        /// A single-byte WebAssembly opcode.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = $mnemonic]
                $name = $byte,
            )*
        }

        impl Opcode {
            /// All opcodes known to this engine.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name,)* ];

            /// Decodes an opcode from its binary byte.
            pub fn from_byte(b: u8) -> Option<Opcode> {
                match b {
                    $( $byte => Some(Opcode::$name), )*
                    _ => None,
                }
            }

            /// The binary-format byte for this opcode.
            pub fn to_byte(self) -> u8 {
                self as u8
            }

            /// The textual mnemonic (e.g. `"i32.add"`).
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$name => $mnemonic, )*
                }
            }

            /// The shape of this opcode's immediate operands.
            pub fn immediate_kind(self) -> ImmediateKind {
                match self {
                    $( Opcode::$name => ImmediateKind::$imm, )*
                }
            }
        }
    };
}

opcodes! {
    // Control instructions.
    Unreachable = 0x00, "unreachable", None;
    Nop = 0x01, "nop", None;
    Block = 0x02, "block", BlockType;
    Loop = 0x03, "loop", BlockType;
    If = 0x04, "if", BlockType;
    Else = 0x05, "else", None;
    End = 0x0B, "end", None;
    Br = 0x0C, "br", LabelIndex;
    BrIf = 0x0D, "br_if", LabelIndex;
    BrTable = 0x0E, "br_table", BranchTable;
    Return = 0x0F, "return", None;
    Call = 0x10, "call", FuncIndex;
    CallIndirect = 0x11, "call_indirect", CallIndirect;

    // Parametric instructions.
    Drop = 0x1A, "drop", None;
    Select = 0x1B, "select", None;
    SelectT = 0x1C, "select_t", SelectTyped;

    // Variable instructions.
    LocalGet = 0x20, "local.get", LocalIndex;
    LocalSet = 0x21, "local.set", LocalIndex;
    LocalTee = 0x22, "local.tee", LocalIndex;
    GlobalGet = 0x23, "global.get", GlobalIndex;
    GlobalSet = 0x24, "global.set", GlobalIndex;

    // Memory instructions.
    I32Load = 0x28, "i32.load", MemArg;
    I64Load = 0x29, "i64.load", MemArg;
    F32Load = 0x2A, "f32.load", MemArg;
    F64Load = 0x2B, "f64.load", MemArg;
    I32Load8S = 0x2C, "i32.load8_s", MemArg;
    I32Load8U = 0x2D, "i32.load8_u", MemArg;
    I32Load16S = 0x2E, "i32.load16_s", MemArg;
    I32Load16U = 0x2F, "i32.load16_u", MemArg;
    I64Load8S = 0x30, "i64.load8_s", MemArg;
    I64Load8U = 0x31, "i64.load8_u", MemArg;
    I64Load16S = 0x32, "i64.load16_s", MemArg;
    I64Load16U = 0x33, "i64.load16_u", MemArg;
    I64Load32S = 0x34, "i64.load32_s", MemArg;
    I64Load32U = 0x35, "i64.load32_u", MemArg;
    I32Store = 0x36, "i32.store", MemArg;
    I64Store = 0x37, "i64.store", MemArg;
    F32Store = 0x38, "f32.store", MemArg;
    F64Store = 0x39, "f64.store", MemArg;
    I32Store8 = 0x3A, "i32.store8", MemArg;
    I32Store16 = 0x3B, "i32.store16", MemArg;
    I64Store8 = 0x3C, "i64.store8", MemArg;
    I64Store16 = 0x3D, "i64.store16", MemArg;
    I64Store32 = 0x3E, "i64.store32", MemArg;
    MemorySize = 0x3F, "memory.size", MemoryIndex;
    MemoryGrow = 0x40, "memory.grow", MemoryIndex;

    // Constants.
    I32Const = 0x41, "i32.const", I32Const;
    I64Const = 0x42, "i64.const", I64Const;
    F32Const = 0x43, "f32.const", F32Const;
    F64Const = 0x44, "f64.const", F64Const;

    // i32 comparisons.
    I32Eqz = 0x45, "i32.eqz", None;
    I32Eq = 0x46, "i32.eq", None;
    I32Ne = 0x47, "i32.ne", None;
    I32LtS = 0x48, "i32.lt_s", None;
    I32LtU = 0x49, "i32.lt_u", None;
    I32GtS = 0x4A, "i32.gt_s", None;
    I32GtU = 0x4B, "i32.gt_u", None;
    I32LeS = 0x4C, "i32.le_s", None;
    I32LeU = 0x4D, "i32.le_u", None;
    I32GeS = 0x4E, "i32.ge_s", None;
    I32GeU = 0x4F, "i32.ge_u", None;

    // i64 comparisons.
    I64Eqz = 0x50, "i64.eqz", None;
    I64Eq = 0x51, "i64.eq", None;
    I64Ne = 0x52, "i64.ne", None;
    I64LtS = 0x53, "i64.lt_s", None;
    I64LtU = 0x54, "i64.lt_u", None;
    I64GtS = 0x55, "i64.gt_s", None;
    I64GtU = 0x56, "i64.gt_u", None;
    I64LeS = 0x57, "i64.le_s", None;
    I64LeU = 0x58, "i64.le_u", None;
    I64GeS = 0x59, "i64.ge_s", None;
    I64GeU = 0x5A, "i64.ge_u", None;

    // f32 comparisons.
    F32Eq = 0x5B, "f32.eq", None;
    F32Ne = 0x5C, "f32.ne", None;
    F32Lt = 0x5D, "f32.lt", None;
    F32Gt = 0x5E, "f32.gt", None;
    F32Le = 0x5F, "f32.le", None;
    F32Ge = 0x60, "f32.ge", None;

    // f64 comparisons.
    F64Eq = 0x61, "f64.eq", None;
    F64Ne = 0x62, "f64.ne", None;
    F64Lt = 0x63, "f64.lt", None;
    F64Gt = 0x64, "f64.gt", None;
    F64Le = 0x65, "f64.le", None;
    F64Ge = 0x66, "f64.ge", None;

    // i32 arithmetic.
    I32Clz = 0x67, "i32.clz", None;
    I32Ctz = 0x68, "i32.ctz", None;
    I32Popcnt = 0x69, "i32.popcnt", None;
    I32Add = 0x6A, "i32.add", None;
    I32Sub = 0x6B, "i32.sub", None;
    I32Mul = 0x6C, "i32.mul", None;
    I32DivS = 0x6D, "i32.div_s", None;
    I32DivU = 0x6E, "i32.div_u", None;
    I32RemS = 0x6F, "i32.rem_s", None;
    I32RemU = 0x70, "i32.rem_u", None;
    I32And = 0x71, "i32.and", None;
    I32Or = 0x72, "i32.or", None;
    I32Xor = 0x73, "i32.xor", None;
    I32Shl = 0x74, "i32.shl", None;
    I32ShrS = 0x75, "i32.shr_s", None;
    I32ShrU = 0x76, "i32.shr_u", None;
    I32Rotl = 0x77, "i32.rotl", None;
    I32Rotr = 0x78, "i32.rotr", None;

    // i64 arithmetic.
    I64Clz = 0x79, "i64.clz", None;
    I64Ctz = 0x7A, "i64.ctz", None;
    I64Popcnt = 0x7B, "i64.popcnt", None;
    I64Add = 0x7C, "i64.add", None;
    I64Sub = 0x7D, "i64.sub", None;
    I64Mul = 0x7E, "i64.mul", None;
    I64DivS = 0x7F, "i64.div_s", None;
    I64DivU = 0x80, "i64.div_u", None;
    I64RemS = 0x81, "i64.rem_s", None;
    I64RemU = 0x82, "i64.rem_u", None;
    I64And = 0x83, "i64.and", None;
    I64Or = 0x84, "i64.or", None;
    I64Xor = 0x85, "i64.xor", None;
    I64Shl = 0x86, "i64.shl", None;
    I64ShrS = 0x87, "i64.shr_s", None;
    I64ShrU = 0x88, "i64.shr_u", None;
    I64Rotl = 0x89, "i64.rotl", None;
    I64Rotr = 0x8A, "i64.rotr", None;

    // f32 arithmetic.
    F32Abs = 0x8B, "f32.abs", None;
    F32Neg = 0x8C, "f32.neg", None;
    F32Ceil = 0x8D, "f32.ceil", None;
    F32Floor = 0x8E, "f32.floor", None;
    F32Trunc = 0x8F, "f32.trunc", None;
    F32Nearest = 0x90, "f32.nearest", None;
    F32Sqrt = 0x91, "f32.sqrt", None;
    F32Add = 0x92, "f32.add", None;
    F32Sub = 0x93, "f32.sub", None;
    F32Mul = 0x94, "f32.mul", None;
    F32Div = 0x95, "f32.div", None;
    F32Min = 0x96, "f32.min", None;
    F32Max = 0x97, "f32.max", None;
    F32Copysign = 0x98, "f32.copysign", None;

    // f64 arithmetic.
    F64Abs = 0x99, "f64.abs", None;
    F64Neg = 0x9A, "f64.neg", None;
    F64Ceil = 0x9B, "f64.ceil", None;
    F64Floor = 0x9C, "f64.floor", None;
    F64Trunc = 0x9D, "f64.trunc", None;
    F64Nearest = 0x9E, "f64.nearest", None;
    F64Sqrt = 0x9F, "f64.sqrt", None;
    F64Add = 0xA0, "f64.add", None;
    F64Sub = 0xA1, "f64.sub", None;
    F64Mul = 0xA2, "f64.mul", None;
    F64Div = 0xA3, "f64.div", None;
    F64Min = 0xA4, "f64.min", None;
    F64Max = 0xA5, "f64.max", None;
    F64Copysign = 0xA6, "f64.copysign", None;

    // Conversions.
    I32WrapI64 = 0xA7, "i32.wrap_i64", None;
    I32TruncF32S = 0xA8, "i32.trunc_f32_s", None;
    I32TruncF32U = 0xA9, "i32.trunc_f32_u", None;
    I32TruncF64S = 0xAA, "i32.trunc_f64_s", None;
    I32TruncF64U = 0xAB, "i32.trunc_f64_u", None;
    I64ExtendI32S = 0xAC, "i64.extend_i32_s", None;
    I64ExtendI32U = 0xAD, "i64.extend_i32_u", None;
    I64TruncF32S = 0xAE, "i64.trunc_f32_s", None;
    I64TruncF32U = 0xAF, "i64.trunc_f32_u", None;
    I64TruncF64S = 0xB0, "i64.trunc_f64_s", None;
    I64TruncF64U = 0xB1, "i64.trunc_f64_u", None;
    F32ConvertI32S = 0xB2, "f32.convert_i32_s", None;
    F32ConvertI32U = 0xB3, "f32.convert_i32_u", None;
    F32ConvertI64S = 0xB4, "f32.convert_i64_s", None;
    F32ConvertI64U = 0xB5, "f32.convert_i64_u", None;
    F32DemoteF64 = 0xB6, "f32.demote_f64", None;
    F64ConvertI32S = 0xB7, "f64.convert_i32_s", None;
    F64ConvertI32U = 0xB8, "f64.convert_i32_u", None;
    F64ConvertI64S = 0xB9, "f64.convert_i64_s", None;
    F64ConvertI64U = 0xBA, "f64.convert_i64_u", None;
    F64PromoteF32 = 0xBB, "f64.promote_f32", None;
    I32ReinterpretF32 = 0xBC, "i32.reinterpret_f32", None;
    I64ReinterpretF64 = 0xBD, "i64.reinterpret_f64", None;
    F32ReinterpretI32 = 0xBE, "f32.reinterpret_i32", None;
    F64ReinterpretI64 = 0xBF, "f64.reinterpret_i64", None;

    // Sign extension.
    I32Extend8S = 0xC0, "i32.extend8_s", None;
    I32Extend16S = 0xC1, "i32.extend16_s", None;
    I64Extend8S = 0xC2, "i64.extend8_s", None;
    I64Extend16S = 0xC3, "i64.extend16_s", None;
    I64Extend32S = 0xC4, "i64.extend32_s", None;

    // Reference instructions.
    RefNull = 0xD0, "ref.null", RefType;
    RefIsNull = 0xD1, "ref.is_null", None;
    RefFunc = 0xD2, "ref.func", FuncIndex;
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Signature category of a simple (non-control, non-memory-index) opcode,
/// used by the validator, interpreter, and compilers to share per-opcode
/// operand/result typing without three separate tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSignature {
    /// No simple signature (control flow, calls, locals, etc.).
    Special,
    /// `[] -> [t]`
    Const(ValueType),
    /// `[a] -> [r]`
    Unary(ValueType, ValueType),
    /// `[a a] -> [r]`
    Binary(ValueType, ValueType),
    /// `[a] -> [r]` memory load (address is i32).
    Load(ValueType),
    /// `[i32 a] -> []` memory store.
    Store(ValueType),
}

impl Opcode {
    /// Returns true for structured control opcodes that open a construct.
    pub fn opens_block(self) -> bool {
        matches!(self, Opcode::Block | Opcode::Loop | Opcode::If)
    }

    /// Returns true if this opcode unconditionally transfers control
    /// (following code is unreachable until the next label).
    pub fn is_unconditional_transfer(self) -> bool {
        matches!(
            self,
            Opcode::Unreachable | Opcode::Br | Opcode::BrTable | Opcode::Return
        )
    }

    /// Returns true for instructions that can trap at runtime.
    pub fn can_trap(self) -> bool {
        matches!(
            self,
            Opcode::Unreachable
                | Opcode::I32DivS
                | Opcode::I32DivU
                | Opcode::I32RemS
                | Opcode::I32RemU
                | Opcode::I64DivS
                | Opcode::I64DivU
                | Opcode::I64RemS
                | Opcode::I64RemU
                | Opcode::I32TruncF32S
                | Opcode::I32TruncF32U
                | Opcode::I32TruncF64S
                | Opcode::I32TruncF64U
                | Opcode::I64TruncF32S
                | Opcode::I64TruncF32U
                | Opcode::I64TruncF64S
                | Opcode::I64TruncF64U
                | Opcode::CallIndirect
                | Opcode::MemoryGrow
        ) || self.is_memory_access()
    }

    /// Returns true for loads and stores.
    pub fn is_memory_access(self) -> bool {
        let b = self.to_byte();
        (0x28..=0x3E).contains(&b)
    }

    /// Returns true for call instructions.
    pub fn is_call(self) -> bool {
        matches!(self, Opcode::Call | Opcode::CallIndirect)
    }

    /// Returns the simple operand/result signature of this opcode, or
    /// `OpSignature::Special` for opcodes whose typing depends on context.
    pub fn signature(self) -> OpSignature {
        use OpSignature::*;
        use ValueType::*;
        let b = self.to_byte();
        match self {
            Opcode::I32Const => Const(I32),
            Opcode::I64Const => Const(I64),
            Opcode::F32Const => Const(F32),
            Opcode::F64Const => Const(F64),

            Opcode::I32Eqz => Unary(I32, I32),
            Opcode::I64Eqz => Unary(I64, I32),
            Opcode::RefIsNull => Unary(ExternRef, I32),

            // i32 compares: [i32 i32] -> [i32]
            _ if (0x46..=0x4F).contains(&b) => Binary(I32, I32),
            // i64 compares: [i64 i64] -> [i32]
            _ if (0x51..=0x5A).contains(&b) => Binary(I64, I32),
            // f32 compares.
            _ if (0x5B..=0x60).contains(&b) => Binary(F32, I32),
            // f64 compares.
            _ if (0x61..=0x66).contains(&b) => Binary(F64, I32),

            Opcode::I32Clz | Opcode::I32Ctz | Opcode::I32Popcnt => Unary(I32, I32),
            // i32 binary arithmetic.
            _ if (0x6A..=0x78).contains(&b) => Binary(I32, I32),
            Opcode::I64Clz | Opcode::I64Ctz | Opcode::I64Popcnt => Unary(I64, I64),
            // i64 binary arithmetic.
            _ if (0x7C..=0x8A).contains(&b) => Binary(I64, I64),
            // f32 unary.
            _ if (0x8B..=0x91).contains(&b) => Unary(F32, F32),
            // f32 binary.
            _ if (0x92..=0x98).contains(&b) => Binary(F32, F32),
            // f64 unary.
            _ if (0x99..=0x9F).contains(&b) => Unary(F64, F64),
            // f64 binary.
            _ if (0xA0..=0xA6).contains(&b) => Binary(F64, F64),

            Opcode::I32WrapI64 => Unary(I64, I32),
            Opcode::I32TruncF32S | Opcode::I32TruncF32U => Unary(F32, I32),
            Opcode::I32TruncF64S | Opcode::I32TruncF64U => Unary(F64, I32),
            Opcode::I64ExtendI32S | Opcode::I64ExtendI32U => Unary(I32, I64),
            Opcode::I64TruncF32S | Opcode::I64TruncF32U => Unary(F32, I64),
            Opcode::I64TruncF64S | Opcode::I64TruncF64U => Unary(F64, I64),
            Opcode::F32ConvertI32S | Opcode::F32ConvertI32U => Unary(I32, F32),
            Opcode::F32ConvertI64S | Opcode::F32ConvertI64U => Unary(I64, F32),
            Opcode::F32DemoteF64 => Unary(F64, F32),
            Opcode::F64ConvertI32S | Opcode::F64ConvertI32U => Unary(I32, F64),
            Opcode::F64ConvertI64S | Opcode::F64ConvertI64U => Unary(I64, F64),
            Opcode::F64PromoteF32 => Unary(F32, F64),
            Opcode::I32ReinterpretF32 => Unary(F32, I32),
            Opcode::I64ReinterpretF64 => Unary(F64, I64),
            Opcode::F32ReinterpretI32 => Unary(I32, F32),
            Opcode::F64ReinterpretI64 => Unary(I64, F64),

            Opcode::I32Extend8S | Opcode::I32Extend16S => Unary(I32, I32),
            Opcode::I64Extend8S | Opcode::I64Extend16S | Opcode::I64Extend32S => {
                Unary(I64, I64)
            }

            Opcode::I32Load
            | Opcode::I32Load8S
            | Opcode::I32Load8U
            | Opcode::I32Load16S
            | Opcode::I32Load16U => Load(I32),
            Opcode::I64Load
            | Opcode::I64Load8S
            | Opcode::I64Load8U
            | Opcode::I64Load16S
            | Opcode::I64Load16U
            | Opcode::I64Load32S
            | Opcode::I64Load32U => Load(I64),
            Opcode::F32Load => Load(F32),
            Opcode::F64Load => Load(F64),

            Opcode::I32Store | Opcode::I32Store8 | Opcode::I32Store16 => Store(I32),
            Opcode::I64Store
            | Opcode::I64Store8
            | Opcode::I64Store16
            | Opcode::I64Store32 => Store(I64),
            Opcode::F32Store => Store(F32),
            Opcode::F64Store => Store(F64),

            _ => Special,
        }
    }

    /// The number of bytes read/written by a memory access opcode, or `None`
    /// for non-memory opcodes.
    pub fn access_width(self) -> Option<u32> {
        Some(match self {
            Opcode::I32Load8S
            | Opcode::I32Load8U
            | Opcode::I64Load8S
            | Opcode::I64Load8U
            | Opcode::I32Store8
            | Opcode::I64Store8 => 1,
            Opcode::I32Load16S
            | Opcode::I32Load16U
            | Opcode::I64Load16S
            | Opcode::I64Load16U
            | Opcode::I32Store16
            | Opcode::I64Store16 => 2,
            Opcode::I32Load
            | Opcode::F32Load
            | Opcode::I64Load32S
            | Opcode::I64Load32U
            | Opcode::I32Store
            | Opcode::F32Store
            | Opcode::I64Store32 => 4,
            Opcode::I64Load | Opcode::F64Load | Opcode::I64Store | Opcode::F64Store => 8,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_all() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op.to_byte()), Some(op), "{op}");
        }
    }

    #[test]
    fn unknown_bytes_rejected() {
        // Gaps in the opcode space must not decode.
        for b in [0x06u8, 0x07, 0x12, 0x1D, 0x25, 0x27, 0xC5, 0xD3, 0xFF] {
            assert_eq!(Opcode::from_byte(b), None, "byte {b:#x}");
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
        }
    }

    #[test]
    fn signatures_of_representative_opcodes() {
        use OpSignature::*;
        use ValueType::*;
        assert_eq!(Opcode::I32Add.signature(), Binary(I32, I32));
        assert_eq!(Opcode::I64LtU.signature(), Binary(I64, I32));
        assert_eq!(Opcode::F64Sqrt.signature(), Unary(F64, F64));
        assert_eq!(Opcode::F32Ge.signature(), Binary(F32, I32));
        assert_eq!(Opcode::I32Const.signature(), Const(I32));
        assert_eq!(Opcode::I64Load16U.signature(), Load(I64));
        assert_eq!(Opcode::F64Store.signature(), Store(F64));
        assert_eq!(Opcode::I32WrapI64.signature(), Unary(I64, I32));
        assert_eq!(Opcode::Call.signature(), Special);
        assert_eq!(Opcode::Block.signature(), Special);
        assert_eq!(Opcode::LocalGet.signature(), Special);
    }

    #[test]
    fn classification_helpers() {
        assert!(Opcode::Block.opens_block());
        assert!(Opcode::Loop.opens_block());
        assert!(Opcode::If.opens_block());
        assert!(!Opcode::End.opens_block());

        assert!(Opcode::Br.is_unconditional_transfer());
        assert!(Opcode::Return.is_unconditional_transfer());
        assert!(!Opcode::BrIf.is_unconditional_transfer());

        assert!(Opcode::I32DivS.can_trap());
        assert!(Opcode::I64Load.can_trap());
        assert!(!Opcode::I32Add.can_trap());

        assert!(Opcode::I32Load8U.is_memory_access());
        assert!(Opcode::F64Store.is_memory_access());
        assert!(!Opcode::MemorySize.is_memory_access());

        assert!(Opcode::Call.is_call());
        assert!(Opcode::CallIndirect.is_call());
        assert!(!Opcode::Br.is_call());
    }

    #[test]
    fn access_widths() {
        assert_eq!(Opcode::I32Load8U.access_width(), Some(1));
        assert_eq!(Opcode::I64Store16.access_width(), Some(2));
        assert_eq!(Opcode::I32Load.access_width(), Some(4));
        assert_eq!(Opcode::F64Load.access_width(), Some(8));
        assert_eq!(Opcode::I64Load32S.access_width(), Some(4));
        assert_eq!(Opcode::I32Add.access_width(), None);
    }

    #[test]
    fn immediate_kinds() {
        assert_eq!(Opcode::Block.immediate_kind(), ImmediateKind::BlockType);
        assert_eq!(Opcode::Br.immediate_kind(), ImmediateKind::LabelIndex);
        assert_eq!(Opcode::BrTable.immediate_kind(), ImmediateKind::BranchTable);
        assert_eq!(Opcode::Call.immediate_kind(), ImmediateKind::FuncIndex);
        assert_eq!(
            Opcode::CallIndirect.immediate_kind(),
            ImmediateKind::CallIndirect
        );
        assert_eq!(Opcode::LocalGet.immediate_kind(), ImmediateKind::LocalIndex);
        assert_eq!(Opcode::I32Load.immediate_kind(), ImmediateKind::MemArg);
        assert_eq!(Opcode::I32Const.immediate_kind(), ImmediateKind::I32Const);
        assert_eq!(Opcode::F64Const.immediate_kind(), ImmediateKind::F64Const);
        assert_eq!(Opcode::RefNull.immediate_kind(), ImmediateKind::RefType);
        assert_eq!(Opcode::I32Add.immediate_kind(), ImmediateKind::None);
    }
}
