//! Decoding of WebAssembly binary format bytes into a [`Module`].
//!
//! The decoder performs structural checks (magic/version, section ordering,
//! counts, well-formed LEBs). Type- and control-flow checking is the
//! validator's job ([`crate::validate`]).

use crate::encode::SectionId;
use crate::module::{
    ConstExpr, CustomSection, DataSegment, ElemSegment, Export, FuncDecl, Global, Import,
    ImportKind, Module,
};
use crate::opcode::Opcode;
use crate::reader::{ByteReader, ReadError};
use crate::types::{
    ExternalKind, FuncType, GlobalType, Limits, MemoryType, TableType, ValueType,
};
use std::fmt;

/// Errors produced while decoding a binary module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic number or version was wrong.
    BadHeader,
    /// A low-level read failed.
    Read(ReadError),
    /// A section appeared out of order or more than once.
    SectionOrder {
        /// The offending section id byte.
        section: u8,
    },
    /// An unknown section id was encountered.
    UnknownSection {
        /// The offending section id byte.
        section: u8,
    },
    /// A section's declared size did not match its contents.
    SectionSize {
        /// The offending section id byte.
        section: u8,
    },
    /// The function and code sections disagree on the number of functions.
    FunctionCountMismatch {
        /// Number of entries in the function section.
        declared: u32,
        /// Number of bodies in the code section.
        bodies: u32,
    },
    /// A malformed entity was encountered.
    Malformed {
        /// A human-readable description.
        message: String,
        /// Offset in the input.
        offset: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "invalid module header"),
            DecodeError::Read(e) => write!(f, "{e}"),
            DecodeError::SectionOrder { section } => {
                write!(f, "section {section} out of order or duplicated")
            }
            DecodeError::UnknownSection { section } => {
                write!(f, "unknown section id {section}")
            }
            DecodeError::SectionSize { section } => {
                write!(f, "section {section} size mismatch")
            }
            DecodeError::FunctionCountMismatch { declared, bodies } => write!(
                f,
                "function section declares {declared} functions but code section has {bodies}"
            ),
            DecodeError::Malformed { message, offset } => {
                write!(f, "{message} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<ReadError> for DecodeError {
    fn from(e: ReadError) -> DecodeError {
        DecodeError::Read(e)
    }
}

/// Decodes a binary module.
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    Decoder::new(bytes).decode()
}

struct Decoder<'a> {
    r: ByteReader<'a>,
    module: Module,
    declared_func_types: Vec<u32>,
    last_section: u8,
}

impl<'a> Decoder<'a> {
    fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder {
            r: ByteReader::new(bytes),
            module: Module::new(),
            declared_func_types: Vec::new(),
            last_section: 0,
        }
    }

    fn decode(mut self) -> Result<Module, DecodeError> {
        let magic = self.r.read_bytes(4).map_err(|_| DecodeError::BadHeader)?;
        if magic != crate::encode::MAGIC {
            return Err(DecodeError::BadHeader);
        }
        let version = self.r.read_bytes(4).map_err(|_| DecodeError::BadHeader)?;
        if version != crate::encode::VERSION {
            return Err(DecodeError::BadHeader);
        }

        while !self.r.is_at_end() {
            let id_byte = self.r.read_u8()?;
            let size = self.r.read_u32_leb()? as usize;
            let start = self.r.pos();
            let end = start + size;
            if end > self.r.data().len() {
                return Err(DecodeError::Read(ReadError::UnexpectedEnd { offset: start }));
            }
            let section =
                SectionId::from_byte(id_byte).ok_or(DecodeError::UnknownSection { section: id_byte })?;
            if section != SectionId::Custom {
                if id_byte <= self.last_section {
                    return Err(DecodeError::SectionOrder { section: id_byte });
                }
                self.last_section = id_byte;
            }
            match section {
                SectionId::Custom => self.decode_custom(end)?,
                SectionId::Type => self.decode_types()?,
                SectionId::Import => self.decode_imports()?,
                SectionId::Function => self.decode_functions()?,
                SectionId::Table => self.decode_tables()?,
                SectionId::Memory => self.decode_memories()?,
                SectionId::Global => self.decode_globals()?,
                SectionId::Export => self.decode_exports()?,
                SectionId::Start => {
                    self.module.start = Some(self.r.read_u32_leb()?);
                }
                SectionId::Element => self.decode_elements()?,
                SectionId::Code => self.decode_code()?,
                SectionId::Data => self.decode_data()?,
            }
            if self.r.pos() != end {
                return Err(DecodeError::SectionSize { section: id_byte });
            }
        }

        if self.declared_func_types.len() != self.module.funcs.len() {
            return Err(DecodeError::FunctionCountMismatch {
                declared: self.declared_func_types.len() as u32,
                bodies: self.module.funcs.len() as u32,
            });
        }
        Ok(self.module)
    }

    fn decode_custom(&mut self, end: usize) -> Result<(), DecodeError> {
        let name = self.r.read_name()?;
        let remaining = end - self.r.pos();
        let bytes = self.r.read_bytes(remaining)?.to_vec();
        self.module.custom.push(CustomSection { name, bytes });
        Ok(())
    }

    fn decode_types(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let offset = self.r.pos();
            let form = self.r.read_u8()?;
            if form != 0x60 {
                return Err(DecodeError::Malformed {
                    message: format!("expected function type form 0x60, found {form:#04x}"),
                    offset,
                });
            }
            let params = self.read_value_types()?;
            let results = self.read_value_types()?;
            self.module.types.push(FuncType::new(params, results));
        }
        Ok(())
    }

    fn read_value_types(&mut self) -> Result<Vec<ValueType>, DecodeError> {
        let count = self.r.read_u32_leb()?;
        let mut out = Vec::with_capacity(count.min(64) as usize);
        for _ in 0..count {
            out.push(self.r.read_value_type()?);
        }
        Ok(out)
    }

    fn decode_imports(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let module = self.r.read_name()?;
            let name = self.r.read_name()?;
            let offset = self.r.pos();
            let kind_byte = self.r.read_u8()?;
            let kind = match ExternalKind::from_byte(kind_byte) {
                Some(ExternalKind::Func) => ImportKind::Func(self.r.read_u32_leb()?),
                Some(ExternalKind::Table) => ImportKind::Table(self.read_table_type()?),
                Some(ExternalKind::Memory) => ImportKind::Memory(self.read_memory_type()?),
                Some(ExternalKind::Global) => ImportKind::Global(self.read_global_type()?),
                None => {
                    return Err(DecodeError::Malformed {
                        message: format!("invalid import kind {kind_byte:#04x}"),
                        offset,
                    })
                }
            };
            self.module.imports.push(Import { module, name, kind });
        }
        Ok(())
    }

    fn decode_functions(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            self.declared_func_types.push(self.r.read_u32_leb()?);
        }
        Ok(())
    }

    fn decode_tables(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let t = self.read_table_type()?;
            self.module.tables.push(t);
        }
        Ok(())
    }

    fn decode_memories(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let m = self.read_memory_type()?;
            self.module.memories.push(m);
        }
        Ok(())
    }

    fn decode_globals(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let ty = self.read_global_type()?;
            let init = self.read_const_expr()?;
            self.module.globals.push(Global { ty, init });
        }
        Ok(())
    }

    fn decode_exports(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let name = self.r.read_name()?;
            let offset = self.r.pos();
            let kind_byte = self.r.read_u8()?;
            let kind = ExternalKind::from_byte(kind_byte).ok_or(DecodeError::Malformed {
                message: format!("invalid export kind {kind_byte:#04x}"),
                offset,
            })?;
            let index = self.r.read_u32_leb()?;
            self.module.exports.push(Export { name, kind, index });
        }
        Ok(())
    }

    fn decode_elements(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let offset = self.r.pos();
            let flags = self.r.read_u32_leb()?;
            match flags {
                0 => {
                    let expr = self.read_const_expr()?;
                    let funcs = self.read_index_vec()?;
                    self.module.elems.push(ElemSegment {
                        table_index: 0,
                        offset: expr,
                        func_indices: funcs,
                    });
                }
                2 => {
                    let table_index = self.r.read_u32_leb()?;
                    let expr = self.read_const_expr()?;
                    let elemkind = self.r.read_u8()?;
                    if elemkind != 0x00 {
                        return Err(DecodeError::Malformed {
                            message: format!("unsupported elemkind {elemkind:#04x}"),
                            offset,
                        });
                    }
                    let funcs = self.read_index_vec()?;
                    self.module.elems.push(ElemSegment {
                        table_index,
                        offset: expr,
                        func_indices: funcs,
                    });
                }
                other => {
                    return Err(DecodeError::Malformed {
                        message: format!("unsupported element segment flags {other}"),
                        offset,
                    })
                }
            }
        }
        Ok(())
    }

    fn decode_code(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for i in 0..count {
            let body_size = self.r.read_u32_leb()? as usize;
            let body_start = self.r.pos();
            let body_end = body_start + body_size;
            let local_group_count = self.r.read_u32_leb()?;
            let mut locals = Vec::with_capacity(local_group_count.min(64) as usize);
            let mut total_locals: u64 = 0;
            for _ in 0..local_group_count {
                let n = self.r.read_u32_leb()?;
                let ty = self.r.read_value_type()?;
                total_locals += n as u64;
                if total_locals > 1_000_000 {
                    return Err(DecodeError::Malformed {
                        message: "too many locals".to_string(),
                        offset: body_start,
                    });
                }
                locals.push((n, ty));
            }
            if body_end > self.r.data().len() || self.r.pos() > body_end {
                return Err(DecodeError::Read(ReadError::UnexpectedEnd { offset: body_start }));
            }
            let code_offset = self.r.pos();
            let code = self.r.read_bytes(body_end - self.r.pos())?.to_vec();
            if code.last() != Some(&Opcode::End.to_byte()) {
                return Err(DecodeError::Malformed {
                    message: format!("function body {i} does not end with `end`"),
                    offset: body_end,
                });
            }
            let type_index = *self.declared_func_types.get(i as usize).unwrap_or(&0);
            self.module.funcs.push(FuncDecl {
                type_index,
                locals,
                code,
                code_offset,
            });
        }
        Ok(())
    }

    fn decode_data(&mut self) -> Result<(), DecodeError> {
        let count = self.r.read_u32_leb()?;
        for _ in 0..count {
            let offset = self.r.pos();
            let flags = self.r.read_u32_leb()?;
            let memory_index = match flags {
                0 => 0,
                2 => self.r.read_u32_leb()?,
                other => {
                    return Err(DecodeError::Malformed {
                        message: format!("unsupported data segment flags {other}"),
                        offset,
                    })
                }
            };
            let expr = self.read_const_expr()?;
            let len = self.r.read_u32_leb()? as usize;
            let bytes = self.r.read_bytes(len)?.to_vec();
            self.module.data.push(DataSegment {
                memory_index,
                offset: expr,
                bytes,
            });
        }
        Ok(())
    }

    fn read_index_vec(&mut self) -> Result<Vec<u32>, DecodeError> {
        let count = self.r.read_u32_leb()?;
        let mut out = Vec::with_capacity(count.min(4096) as usize);
        for _ in 0..count {
            out.push(self.r.read_u32_leb()?);
        }
        Ok(out)
    }

    fn read_limits(&mut self) -> Result<Limits, DecodeError> {
        let offset = self.r.pos();
        let flag = self.r.read_u8()?;
        match flag {
            0x00 => Ok(Limits::at_least(self.r.read_u32_leb()?)),
            0x01 => {
                let min = self.r.read_u32_leb()?;
                let max = self.r.read_u32_leb()?;
                Ok(Limits::bounded(min, max))
            }
            other => Err(DecodeError::Malformed {
                message: format!("invalid limits flag {other:#04x}"),
                offset,
            }),
        }
    }

    fn read_table_type(&mut self) -> Result<TableType, DecodeError> {
        let offset = self.r.pos();
        let element = self.r.read_value_type()?;
        if !element.is_reference() {
            return Err(DecodeError::Malformed {
                message: format!("table element type must be a reference, found {element}"),
                offset,
            });
        }
        let limits = self.read_limits()?;
        Ok(TableType { element, limits })
    }

    fn read_memory_type(&mut self) -> Result<MemoryType, DecodeError> {
        Ok(MemoryType {
            limits: self.read_limits()?,
        })
    }

    fn read_global_type(&mut self) -> Result<GlobalType, DecodeError> {
        let value_type = self.r.read_value_type()?;
        let offset = self.r.pos();
        let mutable = match self.r.read_u8()? {
            0x00 => false,
            0x01 => true,
            other => {
                return Err(DecodeError::Malformed {
                    message: format!("invalid mutability flag {other:#04x}"),
                    offset,
                })
            }
        };
        Ok(GlobalType {
            value_type,
            mutable,
        })
    }

    fn read_const_expr(&mut self) -> Result<ConstExpr, DecodeError> {
        let offset = self.r.pos();
        let opcode_byte = self.r.read_u8()?;
        let op = Opcode::from_byte(opcode_byte).ok_or(DecodeError::Malformed {
            message: format!("invalid constant expression opcode {opcode_byte:#04x}"),
            offset,
        })?;
        let expr = match op {
            Opcode::I32Const => ConstExpr::I32(self.r.read_i32_leb()?),
            Opcode::I64Const => ConstExpr::I64(self.r.read_i64_leb()?),
            Opcode::F32Const => ConstExpr::F32(f32::from_bits(self.r.read_u32_le()?)),
            Opcode::F64Const => ConstExpr::F64(f64::from_bits(self.r.read_u64_le()?)),
            Opcode::GlobalGet => ConstExpr::GlobalGet(self.r.read_u32_leb()?),
            Opcode::RefFunc => ConstExpr::RefFunc(self.r.read_u32_leb()?),
            Opcode::RefNull => {
                let t_offset = self.r.pos();
                let b = self.r.read_u8()?;
                let t = ValueType::from_byte(b).filter(|t| t.is_reference()).ok_or(
                    DecodeError::Malformed {
                        message: format!("invalid ref.null type {b:#04x}"),
                        offset: t_offset,
                    },
                )?;
                ConstExpr::RefNull(t)
            }
            other => {
                return Err(DecodeError::Malformed {
                    message: format!("unsupported constant expression opcode {other}"),
                    offset,
                })
            }
        };
        let end_offset = self.r.pos();
        let end = self.r.read_u8()?;
        if end != Opcode::End.to_byte() {
            return Err(DecodeError::Malformed {
                message: "constant expression must end with `end`".to_string(),
                offset: end_offset,
            });
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CodeBuilder, ModuleBuilder};
    use crate::encode::encode;
    use crate::opcode::Opcode;
    use crate::types::{FuncType, GlobalType, Limits, ValueType};

    fn rich_module() -> Module {
        let mut b = ModuleBuilder::new();
        let log_ty = FuncType::new(vec![ValueType::I32], vec![]);
        let log = b.import_func("env", "log", log_ty);
        let mem = b.add_memory(Limits::bounded(1, 4));
        let g = b.add_global(GlobalType::mutable(ValueType::I64), ConstExpr::I64(-5));
        let table = b.add_table(ValueType::FuncRef, Limits::at_least(4));

        let mut code = CodeBuilder::new();
        code.local_get(0)
            .i32_const(2)
            .op(Opcode::I32Mul)
            .local_tee(1)
            .call(log)
            .local_get(1);
        let double = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![ValueType::I32],
            code.finish(),
        );
        b.export_func("double", double);
        b.export_memory("mem", mem);
        b.export_global("g", g);
        b.add_elem(table, ConstExpr::I32(1), vec![double]);
        b.add_data(mem, ConstExpr::I32(16), vec![0xAA, 0xBB, 0xCC]);
        b.finish()
    }

    #[test]
    fn encode_decode_roundtrip_rich_module() {
        let module = rich_module();
        let bytes = encode(&module);
        let decoded = decode(&bytes).expect("decode");
        // code_offset differs between built (0) and decoded modules; compare
        // the semantically meaningful parts.
        assert_eq!(decoded.types, module.types);
        assert_eq!(decoded.imports, module.imports);
        assert_eq!(decoded.funcs.len(), module.funcs.len());
        for (a, b) in decoded.funcs.iter().zip(module.funcs.iter()) {
            assert_eq!(a.type_index, b.type_index);
            assert_eq!(a.locals, b.locals);
            assert_eq!(a.code, b.code);
        }
        assert_eq!(decoded.tables, module.tables);
        assert_eq!(decoded.memories, module.memories);
        assert_eq!(decoded.globals, module.globals);
        assert_eq!(decoded.exports, module.exports);
        assert_eq!(decoded.elems, module.elems);
        assert_eq!(decoded.data, module.data);
    }

    #[test]
    fn double_roundtrip_is_stable() {
        let module = rich_module();
        let bytes1 = encode(&module);
        let decoded1 = decode(&bytes1).unwrap();
        let bytes2 = encode(&decoded1);
        assert_eq!(bytes1, bytes2);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode(b"\0wsm\x01\0\0\0"), Err(DecodeError::BadHeader));
        assert_eq!(decode(b"\0as"), Err(DecodeError::BadHeader));
        assert_eq!(
            decode(b"\0asm\x02\0\0\0"),
            Err(DecodeError::BadHeader)
        );
    }

    #[test]
    fn out_of_order_sections_rejected() {
        // Header + code section (id 10, empty) + type section (id 1, empty).
        let bytes = vec![
            0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00, // header
            10, 1, 0, // code section with zero bodies
            1, 1, 0, // type section with zero entries
        ];
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::SectionOrder { section: 1 })
        ));
    }

    #[test]
    fn section_size_mismatch_rejected() {
        // Type section claims 3 bytes but contains a valid empty vec (1 byte).
        let bytes = vec![
            0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00, // header
            1, 3, 0, 0x60, 0x00, // malformed
        ];
        let r = decode(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn function_count_mismatch_rejected() {
        // Function section declares one function but there is no code section.
        let bytes = vec![
            0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00, // header
            1, 4, 1, 0x60, 0, 0, // type section: one type [] -> []
            3, 2, 1, 0, // function section: one func of type 0
        ];
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::FunctionCountMismatch { declared: 1, bodies: 0 })
        ));
    }

    #[test]
    fn custom_sections_are_preserved() {
        let mut module = rich_module();
        module.custom.push(CustomSection {
            name: "name".to_string(),
            bytes: vec![1, 2, 3, 4],
        });
        let bytes = encode(&module);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.custom.len(), 1);
        assert_eq!(decoded.custom[0].name, "name");
        assert_eq!(decoded.custom[0].bytes, vec![1, 2, 3, 4]);
    }

    #[test]
    fn truncated_module_rejected() {
        let module = rich_module();
        let bytes = encode(&module);
        for cut in [9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn start_section_roundtrip() {
        let mut b = ModuleBuilder::new();
        let f = b.add_func(FuncType::new(vec![], vec![]), vec![], CodeBuilder::new().finish());
        b.set_start(f);
        let m = b.finish();
        let decoded = decode(&encode(&m)).unwrap();
        assert_eq!(decoded.start, Some(f));
    }
}
