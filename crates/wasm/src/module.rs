//! The in-memory representation of a WebAssembly module.
//!
//! Function bodies are stored as raw bytecode (exactly as they appear in the
//! binary format) so that the in-place interpreter and single-pass compiler
//! can work directly off the original bytes, preserving bytecode offsets for
//! instrumentation, debugging, and tier transfer.

use crate::types::{
    ExternalKind, FuncType, GlobalType, MemoryType, TableType, ValueType,
};

/// A constant initializer expression, used for globals, element segment
/// offsets, and data segment offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstExpr {
    /// An `i32.const` value.
    I32(i32),
    /// An `i64.const` value.
    I64(i64),
    /// An `f32.const` value.
    F32(f32),
    /// An `f64.const` value.
    F64(f64),
    /// A `ref.null` of the given reference type.
    RefNull(ValueType),
    /// A `ref.func` of the given function index.
    RefFunc(u32),
    /// A `global.get` of an (imported, immutable) global.
    GlobalGet(u32),
}

impl ConstExpr {
    /// The value type this expression produces, given the module's globals
    /// for `global.get` resolution.
    pub fn value_type(&self, globals: &[GlobalType]) -> Option<ValueType> {
        Some(match *self {
            ConstExpr::I32(_) => ValueType::I32,
            ConstExpr::I64(_) => ValueType::I64,
            ConstExpr::F32(_) => ValueType::F32,
            ConstExpr::F64(_) => ValueType::F64,
            ConstExpr::RefNull(t) => t,
            ConstExpr::RefFunc(_) => ValueType::FuncRef,
            ConstExpr::GlobalGet(i) => globals.get(i as usize)?.value_type,
        })
    }
}

/// What an import provides.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportKind {
    /// A function with the given type index.
    Func(u32),
    /// A table.
    Table(TableType),
    /// A linear memory.
    Memory(MemoryType),
    /// A global.
    Global(GlobalType),
}

impl ImportKind {
    /// The external kind of this import.
    pub fn external_kind(&self) -> ExternalKind {
        match self {
            ImportKind::Func(_) => ExternalKind::Func,
            ImportKind::Table(_) => ExternalKind::Table,
            ImportKind::Memory(_) => ExternalKind::Memory,
            ImportKind::Global(_) => ExternalKind::Global,
        }
    }
}

/// An import entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// The module namespace (e.g. `"env"`).
    pub module: String,
    /// The field name within the namespace.
    pub name: String,
    /// What is imported.
    pub kind: ImportKind,
}

/// An export entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// The exported name.
    pub name: String,
    /// What kind of entity is exported.
    pub kind: ExternalKind,
    /// The index of the exported entity in its index space.
    pub index: u32,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// The global's type and mutability.
    pub ty: GlobalType,
    /// Its constant initializer.
    pub init: ConstExpr,
}

/// An active element segment initializing a table with function references.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemSegment {
    /// The table to initialize.
    pub table_index: u32,
    /// Where in the table to start writing.
    pub offset: ConstExpr,
    /// Function indices to write.
    pub func_indices: Vec<u32>,
}

/// An active data segment initializing linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// The memory to initialize.
    pub memory_index: u32,
    /// Where in memory to start writing.
    pub offset: ConstExpr,
    /// Bytes to write.
    pub bytes: Vec<u8>,
}

/// A function defined in this module (not imported).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Index into the module's type section.
    pub type_index: u32,
    /// Grouped local declarations: (count, type), as in the binary format.
    pub locals: Vec<(u32, ValueType)>,
    /// The instruction bytes of the body, including the terminating `end`.
    pub code: Vec<u8>,
    /// Offset of `code[0]` within the original binary, when decoded from one.
    /// Zero for built modules. Only used for diagnostics.
    pub code_offset: usize,
}

impl FuncDecl {
    /// The number of declared (non-parameter) locals after expanding groups.
    pub fn declared_local_count(&self) -> u32 {
        self.locals.iter().map(|(n, _)| *n).sum()
    }

    /// Expands the grouped local declarations into a flat list of types.
    pub fn declared_local_types(&self) -> Vec<ValueType> {
        let mut out = Vec::with_capacity(self.declared_local_count() as usize);
        for &(count, ty) in &self.locals {
            for _ in 0..count {
                out.push(ty);
            }
        }
        out
    }
}

/// A custom (name, bytes) section, preserved but not interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomSection {
    /// The section name.
    pub name: String,
    /// The raw payload.
    pub bytes: Vec<u8>,
}

/// A complete WebAssembly module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The type (signature) section.
    pub types: Vec<FuncType>,
    /// Imports, in declaration order.
    pub imports: Vec<Import>,
    /// Functions defined in this module. Function index space =
    /// imported functions followed by these.
    pub funcs: Vec<FuncDecl>,
    /// Tables defined in this module.
    pub tables: Vec<TableType>,
    /// Memories defined in this module.
    pub memories: Vec<MemoryType>,
    /// Globals defined in this module.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Optional start function index.
    pub start: Option<u32>,
    /// Element segments.
    pub elems: Vec<ElemSegment>,
    /// Data segments.
    pub data: Vec<DataSegment>,
    /// Custom sections (preserved verbatim).
    pub custom: Vec<CustomSection>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// A stable 64-bit hash of the module's *content*: FNV-1a over the
    /// module's binary-format encoding (see [`crate::encode::encode`]).
    ///
    /// Two modules hash equal exactly when they encode to the same bytes, so
    /// the hash is independent of how the in-memory value was produced
    /// (decoded, built programmatically, or cloned) and stable across
    /// processes — the property the engine's keyed code cache needs. The
    /// encoding pass makes this O(module size); callers that key caches
    /// should hash once and reuse the value.
    pub fn content_hash(&self) -> u64 {
        crate::hash::fnv1a_64(&crate::encode::encode(self))
    }

    /// Parses the module's `name` custom section into its typed form (an
    /// empty [`crate::names::NameSection`] when the module has none).
    ///
    /// Parsing is tolerant — a malformed section yields whatever prefix
    /// decoded cleanly — and runs on demand: the raw bytes stay preserved
    /// verbatim in [`Module::custom`], so this never perturbs round trips.
    pub fn name_section(&self) -> crate::names::NameSection {
        self.custom
            .iter()
            .find(|c| c.name == "name")
            .map(|c| crate::names::NameSection::parse(&c.bytes))
            .unwrap_or_default()
    }

    /// Replaces the module's `name` custom section with the canonical
    /// encoding of `names` (removing it entirely when `names` is empty).
    pub fn set_name_section(&mut self, names: &crate::names::NameSection) {
        self.custom.retain(|c| c.name != "name");
        if !names.is_empty() {
            self.custom.push(CustomSection {
                name: "name".to_string(),
                bytes: names.encode(),
            });
        }
    }

    /// The number of imported functions (they occupy the first indices of the
    /// function index space).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Func(_)))
            .count() as u32
    }

    /// The number of imported globals.
    pub fn num_imported_globals(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Global(_)))
            .count() as u32
    }

    /// The number of imported memories.
    pub fn num_imported_memories(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Memory(_)))
            .count() as u32
    }

    /// The number of imported tables.
    pub fn num_imported_tables(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.kind, ImportKind::Table(_)))
            .count() as u32
    }

    /// The total number of functions in the index space (imports + defined).
    pub fn num_funcs(&self) -> u32 {
        self.num_imported_funcs() + self.funcs.len() as u32
    }

    /// The total number of globals in the index space (imports + defined).
    pub fn num_globals(&self) -> u32 {
        self.num_imported_globals() + self.globals.len() as u32
    }

    /// The total number of memories (imports + defined).
    pub fn num_memories(&self) -> u32 {
        self.num_imported_memories() + self.memories.len() as u32
    }

    /// The total number of tables (imports + defined).
    pub fn num_tables(&self) -> u32 {
        self.num_imported_tables() + self.tables.len() as u32
    }

    /// True if `func_index` refers to an imported function.
    pub fn is_imported_func(&self, func_index: u32) -> bool {
        func_index < self.num_imported_funcs()
    }

    /// The type index of the function at `func_index`, imported or defined.
    pub fn func_type_index(&self, func_index: u32) -> Option<u32> {
        let num_imports = self.num_imported_funcs();
        if func_index < num_imports {
            self.imports
                .iter()
                .filter_map(|i| match i.kind {
                    ImportKind::Func(t) => Some(t),
                    _ => None,
                })
                .nth(func_index as usize)
        } else {
            self.funcs
                .get((func_index - num_imports) as usize)
                .map(|f| f.type_index)
        }
    }

    /// The signature of the function at `func_index`.
    pub fn func_type(&self, func_index: u32) -> Option<&FuncType> {
        let ti = self.func_type_index(func_index)?;
        self.types.get(ti as usize)
    }

    /// The body of the function at `func_index`, or `None` if it is imported.
    pub fn func_decl(&self, func_index: u32) -> Option<&FuncDecl> {
        let num_imports = self.num_imported_funcs();
        if func_index < num_imports {
            None
        } else {
            self.funcs.get((func_index - num_imports) as usize)
        }
    }

    /// Converts a defined-function index (0-based into `funcs`) to a
    /// function-space index.
    pub fn defined_to_func_index(&self, defined_index: u32) -> u32 {
        self.num_imported_funcs() + defined_index
    }

    /// The complete flat list of local slot types for a defined function:
    /// its parameters followed by its declared locals. This is exactly the
    /// base of the frame's value-stack layout.
    pub fn func_local_types(&self, func_index: u32) -> Option<Vec<ValueType>> {
        let decl = self.func_decl(func_index)?;
        let sig = self.func_type(func_index)?;
        let mut locals = sig.params.clone();
        locals.extend(decl.declared_local_types());
        Some(locals)
    }

    /// The type of the global at `global_index`, imported or defined.
    pub fn global_type(&self, global_index: u32) -> Option<GlobalType> {
        let num_imports = self.num_imported_globals();
        if global_index < num_imports {
            self.imports
                .iter()
                .filter_map(|i| match i.kind {
                    ImportKind::Global(g) => Some(g),
                    _ => None,
                })
                .nth(global_index as usize)
        } else {
            self.globals
                .get((global_index - num_imports) as usize)
                .map(|g| g.ty)
        }
    }

    /// The types of all globals in index-space order.
    pub fn global_types(&self) -> Vec<GlobalType> {
        (0..self.num_globals())
            .filter_map(|i| self.global_type(i))
            .collect()
    }

    /// The memory type at `memory_index` (imported or defined).
    pub fn memory_type(&self, memory_index: u32) -> Option<MemoryType> {
        let num_imports = self.num_imported_memories();
        if memory_index < num_imports {
            self.imports
                .iter()
                .filter_map(|i| match i.kind {
                    ImportKind::Memory(m) => Some(m),
                    _ => None,
                })
                .nth(memory_index as usize)
        } else {
            self.memories
                .get((memory_index - num_imports) as usize)
                .copied()
        }
    }

    /// The table type at `table_index` (imported or defined).
    pub fn table_type(&self, table_index: u32) -> Option<TableType> {
        let num_imports = self.num_imported_tables();
        if table_index < num_imports {
            self.imports
                .iter()
                .filter_map(|i| match i.kind {
                    ImportKind::Table(t) => Some(t),
                    _ => None,
                })
                .nth(table_index as usize)
        } else {
            self.tables
                .get((table_index - num_imports) as usize)
                .copied()
        }
    }

    /// Finds an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Finds an exported function's index by name.
    pub fn exported_func(&self, name: &str) -> Option<u32> {
        self.exports
            .iter()
            .find(|e| e.name == name && e.kind == ExternalKind::Func)
            .map(|e| e.index)
    }

    /// The total number of bytecode bytes across all defined function bodies.
    /// This is the denominator of the paper's "compile time per byte of input
    /// code" metric (Fig. 8).
    pub fn total_code_bytes(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Limits;

    #[test]
    fn content_hash_is_stable_and_clone_invariant() {
        let m = test_module();
        let h = m.content_hash();
        assert_eq!(h, m.content_hash(), "hashing is deterministic");
        assert_eq!(h, m.clone().content_hash(), "clones hash identically");
        // The hash is exactly FNV-1a over the encoding, so a decode/encode
        // round trip preserves it.
        let decoded = crate::decode::decode(&crate::encode::encode(&m)).unwrap();
        assert_eq!(h, decoded.content_hash());
        assert_eq!(h, crate::hash::fnv1a_64(&crate::encode::encode(&m)));
    }

    #[test]
    fn content_hash_distinguishes_modules() {
        let a = test_module();
        let mut b = test_module();
        b.funcs[0].code = vec![0x01, 0x0B];
        let mut c = test_module();
        c.globals[0].init = ConstExpr::I32(8);
        assert_ne!(a.content_hash(), b.content_hash(), "code change changes the hash");
        assert_ne!(a.content_hash(), c.content_hash(), "global init change changes the hash");
        assert_ne!(Module::new().content_hash(), a.content_hash());
    }

    fn test_module() -> Module {
        let mut m = Module::new();
        m.types.push(FuncType::new(vec![ValueType::I32], vec![ValueType::I32]));
        m.types.push(FuncType::new(vec![], vec![]));
        m.imports.push(Import {
            module: "env".to_string(),
            name: "host_fn".to_string(),
            kind: ImportKind::Func(1),
        });
        m.imports.push(Import {
            module: "env".to_string(),
            name: "g".to_string(),
            kind: ImportKind::Global(GlobalType::immutable(ValueType::I64)),
        });
        m.funcs.push(FuncDecl {
            type_index: 0,
            locals: vec![(2, ValueType::I32), (1, ValueType::F64)],
            code: vec![0x0B],
            code_offset: 0,
        });
        m.globals.push(Global {
            ty: GlobalType::mutable(ValueType::I32),
            init: ConstExpr::I32(7),
        });
        m.memories.push(MemoryType {
            limits: Limits::bounded(1, 4),
        });
        m.tables.push(TableType {
            element: ValueType::FuncRef,
            limits: Limits::at_least(2),
        });
        m.exports.push(Export {
            name: "run".to_string(),
            kind: ExternalKind::Func,
            index: 1,
        });
        m
    }

    #[test]
    fn index_spaces_account_for_imports() {
        let m = test_module();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.num_imported_globals(), 1);
        assert_eq!(m.num_funcs(), 2);
        assert_eq!(m.num_globals(), 2);
        assert!(m.is_imported_func(0));
        assert!(!m.is_imported_func(1));
        assert_eq!(m.defined_to_func_index(0), 1);
    }

    #[test]
    fn func_type_lookup_spans_imports_and_definitions() {
        let m = test_module();
        assert_eq!(m.func_type_index(0), Some(1));
        assert_eq!(m.func_type_index(1), Some(0));
        assert_eq!(m.func_type_index(2), None);
        assert_eq!(m.func_type(1).unwrap().params, vec![ValueType::I32]);
        assert!(m.func_decl(0).is_none());
        assert!(m.func_decl(1).is_some());
    }

    #[test]
    fn local_types_include_params_then_locals() {
        let m = test_module();
        let locals = m.func_local_types(1).unwrap();
        assert_eq!(
            locals,
            vec![
                ValueType::I32,
                ValueType::I32,
                ValueType::I32,
                ValueType::F64
            ]
        );
        assert!(m.func_local_types(0).is_none());
    }

    #[test]
    fn global_type_lookup_spans_imports_and_definitions() {
        let m = test_module();
        assert_eq!(
            m.global_type(0),
            Some(GlobalType::immutable(ValueType::I64))
        );
        assert_eq!(m.global_type(1), Some(GlobalType::mutable(ValueType::I32)));
        assert_eq!(m.global_type(2), None);
        assert_eq!(m.global_types().len(), 2);
    }

    #[test]
    fn export_lookup() {
        let m = test_module();
        assert!(m.export("run").is_some());
        assert_eq!(m.exported_func("run"), Some(1));
        assert_eq!(m.exported_func("missing"), None);
    }

    #[test]
    fn func_decl_local_expansion() {
        let decl = FuncDecl {
            type_index: 0,
            locals: vec![(3, ValueType::I64), (1, ValueType::F32)],
            code: vec![0x0B],
            code_offset: 0,
        };
        assert_eq!(decl.declared_local_count(), 4);
        assert_eq!(
            decl.declared_local_types(),
            vec![
                ValueType::I64,
                ValueType::I64,
                ValueType::I64,
                ValueType::F32
            ]
        );
    }

    #[test]
    fn const_expr_types() {
        let globals = vec![GlobalType::immutable(ValueType::F32)];
        assert_eq!(ConstExpr::I32(1).value_type(&globals), Some(ValueType::I32));
        assert_eq!(
            ConstExpr::RefNull(ValueType::ExternRef).value_type(&globals),
            Some(ValueType::ExternRef)
        );
        assert_eq!(
            ConstExpr::RefFunc(0).value_type(&globals),
            Some(ValueType::FuncRef)
        );
        assert_eq!(
            ConstExpr::GlobalGet(0).value_type(&globals),
            Some(ValueType::F32)
        );
        assert_eq!(ConstExpr::GlobalGet(1).value_type(&globals), None);
    }

    #[test]
    fn total_code_bytes_sums_bodies() {
        let m = test_module();
        assert_eq!(m.total_code_bytes(), 1);
    }

    #[test]
    fn memory_and_table_lookup() {
        let m = test_module();
        assert!(m.memory_type(0).is_some());
        assert!(m.memory_type(1).is_none());
        assert_eq!(m.table_type(0).unwrap().element, ValueType::FuncRef);
    }
}
