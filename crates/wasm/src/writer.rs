//! A byte writer used by the binary encoder and the function-body builder.

use crate::leb;
use crate::types::ValueType;

/// An append-only byte buffer with WebAssembly-flavoured write helpers.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    bytes: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The number of bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the writer and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, b: u8) {
        self.bytes.push(b);
    }

    /// Writes raw bytes.
    pub fn write_bytes(&mut self, data: &[u8]) {
        self.bytes.extend_from_slice(data);
    }

    /// Writes a 32-bit little-endian value.
    pub fn write_u32_le(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a 64-bit little-endian value.
    pub fn write_u64_le(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an unsigned 32-bit LEB128 value.
    pub fn write_u32_leb(&mut self, v: u32) {
        leb::write_unsigned(&mut self.bytes, v as u64);
    }

    /// Writes an unsigned 64-bit LEB128 value.
    pub fn write_u64_leb(&mut self, v: u64) {
        leb::write_unsigned(&mut self.bytes, v);
    }

    /// Writes a signed 32-bit LEB128 value.
    pub fn write_i32_leb(&mut self, v: i32) {
        leb::write_signed(&mut self.bytes, v as i64);
    }

    /// Writes a signed 64-bit LEB128 value.
    pub fn write_i64_leb(&mut self, v: i64) {
        leb::write_signed(&mut self.bytes, v);
    }

    /// Writes a length-prefixed UTF-8 name.
    pub fn write_name(&mut self, name: &str) {
        self.write_u32_leb(name.len() as u32);
        self.write_bytes(name.as_bytes());
    }

    /// Writes a value type byte.
    pub fn write_value_type(&mut self, t: ValueType) {
        self.write_u8(t.to_byte());
    }

    /// Writes another writer's contents prefixed by their length in bytes.
    /// This is the shape of every section and code entry in the binary format.
    pub fn write_sized(&mut self, inner: &ByteWriter) {
        self.write_u32_leb(inner.len() as u32);
        self.write_bytes(inner.as_bytes());
    }
}

impl From<ByteWriter> for Vec<u8> {
    fn from(w: ByteWriter) -> Vec<u8> {
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ByteReader;

    #[test]
    fn writes_and_reads_back() {
        let mut w = ByteWriter::new();
        w.write_u8(7);
        w.write_u32_le(0xDEADBEEF);
        w.write_u64_le(0x0123456789ABCDEF);
        w.write_u32_leb(300);
        w.write_i32_leb(-300);
        w.write_i64_leb(i64::MIN);
        w.write_name("main");
        w.write_value_type(ValueType::F64);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32_le().unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_u64_le().unwrap(), 0x0123456789ABCDEF);
        assert_eq!(r.read_u32_leb().unwrap(), 300);
        assert_eq!(r.read_i32_leb().unwrap(), -300);
        assert_eq!(r.read_i64_leb().unwrap(), i64::MIN);
        assert_eq!(r.read_name().unwrap(), "main");
        assert_eq!(r.read_value_type().unwrap(), ValueType::F64);
        assert!(r.is_at_end());
    }

    #[test]
    fn sized_sections_are_length_prefixed() {
        let mut inner = ByteWriter::new();
        inner.write_bytes(&[1, 2, 3]);
        let mut outer = ByteWriter::new();
        outer.write_sized(&inner);
        assert_eq!(outer.as_bytes(), &[3, 1, 2, 3]);
        assert_eq!(outer.len(), 4);
        assert!(!outer.is_empty());
    }
}
