//! Stable, dependency-free content hashing (FNV-1a, 64-bit).
//!
//! The engine's code cache keys compiled artifacts by module *content*, so
//! the hash must be stable across processes and runs — unlike
//! [`std::collections::hash_map::RandomState`], which is seeded per process.
//! FNV-1a is the classic fit for this: tiny, allocation-free, and fast on the
//! short byte strings (encoded modules, option fingerprints) hashed here.
//! It is not cryptographic; cache keys additionally carry the inputs that
//! produced them, and collisions only cost a spurious cache hit between
//! modules an adversary deliberately constructed.

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte string with FNV-1a (64-bit) in one call.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// An incremental FNV-1a 64-bit hasher for building fingerprints out of
/// heterogeneous fields.
///
/// Multi-byte integers are folded in little-endian order; every `write_*`
/// helper is equivalent to `write(&value.to_le_bytes())`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds a byte string into the state.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv64 {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds one byte into the state.
    pub fn write_u8(&mut self, v: u8) -> &mut Fnv64 {
        self.write(&[v])
    }

    /// Folds a `u32` into the state (little-endian).
    pub fn write_u32(&mut self, v: u32) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// Folds a `u64` into the state (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv64 {
        self.write(&v.to_le_bytes())
    }

    /// Folds a boolean into the state as one byte.
    pub fn write_bool(&mut self, v: bool) -> &mut Fnv64 {
        self.write_u8(v as u8)
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values from the FNV specification / common test suites.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn helpers_fold_little_endian_bytes() {
        let mut a = Fnv64::new();
        a.write_u32(0x0403_0201).write_u64(5).write_u8(9).write_bool(true);
        let mut b = Fnv64::new();
        b.write(&[1, 2, 3, 4]);
        b.write(&5u64.to_le_bytes());
        b.write(&[9, 1]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fnv1a_64(b"module-a"), fnv1a_64(b"module-b"));
        assert_ne!(Fnv64::new().write_u32(1).finish(), Fnv64::new().write_u32(2).finish());
    }
}
