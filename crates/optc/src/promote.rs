//! Whole-function promotion of local-variable slots to registers.
//!
//! This is explicitly a **virtual-ISA-level pass over [`CodeBuffer`]**: it
//! rewrites finished `MachInst` sequences, inspecting and transforming
//! individual instructions — an IR-like capability the [`machine::Masm`]
//! macro-assembler boundary intentionally does not expose, because baseline
//! backends only append. It therefore runs only on the virtual-ISA backend
//! (the executable one); a byte-level backend would re-emit the promoted
//! code through its own `Masm` instead. See DESIGN.md, "The macro-assembler
//! boundary".
//!
//! The baseline compiler gives up its register assignments at every
//! control-flow boundary (its "spill the rest" snapshot strategy), so code in
//! a loop reloads its locals from the value stack on every iteration. The
//! optimizing tier removes that traffic: each frequently-accessed,
//! non-reference local is assigned a dedicated register for the whole
//! function. The register is initialized from the slot in an expanded
//! prologue, every slot load/store of that local becomes a register move, and
//! the slot is refreshed before observable points (calls, indirect calls,
//! probes, traps, and returns) so the garbage collector, instrumentation, and
//! cross-tier calls still see a canonical frame.

use machine::asm::CodeBuffer;
use machine::inst::MachInst;
use machine::reg::{AnyReg, FReg, Reg, NUM_FPRS, NUM_GPRS};
use spc::CompiledFunction;
use std::collections::{HashMap, HashSet};
use wasm::types::ValueType;

/// Per-function statistics gathered by the analysis sweeps.
#[derive(Debug, Clone, Default)]
pub struct CodeAnalysis {
    /// Number of accesses (loads + stores) per slot index.
    pub slot_accesses: HashMap<u32, u32>,
    /// Every register mentioned anywhere in the code.
    pub used_regs: HashSet<AnyReg>,
    /// Number of call-like instructions.
    pub observable_points: u32,
}

/// Analyzes a compiled function, counting slot accesses and register usage.
pub fn analyze(cf: &CompiledFunction) -> CodeAnalysis {
    let mut analysis = CodeAnalysis::default();
    for inst in cf.code.insts() {
        match inst {
            MachInst::LoadSlot { slot, .. }
            | MachInst::StoreSlot { slot, .. }
            | MachInst::StoreSlotImm { slot, .. } => {
                *analysis.slot_accesses.entry(*slot).or_insert(0) += 1;
            }
            MachInst::Call { .. }
            | MachInst::CallIndirect { .. }
            | MachInst::ProbeRuntime { .. }
            | MachInst::ProbeDirect { .. } => analysis.observable_points += 1,
            _ => {}
        }
        for_each_reg(inst, |r| {
            analysis.used_regs.insert(r);
        });
    }
    analysis
}

/// Promotes eligible locals of `cf` to registers. `local_types` are the
/// function's local slot types (parameters followed by declared locals);
/// reference-typed locals are never promoted so root scanning stays precise.
pub fn promote_locals(
    cf: CompiledFunction,
    local_types: &[ValueType],
    analysis: &CodeAnalysis,
) -> CompiledFunction {
    // Pick promotion registers from the top of each bank, skipping any the
    // generated code already uses.
    let free_gprs: Vec<Reg> = (1..NUM_GPRS as u8)
        .rev()
        .map(Reg)
        .filter(|r| !analysis.used_regs.contains(&AnyReg::Gpr(*r)))
        .collect();
    let free_fprs: Vec<FReg> = (1..NUM_FPRS as u8)
        .rev()
        .map(FReg)
        .filter(|r| !analysis.used_regs.contains(&AnyReg::Fpr(*r)))
        .collect();

    // Candidate locals by access count, most-accessed first.
    let mut candidates: Vec<(u32, u32)> = analysis
        .slot_accesses
        .iter()
        .filter(|(slot, _)| (**slot as usize) < local_types.len())
        .filter(|(slot, _)| !local_types[**slot as usize].is_reference())
        .map(|(slot, count)| (*slot, *count))
        .collect();
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut assignment: HashMap<u32, AnyReg> = HashMap::new();
    let mut next_gpr = 0usize;
    let mut next_fpr = 0usize;
    for (slot, _count) in candidates {
        let ty = local_types[slot as usize];
        if ty.is_float() {
            if next_fpr < free_fprs.len() {
                assignment.insert(slot, AnyReg::Fpr(free_fprs[next_fpr]));
                next_fpr += 1;
            }
        } else if next_gpr < free_gprs.len() {
            assignment.insert(slot, AnyReg::Gpr(free_gprs[next_gpr]));
            next_gpr += 1;
        }
    }
    if assignment.is_empty() {
        return cf;
    }
    rewrite(cf, &assignment)
}

fn rewrite(cf: CompiledFunction, assignment: &HashMap<u32, AnyReg>) -> CompiledFunction {
    let old_insts = cf.code.insts();
    let mut new_insts: Vec<MachInst> = Vec::with_capacity(old_insts.len() + assignment.len() * 2);
    // Where branches to an old index should land (includes any flush code
    // inserted before the instruction).
    let mut branch_view = vec![0usize; old_insts.len() + 1];
    // Where the old instruction itself landed (for call/probe metadata).
    let mut exact_view = vec![0usize; old_insts.len()];

    // Expanded prologue: initialize every promoted register from its slot.
    let mut slots: Vec<(&u32, &AnyReg)> = assignment.iter().collect();
    slots.sort_by_key(|(slot, _)| **slot);
    for (slot, reg) in &slots {
        new_insts.push(MachInst::LoadSlot {
            dst: **reg,
            slot: **slot,
        });
    }

    for (i, inst) in old_insts.iter().enumerate() {
        branch_view[i] = new_insts.len();
        let needs_flush = matches!(
            inst,
            MachInst::Call { .. }
                | MachInst::CallIndirect { .. }
                | MachInst::ProbeRuntime { .. }
                | MachInst::ProbeDirect { .. }
                | MachInst::Trap { .. }
                | MachInst::Return
        );
        if needs_flush {
            for (slot, reg) in &slots {
                new_insts.push(MachInst::StoreSlot {
                    slot: **slot,
                    src: **reg,
                });
            }
        }
        exact_view[i] = new_insts.len();
        let rewritten = match inst {
            MachInst::LoadSlot { dst, slot } if assignment.contains_key(slot) => {
                move_between(*dst, assignment[slot])
            }
            MachInst::StoreSlot { slot, src } if assignment.contains_key(slot) => {
                move_between(assignment[slot], *src)
            }
            MachInst::StoreSlotImm { slot, imm } if assignment.contains_key(slot) => {
                match assignment[slot] {
                    AnyReg::Gpr(dst) => MachInst::MovImm { dst, imm: *imm },
                    AnyReg::Fpr(dst) => MachInst::FMovImm {
                        dst,
                        bits: *imm as u64,
                    },
                }
            }
            other => other.clone(),
        };
        new_insts.push(rewritten);
    }
    branch_view[old_insts.len()] = new_insts.len();

    let new_labels: Vec<usize> = cf
        .code
        .label_targets()
        .iter()
        .map(|&t| branch_view[t.min(old_insts.len())])
        .collect();
    let new_source_map: Vec<(usize, u32)> = cf
        .code
        .source_map()
        .iter()
        .map(|&(i, off)| (branch_view[i.min(old_insts.len())], off))
        .collect();
    let new_call_sites = cf
        .call_sites
        .iter()
        .map(|(&i, &info)| (exact_view[i], info))
        .collect();
    let new_probe_sites = cf
        .probe_sites
        .iter()
        .map(|(&i, &info)| (exact_view[i], info))
        .collect();
    let mut new_stackmaps = spc::StackmapTable::default();
    let mut maps: Vec<spc::Stackmap> = cf
        .stackmaps
        .iter()
        .map(|m| spc::Stackmap {
            inst_index: exact_view[m.inst_index],
            ref_slots: m.ref_slots.clone(),
        })
        .collect();
    maps.sort_by_key(|m| m.inst_index);
    for m in maps {
        new_stackmaps.push(m);
    }

    let code = CodeBuffer::from_raw_parts(new_insts, new_labels, new_source_map);
    CompiledFunction {
        code,
        call_sites: new_call_sites,
        probe_sites: new_probe_sites,
        stackmaps: new_stackmaps,
        ..cf
    }
}

fn move_between(dst: AnyReg, src: AnyReg) -> MachInst {
    match (dst, src) {
        (AnyReg::Gpr(d), AnyReg::Gpr(s)) => MachInst::Mov { dst: d, src: s },
        (AnyReg::Fpr(d), AnyReg::Fpr(s)) => MachInst::FMov { dst: d, src: s },
        // Cross-bank moves do not occur: promotion banks follow local types,
        // and the baseline compiler keeps banks consistent with types.
        (d, s) => {
            debug_assert!(false, "cross-bank move {d} <- {s}");
            MachInst::Nop
        }
    }
}

/// Calls `f` for every register operand of `inst`.
pub fn for_each_reg(inst: &MachInst, mut f: impl FnMut(AnyReg)) {
    use MachInst::*;
    match inst {
        MovImm { dst, .. } => f(AnyReg::Gpr(*dst)),
        FMovImm { dst, .. } => f(AnyReg::Fpr(*dst)),
        Mov { dst, src } => {
            f(AnyReg::Gpr(*dst));
            f(AnyReg::Gpr(*src));
        }
        FMov { dst, src } => {
            f(AnyReg::Fpr(*dst));
            f(AnyReg::Fpr(*src));
        }
        LoadSlot { dst, .. } => f(*dst),
        StoreSlot { src, .. } => f(*src),
        Alu { dst, a, b, .. } | Cmp { dst, a, b, .. } => {
            f(AnyReg::Gpr(*dst));
            f(AnyReg::Gpr(*a));
            f(AnyReg::Gpr(*b));
        }
        AluImm { dst, a, .. } | CmpImm { dst, a, .. } => {
            f(AnyReg::Gpr(*dst));
            f(AnyReg::Gpr(*a));
        }
        Unop { dst, src, .. } => {
            f(AnyReg::Gpr(*dst));
            f(AnyReg::Gpr(*src));
        }
        FAlu { dst, a, b, .. } => {
            f(AnyReg::Fpr(*dst));
            f(AnyReg::Fpr(*a));
            f(AnyReg::Fpr(*b));
        }
        FUnop { dst, src, .. } => {
            f(AnyReg::Fpr(*dst));
            f(AnyReg::Fpr(*src));
        }
        FCmp { dst, a, b, .. } => {
            f(AnyReg::Gpr(*dst));
            f(AnyReg::Fpr(*a));
            f(AnyReg::Fpr(*b));
        }
        Convert { dst, src, .. } => {
            f(*dst);
            f(*src);
        }
        Select {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            f(AnyReg::Gpr(*dst));
            f(AnyReg::Gpr(*cond));
            f(AnyReg::Gpr(*if_true));
            f(AnyReg::Gpr(*if_false));
        }
        FSelect {
            dst,
            cond,
            if_true,
            if_false,
        } => {
            f(AnyReg::Fpr(*dst));
            f(AnyReg::Gpr(*cond));
            f(AnyReg::Fpr(*if_true));
            f(AnyReg::Fpr(*if_false));
        }
        MemLoad { dst, addr, .. } => {
            f(*dst);
            f(AnyReg::Gpr(*addr));
        }
        MemStore { src, addr, .. } => {
            f(*src);
            f(AnyReg::Gpr(*addr));
        }
        MemorySize { dst } => f(AnyReg::Gpr(*dst)),
        MemoryGrow { dst, delta } => {
            f(AnyReg::Gpr(*dst));
            f(AnyReg::Gpr(*delta));
        }
        GlobalGet { dst, .. } => f(*dst),
        GlobalSet { src, .. } => f(*src),
        BrIf { cond, .. } => f(AnyReg::Gpr(*cond)),
        BrTable { index, .. } => f(AnyReg::Gpr(*index)),
        CallIndirect { index, .. } => f(AnyReg::Gpr(*index)),
        ProbeTosValue { src, .. } => f(*src),
        Nop | StoreSlotImm { .. } | StoreTag { .. } | Jump { .. } | Call { .. }
        | ProbeRuntime { .. } | ProbeDirect { .. } | ProbeCounter { .. } | Trap { .. }
        | Return => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::inst::{AluOp, Width};

    #[test]
    fn for_each_reg_enumerates_operands() {
        let mut seen = Vec::new();
        for_each_reg(
            &MachInst::Alu {
                op: AluOp::Add,
                width: Width::W32,
                dst: Reg(1),
                a: Reg(2),
                b: Reg(3),
            },
            |r| seen.push(r),
        );
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&AnyReg::Gpr(Reg(2))));

        let mut seen = Vec::new();
        for_each_reg(&MachInst::Nop, |r| seen.push(r));
        assert!(seen.is_empty());

        let mut seen = Vec::new();
        for_each_reg(
            &MachInst::MemLoad {
                dst: AnyReg::Fpr(FReg(4)),
                addr: Reg(5),
                offset: 0,
                width: 8,
                signed: false,
                dst_width: Width::W64,
            },
            |r| seen.push(r),
        );
        assert_eq!(seen, vec![AnyReg::Fpr(FReg(4)), AnyReg::Gpr(Reg(5))]);
    }

    #[test]
    fn move_between_matches_banks() {
        assert_eq!(
            move_between(AnyReg::Gpr(Reg(1)), AnyReg::Gpr(Reg(2))),
            MachInst::Mov { dst: Reg(1), src: Reg(2) }
        );
        assert_eq!(
            move_between(AnyReg::Fpr(FReg(1)), AnyReg::Fpr(FReg(2))),
            MachInst::FMov { dst: FReg(1), src: FReg(2) }
        );
    }
}
