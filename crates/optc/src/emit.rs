//! Emission: allocated SSA → any [`Masm`] backend.
//!
//! Everything flows through the same macro-assembler trait the baseline
//! compiler uses, so the optimizing tier serves the virtual ISA (the
//! executable backend) and x86-64 (real machine bytes) from one emitter —
//! the fix for the old slot-promotion pass, which could only rewrite
//! virtual-ISA instruction buffers.
//!
//! Frame layout (slots relative to the frame base):
//!
//! ```text
//! [ locals ][ interp operand region* ][ spill slots ][ call arg zone ]
//! ```
//!
//! `*` only present when the function has runtime/direct probe sites, whose
//! observable frames (and tier-down) need the interpreter's layout.
//! Call arguments are passed at the *top* of the frame — the engine reads
//! the zone's base from the call-site metadata, so the callee's frame never
//! overlaps the caller's live spill slots.
//!
//! Control-flow edges move each argument into its target parameter's
//! location with a parallel-move resolver: moves whose destination is still
//! read by a pending move wait, and cycles are broken through the reserved
//! cycle scratch of the affected bank. Reference-typed stores also store
//! the slot's value tag, which is the optimizing tier's entire GC contract
//! (references never live in registers).

use crate::ir::{Edge, Effect, FuncIr, Inst, Node, Terminator, ValueId};
use crate::regalloc::{
    Allocation, Loc, SCRATCH2_FPR, SCRATCH2_GPR, SCRATCH3_GPR, SCRATCH_FPR, SCRATCH_GPR,
};
use machine::inst::{Label, Width};
use machine::lower::OpClass;
use machine::masm::Masm;
use machine::reg::{AnyReg, FReg, Reg};
use machine::values::ValueTag;
use spc::{CallSiteInfo, CompileStats, CompiledCode, JitProbeSite, StackmapTable};
use std::collections::HashMap;
use wasm::types::ValueType;

use crate::ir::BlockId;
use crate::regalloc::SCRATCH3_FPR;

/// A move source: a location or a rematerialized constant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MSrc {
    Const(u64),
    L(Loc),
}

/// One pending parallel move.
#[derive(Debug, Clone, Copy)]
struct PMove {
    dst: Loc,
    src: MSrc,
    ty: ValueType,
}

struct Emitter<'a, M: Masm> {
    masm: M,
    ir: &'a FuncIr,
    alloc: &'a Allocation,
    labels: HashMap<BlockId, Label>,
    argzone_base: u32,
    call_sites: HashMap<usize, CallSiteInfo>,
    probe_sites: HashMap<usize, JitProbeSite>,
    tag_stores: u32,
}

/// Emits `ir` through `masm` and assembles the engine-facing artifact.
pub fn emit<M: Masm>(
    masm: M,
    ir: &FuncIr,
    alloc: &Allocation,
    order: &[BlockId],
    wasm_bytes: u32,
) -> CompiledCode<M::Output> {
    // The call argument zone sits at the very top of the frame.
    let mut argzone = 0u32;
    for &b in order {
        for inst in &ir.blocks[b.index()].insts {
            if let Inst::Call { args, results, .. } | Inst::CallIndirect { args, results, .. } =
                inst
            {
                argzone = argzone.max(args.len().max(results.len()) as u32);
            }
        }
    }
    let argzone_base = alloc.spill_base + alloc.num_spill_slots;
    let num_results = ir.result_types.len() as u32;
    let frame_slots = (argzone_base + argzone).max(num_results);

    let mut e = Emitter {
        masm,
        ir,
        alloc,
        labels: HashMap::new(),
        argzone_base,
        call_sites: HashMap::new(),
        probe_sites: HashMap::new(),
        tag_stores: 0,
    };
    for &b in order {
        let label = e.masm.new_label();
        e.labels.insert(b, label);
    }
    e.masm.mark_source(0);
    let osr_blocks: HashMap<BlockId, u32> = ir
        .osr_sites
        .iter()
        .map(|site| (site.entry, site.offset))
        .collect();
    let mut osr_entries = HashMap::new();
    for (i, &b) in order.iter().enumerate() {
        let next = order.get(i + 1).copied();
        if let Some(&offset) = osr_blocks.get(&b) {
            osr_entries.insert(offset, e.masm.position());
        }
        e.emit_block(b, next);
    }

    let stats = CompileStats {
        wasm_bytes,
        machine_insts: e.masm.num_insts() as u32,
        code_size_bytes: e.masm.code_size() as u32,
        tag_stores: e.tag_stores,
        ..CompileStats::default()
    };
    let code = e.masm.finish();
    CompiledCode {
        func_index: ir.func_index,
        code,
        stackmaps: StackmapTable::default(),
        call_sites: e.call_sites,
        probe_sites: e.probe_sites,
        osr_entries,
        num_results,
        num_locals: ir.num_locals() as u32,
        frame_slots,
        stats,
    }
}

const GPR_SCRATCHES: [Reg; 3] = [SCRATCH_GPR, SCRATCH2_GPR, SCRATCH3_GPR];
const FPR_SCRATCHES: [FReg; 2] = [SCRATCH_FPR, SCRATCH2_FPR];

impl<'a, M: Masm> Emitter<'a, M> {
    fn loc(&self, v: ValueId) -> Option<Loc> {
        self.alloc.loc(self.ir, v)
    }

    fn src_of(&self, v: ValueId) -> MSrc {
        if let Some(bits) = self.ir.as_const(v) {
            return MSrc::Const(bits);
        }
        MSrc::L(self.loc(v).expect("used value has a location"))
    }

    fn store_tag(&mut self, slot: u32, ty: ValueType) {
        self.masm.store_tag(slot, ValueTag::for_type(ty));
        self.tag_stores += 1;
    }

    /// Copies slot `src` to slot `dst` through the bank's shuttle scratch
    /// and re-tags the destination — the one place the spill-area tagging
    /// contract lives (see DESIGN.md, "The optimizing tier").
    fn copy_slot(&mut self, dst: u32, src: u32, ty: ValueType) {
        let scratch = if ty.is_float() {
            AnyReg::Fpr(SCRATCH_FPR)
        } else {
            AnyReg::Gpr(SCRATCH_GPR)
        };
        self.masm.load_slot(scratch, src);
        self.masm.store_slot(dst, scratch);
        self.store_tag(dst, ty);
    }

    /// Materializes an integer operand into a register; `which` picks the
    /// scratch used if the value is spilled or constant.
    fn use_gpr(&mut self, v: ValueId, which: usize) -> Reg {
        match self.src_of(v) {
            MSrc::Const(bits) => {
                let s = GPR_SCRATCHES[which];
                self.masm.mov_imm(s, bits as i64);
                s
            }
            MSrc::L(Loc::Reg(AnyReg::Gpr(r))) => r,
            MSrc::L(Loc::Reg(AnyReg::Fpr(_))) => unreachable!("bank mismatch"),
            MSrc::L(Loc::Slot(slot)) => {
                let s = GPR_SCRATCHES[which];
                self.masm.load_slot(AnyReg::Gpr(s), slot);
                s
            }
        }
    }

    fn use_fpr(&mut self, v: ValueId, which: usize) -> FReg {
        match self.src_of(v) {
            MSrc::Const(bits) => {
                let s = FPR_SCRATCHES[which];
                self.masm.fmov_imm(s, bits);
                s
            }
            MSrc::L(Loc::Reg(AnyReg::Fpr(r))) => r,
            MSrc::L(Loc::Reg(AnyReg::Gpr(_))) => unreachable!("bank mismatch"),
            MSrc::L(Loc::Slot(slot)) => {
                let s = FPR_SCRATCHES[which];
                self.masm.load_slot(AnyReg::Fpr(s), slot);
                s
            }
        }
    }

    fn use_any(&mut self, v: ValueId, which: usize) -> AnyReg {
        if self.ir.ty(v).is_float() {
            AnyReg::Fpr(self.use_fpr(v, which.min(1)))
        } else {
            AnyReg::Gpr(self.use_gpr(v, which))
        }
    }

    /// The register to compute an integer definition into, plus the slot to
    /// store it to afterwards (for spilled or discarded results).
    fn def_gpr(&self, v: ValueId) -> (Reg, Option<u32>) {
        match self.loc(v) {
            Some(Loc::Reg(AnyReg::Gpr(r))) => (r, None),
            Some(Loc::Reg(AnyReg::Fpr(_))) => unreachable!("bank mismatch"),
            Some(Loc::Slot(s)) => (SCRATCH_GPR, Some(s)),
            // Dead (but trapping, so executed) definition.
            None => (SCRATCH_GPR, None),
        }
    }

    fn def_fpr(&self, v: ValueId) -> (FReg, Option<u32>) {
        match self.loc(v) {
            Some(Loc::Reg(AnyReg::Fpr(r))) => (r, None),
            Some(Loc::Reg(AnyReg::Gpr(_))) => unreachable!("bank mismatch"),
            Some(Loc::Slot(s)) => (SCRATCH_FPR, Some(s)),
            None => (SCRATCH_FPR, None),
        }
    }

    fn def_any(&self, v: ValueId) -> (AnyReg, Option<u32>) {
        if self.ir.ty(v).is_float() {
            let (r, s) = self.def_fpr(v);
            (AnyReg::Fpr(r), s)
        } else {
            let (r, s) = self.def_gpr(v);
            (AnyReg::Gpr(r), s)
        }
    }

    fn finish_def(&mut self, v: ValueId, computed: AnyReg, spill: Option<u32>) {
        if let Some(slot) = spill {
            self.masm.store_slot(slot, computed);
            // Every spill-slot write re-tags the slot: spill slots are
            // reused across values of different types (and sit where older
            // frames left their tags), so an untagged store could leave a
            // stale `Ref` tag over integer bits for the GC's tag scan to
            // misread as a root.
            self.store_tag(slot, self.ir.ty(v));
        }
    }

    // ---- Blocks ---------------------------------------------------------

    fn emit_block(&mut self, b: BlockId, next: Option<BlockId>) {
        let label = self.labels[&b];
        self.masm.bind(label);
        if b == self.ir.entry() {
            self.emit_prologue(b);
        }
        for ii in 0..self.ir.blocks[b.index()].insts.len() {
            let inst = self.ir.blocks[b.index()].insts[ii].clone();
            self.emit_inst(&inst);
        }
        let term = self.ir.blocks[b.index()].term.clone();
        self.emit_terminator(&term, next);
    }

    /// Loads live frame-defined parameters (function entry or OSR entry)
    /// from their frame slots into their allocated locations. Parameters
    /// spilled to their own home slot cost nothing.
    fn emit_prologue(&mut self, block: BlockId) {
        let params = self.ir.blocks[block.index()].params.clone();
        for (i, p) in params.into_iter().enumerate() {
            if self.ir.resolve(p) != p {
                continue;
            }
            let slot = i as u32;
            match self.loc(p) {
                None => {}
                Some(Loc::Reg(r)) => self.masm.load_slot(r, slot),
                Some(Loc::Slot(s)) if s == slot => {}
                Some(Loc::Slot(s)) => {
                    let ty = self.ir.ty(p);
                    self.copy_slot(s, slot, ty);
                }
            }
        }
    }

    // ---- Instructions ---------------------------------------------------

    fn emit_inst(&mut self, inst: &Inst) {
        match inst {
            Inst::Def(v) => {
                let v = *v;
                if self.ir.resolve(v) != v {
                    return;
                }
                self.emit_def(v);
            }
            Inst::MemStore {
                value,
                addr,
                offset,
                width,
                src_offset,
            } => {
                let rv = self.use_any(*value, 0);
                let ra = self.use_gpr(*addr, 1);
                self.masm.mark_source(*src_offset);
                self.masm.mem_store(rv, ra, *offset, *width);
            }
            Inst::GlobalSet { index, value } => {
                let rv = self.use_any(*value, 0);
                self.masm.global_set(*index, rv);
            }
            Inst::Call {
                offset,
                callee,
                args,
                results,
            } => {
                self.masm.mark_source(*offset);
                self.store_call_args(args);
                let site = self.masm.call(*callee);
                self.call_sites.insert(
                    site,
                    CallSiteInfo {
                        callee_slot_base: self.argzone_base,
                    },
                );
                self.load_call_results(results);
            }
            Inst::CallIndirect {
                offset,
                type_index,
                table_index,
                index,
                args,
                results,
            } => {
                self.masm.mark_source(*offset);
                self.store_call_args(args);
                let ri = self.use_gpr(*index, 0);
                let site = self.masm.call_indirect(*type_index, *table_index, ri);
                self.call_sites.insert(
                    site,
                    CallSiteInfo {
                        callee_slot_base: self.argzone_base,
                    },
                );
                self.load_call_results(results);
            }
            Inst::ProbeCounter {
                counter_id,
                offset,
                height,
            } => {
                let site = self.masm.probe_counter(*counter_id);
                self.probe_sites.insert(
                    site,
                    JitProbeSite {
                        offset: *offset,
                        operand_height: *height,
                    },
                );
            }
            Inst::ProbeTos {
                probe_id,
                value,
                offset,
                height,
            } => {
                let src = match value {
                    Some(v) => self.use_any(*v, 0),
                    None => AnyReg::Gpr(SCRATCH_GPR),
                };
                let site = self.masm.probe_tos(*probe_id, src);
                self.probe_sites.insert(
                    site,
                    JitProbeSite {
                        offset: *offset,
                        operand_height: *height,
                    },
                );
            }
            Inst::ProbeFlush {
                probe_id,
                runtime,
                offset,
                height,
                flush,
            } => {
                // Materialize the interpreter frame: values and tags, so
                // frame accessors (and a tier-down) see a canonical frame.
                for &(slot, v) in flush {
                    let ty = self.ir.ty(v);
                    match self.src_of(v) {
                        MSrc::Const(bits) => {
                            self.masm.store_slot_imm(slot, bits as i64);
                            self.store_tag(slot, ty);
                        }
                        MSrc::L(Loc::Reg(r)) => {
                            self.masm.store_slot(slot, r);
                            self.store_tag(slot, ty);
                        }
                        MSrc::L(Loc::Slot(s)) if s == slot => self.store_tag(slot, ty),
                        MSrc::L(Loc::Slot(s)) => self.copy_slot(slot, s, ty),
                    }
                }
                let site = if *runtime {
                    self.masm.probe_runtime(*probe_id)
                } else {
                    self.masm.probe_direct(*probe_id)
                };
                self.probe_sites.insert(
                    site,
                    JitProbeSite {
                        offset: *offset,
                        operand_height: *height,
                    },
                );
            }
            Inst::FuelCheck { offset, amount } => {
                self.masm.mark_source(*offset);
                self.masm.fuel_check(*amount);
            }
            Inst::EpochCheck { offset } => {
                self.masm.mark_source(*offset);
                self.masm.epoch_check();
            }
        }
    }

    fn emit_def(&mut self, v: ValueId) {
        let node = self.ir.nodes[v.index()].clone();
        // Anchor trapping defs in the source map *before* their operand
        // loads: only the trapping instruction itself can exit here, so the
        // pending mark resolves to it, and a trap's pc maps back to the wasm
        // offset the frontend recorded.
        if node.effect() == Effect::Trapping {
            if let Some(offset) = self.ir.src_offset(v) {
                self.masm.mark_source(offset);
            }
        }
        match node {
            // Constants rematerialize at uses; params and call results are
            // defined elsewhere.
            Node::Const(_) | Node::Param { .. } | Node::CallResult => {}
            Node::Op { class, args } => self.emit_op(v, class, args),
            Node::Select {
                cond,
                if_true,
                if_false,
            } => {
                let rc = self.use_gpr(cond, 0);
                if self.ir.ty(v).is_float() {
                    let ra = self.use_fpr(if_true, 0);
                    let rb = self.use_fpr(if_false, 1);
                    let (dst, spill) = self.def_fpr(v);
                    self.masm.fselect(dst, rc, ra, rb);
                    self.finish_def(v, AnyReg::Fpr(dst), spill);
                } else {
                    let ra = self.use_gpr(if_true, 1);
                    let rb = self.use_gpr(if_false, 2);
                    let (dst, spill) = self.def_gpr(v);
                    self.masm.select(dst, rc, ra, rb);
                    self.finish_def(v, AnyReg::Gpr(dst), spill);
                }
            }
            Node::MemLoad {
                addr,
                offset,
                width,
                signed,
                dst_width,
            } => {
                let ra = self.use_gpr(addr, 0);
                let (dst, spill) = self.def_any(v);
                self.masm.mem_load(dst, ra, offset, width, signed, dst_width);
                self.finish_def(v, dst, spill);
            }
            Node::MemorySize => {
                let (dst, spill) = self.def_gpr(v);
                self.masm.memory_size(dst);
                self.finish_def(v, AnyReg::Gpr(dst), spill);
            }
            Node::MemoryGrow { delta } => {
                let rd = self.use_gpr(delta, 1);
                let (dst, spill) = self.def_gpr(v);
                self.masm.memory_grow(dst, rd);
                self.finish_def(v, AnyReg::Gpr(dst), spill);
            }
            Node::GlobalGet { index } => {
                let (dst, spill) = self.def_any(v);
                self.masm.global_get(dst, index);
                self.finish_def(v, dst, spill);
            }
            Node::OsrSlot { index } => {
                // A dead slot read has no location and loads nothing.
                if self.loc(v).is_none() {
                    return;
                }
                let (dst, spill) = self.def_any(v);
                self.masm.load_slot(dst, index);
                self.finish_def(v, dst, spill);
            }
        }
    }

    fn emit_op(&mut self, v: ValueId, class: OpClass, args: [ValueId; 2]) {
        // Immediate-mode selection: integer ops with a constant right
        // operand, exactly the baseline's ISEL rule.
        if let OpClass::Alu(_, width) | OpClass::Cmp(_, width) = class {
            if let Some(bits) = self.ir.as_const(args[1]) {
                let imm = bits as i64;
                let fits = match width {
                    Width::W32 => true,
                    Width::W64 => (i32::MIN as i64..=i32::MAX as i64).contains(&imm),
                };
                if fits && self.ir.as_const(args[0]).is_none() {
                    let ra = self.use_gpr(args[0], 0);
                    let (dst, spill) = self.def_gpr(v);
                    match class {
                        OpClass::Alu(op, w) => self.masm.alu_imm(op, w, dst, ra, imm),
                        OpClass::Cmp(op, w) => self.masm.cmp_imm(op, w, dst, ra, imm),
                        _ => unreachable!("matched above"),
                    }
                    self.finish_def(v, AnyReg::Gpr(dst), spill);
                    return;
                }
            }
        }
        match class {
            OpClass::Alu(op, w) => {
                let ra = self.use_gpr(args[0], 0);
                let rb = self.use_gpr(args[1], 1);
                let (dst, spill) = self.def_gpr(v);
                self.masm.alu(op, w, dst, ra, rb);
                self.finish_def(v, AnyReg::Gpr(dst), spill);
            }
            OpClass::Cmp(op, w) => {
                let ra = self.use_gpr(args[0], 0);
                let rb = self.use_gpr(args[1], 1);
                let (dst, spill) = self.def_gpr(v);
                self.masm.cmp(op, w, dst, ra, rb);
                self.finish_def(v, AnyReg::Gpr(dst), spill);
            }
            OpClass::Unop(op, w) => {
                let ra = self.use_gpr(args[0], 0);
                let (dst, spill) = self.def_gpr(v);
                self.masm.unop(op, w, dst, ra);
                self.finish_def(v, AnyReg::Gpr(dst), spill);
            }
            OpClass::FAlu(op, w) => {
                let ra = self.use_fpr(args[0], 0);
                let rb = self.use_fpr(args[1], 1);
                let (dst, spill) = self.def_fpr(v);
                self.masm.falu(op, w, dst, ra, rb);
                self.finish_def(v, AnyReg::Fpr(dst), spill);
            }
            OpClass::FUnop(op, w) => {
                let ra = self.use_fpr(args[0], 0);
                let (dst, spill) = self.def_fpr(v);
                self.masm.funop(op, w, dst, ra);
                self.finish_def(v, AnyReg::Fpr(dst), spill);
            }
            OpClass::FCmp(op, w) => {
                let ra = self.use_fpr(args[0], 0);
                let rb = self.use_fpr(args[1], 1);
                let (dst, spill) = self.def_gpr(v);
                self.masm.fcmp(op, w, dst, ra, rb);
                self.finish_def(v, AnyReg::Gpr(dst), spill);
            }
            OpClass::Convert(op) => {
                let src = if class.operand_type().is_float() {
                    AnyReg::Fpr(self.use_fpr(args[0], 0))
                } else {
                    AnyReg::Gpr(self.use_gpr(args[0], 0))
                };
                let (dst, spill) = self.def_any(v);
                self.masm.convert(op, dst, src);
                self.finish_def(v, dst, spill);
            }
        }
    }

    fn store_call_args(&mut self, args: &[ValueId]) {
        for (i, &a) in args.iter().enumerate() {
            let slot = self.argzone_base + i as u32;
            let ty = self.ir.ty(a);
            // The callee boundary is a GC point: the tag walk must see
            // reference arguments — and must not misread stale tags under
            // non-reference ones — so every store below re-tags its slot.
            match self.src_of(a) {
                MSrc::Const(bits) => {
                    self.masm.store_slot_imm(slot, bits as i64);
                    self.store_tag(slot, ty);
                }
                MSrc::L(Loc::Reg(r)) => {
                    self.masm.store_slot(slot, r);
                    self.store_tag(slot, ty);
                }
                MSrc::L(Loc::Slot(s)) => self.copy_slot(slot, s, ty),
            }
        }
    }

    fn load_call_results(&mut self, results: &[ValueId]) {
        for (j, &r) in results.iter().enumerate() {
            let slot = self.argzone_base + j as u32;
            let ty = self.ir.ty(r);
            match self.loc(r) {
                // Dead result: the callee wrote it; nobody reads it.
                None => {}
                Some(Loc::Reg(reg)) => self.masm.load_slot(reg, slot),
                Some(Loc::Slot(s)) => self.copy_slot(s, slot, ty),
            }
        }
    }

    // ---- Terminators and parallel moves ---------------------------------

    fn edge_moves(&self, edge: &Edge) -> Vec<PMove> {
        let params = &self.ir.blocks[edge.target.index()].params;
        debug_assert_eq!(params.len(), edge.args.len());
        let mut moves = Vec::new();
        for (&p, &a) in params.iter().zip(&edge.args) {
            let p = self.ir.resolve(p);
            let Some(dst) = self.loc(p) else { continue };
            let src = self.src_of(a);
            if src == MSrc::L(dst) {
                continue;
            }
            moves.push(PMove {
                dst,
                src,
                ty: self.ir.ty(p),
            });
        }
        moves
    }

    fn emit_move(&mut self, m: &PMove) {
        match (m.dst, m.src) {
            (Loc::Reg(AnyReg::Gpr(d)), MSrc::Const(bits)) => self.masm.mov_imm(d, bits as i64),
            (Loc::Reg(AnyReg::Fpr(d)), MSrc::Const(bits)) => self.masm.fmov_imm(d, bits),
            (Loc::Reg(AnyReg::Gpr(d)), MSrc::L(Loc::Reg(AnyReg::Gpr(s)))) => self.masm.mov(d, s),
            (Loc::Reg(AnyReg::Fpr(d)), MSrc::L(Loc::Reg(AnyReg::Fpr(s)))) => self.masm.fmov(d, s),
            (Loc::Reg(d), MSrc::L(Loc::Slot(s))) => self.masm.load_slot(d, s),
            (Loc::Slot(d), MSrc::Const(bits)) => {
                self.masm.store_slot_imm(d, bits as i64);
                self.store_tag(d, m.ty);
            }
            (Loc::Slot(d), MSrc::L(Loc::Reg(s))) => {
                self.masm.store_slot(d, s);
                self.store_tag(d, m.ty);
            }
            (Loc::Slot(d), MSrc::L(Loc::Slot(s))) => self.copy_slot(d, s, m.ty),
            (Loc::Reg(_), MSrc::L(Loc::Reg(_))) => unreachable!("bank mismatch"),
        }
    }

    /// Emits a set of parallel moves, breaking cycles through the reserved
    /// cycle scratches.
    fn emit_parallel_moves(&mut self, mut pending: Vec<PMove>) {
        while !pending.is_empty() {
            let mut progress = true;
            while progress {
                progress = false;
                let mut i = 0;
                while i < pending.len() {
                    let dst = pending[i].dst;
                    let blocked = pending
                        .iter()
                        .enumerate()
                        .any(|(j, m)| j != i && m.src == MSrc::L(dst));
                    if blocked {
                        i += 1;
                    } else {
                        let m = pending.remove(i);
                        self.emit_move(&m);
                        progress = true;
                    }
                }
            }
            if pending.is_empty() {
                break;
            }
            // Cycle: every destination is still read. Park the contents of
            // one destination in the cycle scratch and redirect its readers.
            let d0 = pending[0].dst;
            let reader_ty = pending
                .iter()
                .find(|m| m.src == MSrc::L(d0))
                .map(|m| m.ty)
                .expect("a blocked move has a reader");
            let hold = if reader_ty.is_float() {
                AnyReg::Fpr(SCRATCH3_FPR)
            } else {
                AnyReg::Gpr(SCRATCH3_GPR)
            };
            match d0 {
                Loc::Reg(AnyReg::Gpr(s)) => {
                    let AnyReg::Gpr(h) = hold else { unreachable!() };
                    self.masm.mov(h, s);
                }
                Loc::Reg(AnyReg::Fpr(s)) => {
                    let AnyReg::Fpr(h) = hold else { unreachable!() };
                    self.masm.fmov(h, s);
                }
                Loc::Slot(s) => self.masm.load_slot(hold, s),
            }
            for m in pending.iter_mut() {
                if m.src == MSrc::L(d0) {
                    m.src = MSrc::L(Loc::Reg(hold));
                }
            }
        }
    }

    fn emit_edge(&mut self, edge: &Edge, next: Option<BlockId>) {
        let moves = self.edge_moves(edge);
        self.emit_parallel_moves(moves);
        if Some(edge.target) != next {
            let label = self.labels[&edge.target];
            self.masm.jump(label);
        }
    }

    fn emit_terminator(&mut self, term: &Terminator, next: Option<BlockId>) {
        match term {
            Terminator::Jump(edge) => self.emit_edge(edge, next),
            Terminator::Branch {
                cond,
                then_edge,
                else_edge,
                ..
            } => {
                let then_moves = self.edge_moves(then_edge);
                let else_moves = self.edge_moves(else_edge);
                let rc = self.use_gpr(*cond, 0);
                let then_label = self.labels[&then_edge.target];
                let else_label = self.labels[&else_edge.target];
                match (then_moves.is_empty(), else_moves.is_empty()) {
                    (true, true) => {
                        if Some(else_edge.target) == next {
                            self.masm.br_if(rc, then_label, false);
                        } else if Some(then_edge.target) == next {
                            self.masm.br_if(rc, else_label, true);
                        } else {
                            self.masm.br_if(rc, then_label, false);
                            self.masm.jump(else_label);
                        }
                    }
                    (true, false) => {
                        self.masm.br_if(rc, then_label, false);
                        self.emit_parallel_moves(else_moves);
                        if Some(else_edge.target) != next {
                            self.masm.jump(else_label);
                        }
                    }
                    (false, true) => {
                        self.masm.br_if(rc, else_label, true);
                        self.emit_parallel_moves(then_moves);
                        if Some(then_edge.target) != next {
                            self.masm.jump(then_label);
                        }
                    }
                    (false, false) => {
                        // Put the fall-through successor's moves last so no
                        // jump to the very next block is emitted.
                        let stub = self.masm.new_label();
                        if Some(else_edge.target) == next {
                            self.masm.br_if(rc, stub, true);
                            self.emit_parallel_moves(then_moves);
                            self.masm.jump(then_label);
                            self.masm.bind(stub);
                            self.emit_parallel_moves(else_moves);
                        } else {
                            self.masm.br_if(rc, stub, false);
                            self.emit_parallel_moves(else_moves);
                            self.masm.jump(else_label);
                            self.masm.bind(stub);
                            self.emit_parallel_moves(then_moves);
                            if Some(then_edge.target) != next {
                                self.masm.jump(then_label);
                            }
                        }
                    }
                }
            }
            Terminator::BrTable {
                index,
                targets,
                default,
            } => {
                let ri = self.use_gpr(*index, 0);
                // Identical edges (same target, same arguments — common in
                // large tables) share one adaptation stub, and each edge's
                // move list is computed exactly once.
                let mut stubs: Vec<(Label, Edge, Vec<PMove>)> = Vec::new();
                let mut resolve = |this: &mut Self, e: &Edge| -> Label {
                    let moves = this.edge_moves(e);
                    if moves.is_empty() {
                        return this.labels[&e.target];
                    }
                    if let Some((label, _, _)) = stubs.iter().find(|(_, se, _)| se == e) {
                        return *label;
                    }
                    let stub = this.masm.new_label();
                    stubs.push((stub, e.clone(), moves));
                    stub
                };
                let mut table = Vec::with_capacity(targets.len());
                for e in targets {
                    table.push(resolve(self, e));
                }
                let default_label = resolve(self, default);
                self.masm.br_table(ri, table, default_label);
                for (stub, edge, moves) in stubs {
                    self.masm.bind(stub);
                    self.emit_parallel_moves(moves);
                    let label = self.labels[&edge.target];
                    self.masm.jump(label);
                }
            }
            Terminator::Return(values) => {
                let mut moves = Vec::new();
                let mut in_place = Vec::new();
                for (i, &v) in values.iter().enumerate() {
                    let dst = Loc::Slot(i as u32);
                    let src = self.src_of(v);
                    let ty = self.ir.result_types[i];
                    if src != MSrc::L(dst) {
                        // The slot store below re-tags the result slot.
                        moves.push(PMove { dst, src, ty });
                    } else {
                        in_place.push((i as u32, ty));
                    }
                }
                self.emit_parallel_moves(moves);
                for (slot, ty) in in_place {
                    self.store_tag(slot, ty);
                }
                self.masm.ret();
            }
            Terminator::Trap { code, offset } => {
                self.masm.mark_source(*offset);
                self.masm.trap(*code);
            }
        }
    }
}
