//! Profile-guided basic-block layout.
//!
//! The layout decides the linear order code is emitted in, which decides
//! which successor of every branch becomes the fall-through path. A greedy
//! depth-first walk from the entry follows, at every conditional branch, the
//! successor the [`FuncProfile`] says is more likely (collected by the
//! branch monitor while the function still ran in the lower tiers); without
//! an observation it follows the frontend's natural order, which reproduces
//! bytecode order. Hot paths therefore fall through and cold paths pay the
//! extra jumps.
//!
//! Only reachable blocks appear in the result, so folded branches and dead
//! merges vanish from the emitted code entirely.

use crate::ir::{BlockId, FuncIr, Terminator};
use interp::profile::FuncProfile;

/// Computes the emission order of `ir`'s reachable blocks, entry first.
pub fn layout(ir: &FuncIr, profile: &FuncProfile) -> Vec<BlockId> {
    let mut order = Vec::with_capacity(ir.blocks.len());
    let mut placed = vec![false; ir.blocks.len()];
    let mut stack = vec![ir.entry()];
    while let Some(b) = stack.pop() {
        if placed[b.index()] {
            continue;
        }
        placed[b.index()] = true;
        order.push(b);
        // Push successors so the preferred one is popped (placed) next.
        match &ir.blocks[b.index()].term {
            Terminator::Jump(e) => stack.push(e.target),
            Terminator::Branch {
                offset,
                natural_then,
                then_edge,
                else_edge,
                ..
            } => {
                // A profile observation overrides the frontend's natural
                // (bytecode) order.
                let prefer_then = profile.bias(*offset).unwrap_or(*natural_then);
                if prefer_then {
                    stack.push(else_edge.target);
                    stack.push(then_edge.target);
                } else {
                    stack.push(then_edge.target);
                    stack.push(else_edge.target);
                }
            }
            Terminator::BrTable {
                targets, default, ..
            } => {
                stack.push(default.target);
                for e in targets.iter().rev() {
                    stack.push(e.target);
                }
            }
            Terminator::Return(_) | Terminator::Trap { .. } => {}
        }
    }
    // OSR entry blocks have no in-graph predecessors — the walk above never
    // reaches them. Place them out of line at the end: they run once per
    // tier transfer, so they should never interrupt a fall-through path.
    for site in &ir.osr_sites {
        if !placed[site.entry.index()] {
            placed[site.entry.index()] = true;
            order.push(site.entry);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use spc::{ProbeMode, ProbeSites};
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::{BlockType, FuncType, ValueType};
    use wasm::validate::validate;

    fn branchy_ir() -> (FuncIr, u32) {
        // if (local 0) { 1 } else { 2 }  — the `if` is at a known offset.
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(BlockType::Value(ValueType::I32))
            .i32_const(1)
            .else_()
            .i32_const(2)
            .end();
        let mut b = ModuleBuilder::new();
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        );
        let module = b.finish();
        let info = validate(&module).unwrap();
        let ir = frontend::build(
            &module,
            f,
            &info.funcs[0],
            &ProbeSites::none(),
            ProbeMode::Optimized,
            None,
            false,
        )
        .unwrap();
        // Bytecode layout: 0 local.get, 1 idx, 2 if.
        (ir, 2)
    }

    #[test]
    fn layout_covers_exactly_the_reachable_blocks() {
        let (ir, _) = branchy_ir();
        let order = layout(&ir, &FuncProfile::empty());
        let reach = ir.reachable();
        assert_eq!(order.len(), reach.iter().filter(|r| **r).count());
        assert_eq!(order[0], ir.entry());
        let unique: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn profile_bias_flips_the_successor_order(
    ) {
        let (ir, if_offset) = branchy_ir();
        let (then_block, else_block) = match &ir.blocks[0].term {
            Terminator::Branch {
                then_edge,
                else_edge,
                ..
            } => (then_edge.target, else_edge.target),
            other => panic!("{other:?}"),
        };

        let mut taken = FuncProfile::empty();
        taken.record(if_offset, true, 100);
        let order = layout(&ir, &taken);
        let pos = |b: BlockId, order: &[BlockId]| order.iter().position(|x| *x == b).unwrap();
        assert!(pos(then_block, &order) < pos(else_block, &order));

        let mut not_taken = FuncProfile::empty();
        not_taken.record(if_offset, false, 100);
        let order = layout(&ir, &not_taken);
        assert!(pos(else_block, &order) < pos(then_block, &order));
    }
}
