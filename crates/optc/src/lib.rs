//! `optc` — the SSA-based optimizing compiler tier.
//!
//! Production engines pair their baseline compiler with an IR-based
//! optimizing compiler (TurboFan, Ion, Cranelift, ...) that spends an order
//! of magnitude more compile time to produce substantially faster code (the
//! red/purple cluster of the paper's Fig. 10). This crate is that other side
//! of the paper's comparison axis, scaled to this reproduction but with the
//! real structure end to end:
//!
//! 1. **Frontend** ([`frontend`]): one forward pass over validated bytecode
//!    builds basic blocks and block-parameter-form SSA, following the same
//!    control-stack discipline as validation and the interpreter's
//!    sidetable construction. Probe sites lower exactly as in the baseline.
//! 2. **Optimization pipeline** ([`opt`]): constant and branch folding
//!    (through the same [`machine::lower::OpClass`] evaluation table the
//!    interpreter and CPU simulator execute with, so folds are bit-exact),
//!    trivial-parameter removal (cross-merge copy propagation), local CSE
//!    with redundant-load elimination, and trap-preserving dead-code
//!    elimination.
//! 3. **Layout** ([`layout`]): profile-guided block placement, fed by the
//!    branch profiles the engine's monitors collect while the function
//!    still runs in the lower tiers ([`interp::profile::FuncProfile`]).
//! 4. **Register allocation** ([`regalloc`]): linear scan over whole live
//!    ranges across the full register file — the baseline's
//!    flush-at-every-merge discipline is exactly what this tier removes.
//! 5. **Emission** ([`emit`]): through the [`machine::Masm`] macro-assembler
//!    trait, so the virtual-ISA *and* x86-64 backends both get optimized
//!    code (the old slot-promotion pass was silently virtual-ISA-only).
//!
//! The tier's GC contract: reference-typed values never live in registers —
//! they are kept in tagged frame slots, so the engine's tag-scanning root
//! walk sees every reference at every call boundary without stackmaps.

#![warn(missing_docs)]

pub mod emit;
pub mod frontend;
pub mod ir;
pub mod layout;
pub mod opt;
pub mod regalloc;

use interp::profile::FuncProfile;
use machine::masm::Masm;
use spc::{CompileError, CompiledCode, CompiledFunction, ProbeMode, ProbeSites};
use wasm::fuel::FuelPlan;
use wasm::hash::Fnv64;
use wasm::module::Module;
use wasm::validate::FuncInfo;

/// The optimizing compiler.
#[derive(Debug, Clone)]
pub struct OptimizingCompiler {
    /// How probe sites are lowered (mirrors the baseline configuration so
    /// instrumentation counts stay tier-independent).
    probe_mode: ProbeMode,
    /// Whether fuel/epoch checks are inserted (mirrors the engine's metering
    /// configuration so fuel counts stay tier-independent).
    metering: bool,
    /// Whether on-stack-replacement entry stubs are emitted for loops. This
    /// also reserves the interpreter operand region in the frame so an OSR
    /// transition never shrinks an activation's frame.
    osr: bool,
}

impl Default for OptimizingCompiler {
    fn default() -> OptimizingCompiler {
        OptimizingCompiler {
            probe_mode: ProbeMode::Optimized,
            metering: false,
            osr: false,
        }
    }
}

impl OptimizingCompiler {
    /// Creates an optimizing compiler lowering probes in `probe_mode`.
    pub fn new(probe_mode: ProbeMode) -> OptimizingCompiler {
        OptimizingCompiler {
            probe_mode,
            metering: false,
            osr: false,
        }
    }

    /// Enables or disables fuel metering: when on, the frontend inserts
    /// `FuelCheck` / `EpochCheck` instructions at the offsets of the
    /// function's [`wasm::fuel::FuelPlan`], and every optimization pass
    /// treats them as immovable effects.
    pub fn with_metering(mut self, metering: bool) -> OptimizingCompiler {
        self.metering = metering;
        self
    }

    /// Enables or disables on-stack-replacement entry stubs: when on, every
    /// reachable `loop` gets an entry block that reconstructs the header's
    /// SSA state from an interpreter-layout frame (the reverse of the
    /// `ProbeFlush` mapping) and the published artifact records its position
    /// in [`CompiledCode::osr_entries`], keyed by the loop-body-start offset.
    pub fn with_osr(mut self, osr: bool) -> OptimizingCompiler {
        self.osr = osr;
        self
    }

    /// A stable fingerprint of the optimizing pipeline (IR shape, pass list,
    /// allocator). Folded into the engine's code-cache key so artifacts
    /// compiled with and without the optimizing tier can never alias.
    pub fn pipeline_fingerprint() -> u64 {
        let mut h = Fnv64::new();
        for byte in b"optc-ssa-v1:fold+params+cse+dce/profile-layout/linear-scan".iter() {
            h.write_u8(*byte);
        }
        h.finish()
    }

    /// Compiles one function to virtual-ISA code (the executable backend).
    ///
    /// `profile` is the branch profile collected by the lower tiers; pass
    /// `None` (or an empty profile) to lay blocks out in bytecode order.
    ///
    /// # Errors
    ///
    /// Returns an error if the body is malformed (validation normally
    /// rejects such input first).
    pub fn compile(
        &self,
        module: &Module,
        func_index: u32,
        info: &FuncInfo,
        probes: &ProbeSites,
        profile: Option<&FuncProfile>,
    ) -> Result<CompiledFunction, CompileError> {
        self.compile_with(
            machine::asm::Assembler::new(),
            module,
            func_index,
            info,
            probes,
            profile,
        )
    }

    /// Compiles one function through an arbitrary [`Masm`] backend.
    ///
    /// # Errors
    ///
    /// Returns an error if the body is malformed.
    pub fn compile_with<M: Masm>(
        &self,
        masm: M,
        module: &Module,
        func_index: u32,
        info: &FuncInfo,
        probes: &ProbeSites,
        profile: Option<&FuncProfile>,
    ) -> Result<CompiledCode<M::Output>, CompileError> {
        let wasm_bytes = module
            .func_decl(func_index)
            .map(|d| d.code.len() as u32)
            .unwrap_or(0);
        let fuel = if self.metering {
            let decl = module.func_decl(func_index).ok_or(CompileError {
                offset: 0,
                message: format!("function {func_index} has no body"),
            })?;
            Some(FuelPlan::build(&decl.code).map_err(|e| CompileError {
                offset: 0,
                message: format!("fuel plan: {e}"),
            })?)
        } else {
            None
        };
        let mut ir = frontend::build(
            module,
            func_index,
            info,
            probes,
            self.probe_mode,
            fuel.as_ref(),
            self.osr,
        )?;
        opt::optimize(&mut ir);
        #[cfg(debug_assertions)]
        regalloc::check_edges(&ir);
        let empty = FuncProfile::empty();
        let order = layout::layout(&ir, profile.unwrap_or(&empty));
        let alloc = regalloc::allocate(&ir, &order);
        Ok(emit::emit(masm, &ir, &alloc, &order, wasm_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::cost::{CostModel, CycleCounter};
    use machine::cpu::{Cpu, CpuExit, CpuState, ExecContext};
    use machine::inst::{MachInst, TrapCode};
    use machine::memory::{LinearMemory, Table};
    use machine::values::{GlobalSlot, ValueStack, WasmValue};
    use machine::x64_masm::X64Masm;
    use spc::SinglePassCompiler;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::opcode::Opcode;
    use wasm::types::{BlockType, FuncType, Limits, ValueType};
    use wasm::validate::validate;

    fn compile_pair(
        module: &Module,
        f: u32,
    ) -> (CompiledFunction, CompiledFunction) {
        let info = validate(module).unwrap();
        let defined = f - module.num_imported_funcs();
        let baseline = SinglePassCompiler::default()
            .compile(module, f, &info.funcs[defined as usize], &ProbeSites::none())
            .unwrap();
        let optimized = OptimizingCompiler::default()
            .compile(module, f, &info.funcs[defined as usize], &ProbeSites::none(), None)
            .unwrap();
        (baseline, optimized)
    }

    /// Runs call-free compiled code with `args` in the frame's first slots;
    /// returns the exit, the first result slot, and cycles.
    fn run(cf: &CompiledFunction, args: &[WasmValue]) -> (CpuExit, u64, u64) {
        let mut values = ValueStack::with_capacity(1024);
        for (i, a) in args.iter().enumerate() {
            values.write_value(i, *a);
        }
        let mut memory = LinearMemory::new(Limits::at_least(1));
        let mut globals: Vec<GlobalSlot> = vec![GlobalSlot::from_value(WasmValue::I64(5))];
        let mut tables: Vec<Table> = Vec::new();
        let cpu = Cpu::new(CostModel::default());
        let mut state = CpuState::new();
        let mut cycles = CycleCounter::new();
        let mut ctx = ExecContext {
            values: &mut values,
            frame_base: 0,
            memory: Some(&mut memory),
            globals: &mut globals,
            tables: &mut tables,
            meter: machine::cpu::Meter::off(),
        };
        let exit = cpu.run(&mut state, &cf.code, 0, &mut ctx, &mut cycles);
        (exit, values.read(0), cycles.total())
    }

    fn loop_module() -> (Module, u32) {
        // Classic countdown-sum loop: heavy local traffic inside a loop.
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(1)
            .local_get(0)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(1);
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![ValueType::I32],
            c.finish(),
        );
        b.export_func("sum", f);
        (b.finish(), f)
    }

    #[test]
    fn loop_agrees_with_baseline_and_is_faster() {
        let (module, f) = loop_module();
        let (baseline, optimized) = compile_pair(&module, f);
        let (bexit, bresult, bcycles) = run(&baseline, &[WasmValue::I32(100)]);
        let (oexit, oresult, ocycles) = run(&optimized, &[WasmValue::I32(100)]);
        assert_eq!(bexit, CpuExit::Return);
        assert_eq!(oexit, CpuExit::Return);
        assert_eq!(bresult as u32, 5050);
        assert_eq!(oresult as u32, 5050);
        assert!(
            ocycles * 10 <= bcycles * 8,
            "opt must be >= 20% faster on the loop kernel: {ocycles} vs {bcycles}\n{}",
            optimized.code.disassemble()
        );
    }

    #[test]
    fn loop_body_has_no_slot_traffic() {
        let (module, f) = loop_module();
        let (_, optimized) = compile_pair(&module, f);
        let slot_accesses = optimized
            .code
            .insts()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    MachInst::LoadSlot { .. }
                        | MachInst::StoreSlot { .. }
                        | MachInst::StoreSlotImm { .. }
                )
            })
            .count();
        // One load of the parameter in the prologue, one store of the result
        // in the epilogue; nothing per-iteration.
        assert!(
            slot_accesses <= 2,
            "loop-carried values must live in registers:\n{}",
            optimized.code.disassemble()
        );
    }

    #[test]
    fn division_trap_is_preserved_even_when_dropped() {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.local_get(0).i32_const(0).op(Opcode::I32DivS).drop_().i32_const(7);
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        );
        let module = b.finish();
        let (_, optimized) = compile_pair(&module, f);
        let (exit, _, _) = run(&optimized, &[WasmValue::I32(1)]);
        assert!(matches!(exit, CpuExit::Trap { code: TrapCode::DivisionByZero, .. }));
    }

    #[test]
    fn folded_constants_execute_correctly() {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.i32_const(6).i32_const(7).op(Opcode::I32Mul);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
        let module = b.finish();
        let (_, optimized) = compile_pair(&module, f);
        assert!(
            !optimized
                .code
                .insts()
                .iter()
                .any(|i| matches!(i, MachInst::Alu { .. } | MachInst::AluImm { .. })),
            "{}",
            optimized.code.disassemble()
        );
        let (exit, result, _) = run(&optimized, &[]);
        assert_eq!(exit, CpuExit::Return);
        assert_eq!(result as u32, 42);
    }

    #[test]
    fn memory_and_globals_round_trip() {
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::at_least(1));
        let g = b.add_global(
            wasm::types::GlobalType::mutable(ValueType::I64),
            wasm::module::ConstExpr::I64(5),
        );
        let mut c = CodeBuilder::new();
        // mem[8] = x; g = g + mem[8]; return low 32 bits of g
        c.i32_const(8)
            .local_get(0)
            .mem(Opcode::I32Store, 2, 0)
            .global_get(g)
            .i32_const(8)
            .mem(Opcode::I32Load, 2, 0)
            .op(Opcode::I64ExtendI32U)
            .op(Opcode::I64Add)
            .global_set(g)
            .global_get(g)
            .op(Opcode::I32WrapI64);
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        );
        let module = b.finish();
        let (baseline, optimized) = compile_pair(&module, f);
        let (be, br, _) = run(&baseline, &[WasmValue::I32(37)]);
        let (oe, or, _) = run(&optimized, &[WasmValue::I32(37)]);
        assert_eq!(be, CpuExit::Return);
        assert_eq!(oe, CpuExit::Return);
        assert_eq!(br, or);
        assert_eq!(or as u32, 42);
    }

    #[test]
    fn x64_backend_emits_through_the_same_pipeline() {
        let (module, f) = loop_module();
        let info = validate(&module).unwrap();
        let code = OptimizingCompiler::default()
            .compile_with(
                X64Masm::new(),
                &module,
                f,
                &info.funcs[0],
                &ProbeSites::none(),
                None,
            )
            .unwrap();
        assert!(code.code.code_size() > 0, "real bytes were emitted");
        assert_eq!(code.num_locals, 2);
    }

    /// Register pressure well past the 11 allocatable GPRs forces spills
    /// and evictions; the spilled code must still agree with the baseline.
    /// (Regression guard for spill-slot reuse: an evicted value's slot must
    /// be free from its *definition*, not from the eviction point.)
    #[test]
    fn high_register_pressure_spills_correctly() {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        // Materialize 18 values early (some die quickly, some live to the
        // end), interleave short-lived temps, then combine everything so
        // every long-lived value is still needed at the bottom.
        let n = 18;
        for i in 0..n {
            c.local_get(0).i32_const(i + 1).op(Opcode::I32Mul);
        }
        // A short-lived burst in the middle: defines + consumes immediately.
        c.local_get(0)
            .i32_const(3)
            .op(Opcode::I32Add)
            .local_get(0)
            .op(Opcode::I32Xor)
            .drop_();
        // Fold the 18 live values together (uses them latest-first).
        for _ in 0..n - 1 {
            c.op(Opcode::I32Add);
        }
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        );
        let module = b.finish();
        let (baseline, optimized) = compile_pair(&module, f);
        // The optimized code must actually have spilled something, or this
        // test is not exercising the eviction path.
        assert!(
            optimized
                .code
                .insts()
                .iter()
                .any(|i| matches!(i, MachInst::StoreSlot { .. })),
            "expected register pressure to cause spills:\n{}",
            optimized.code.disassemble()
        );
        for arg in [0i32, 1, 7, -3, 100_000] {
            let (be, br, _) = run(&baseline, &[WasmValue::I32(arg)]);
            let (oe, or, _) = run(&optimized, &[WasmValue::I32(arg)]);
            assert_eq!(be, CpuExit::Return);
            assert_eq!(oe, CpuExit::Return, "arg {arg}");
            assert_eq!(br as u32, or as u32, "arg {arg}");
        }
    }

    #[test]
    fn pipeline_fingerprint_is_stable_and_nonzero() {
        assert_ne!(OptimizingCompiler::pipeline_fingerprint(), 0);
        assert_eq!(
            OptimizingCompiler::pipeline_fingerprint(),
            OptimizingCompiler::pipeline_fingerprint()
        );
    }

    use wasm::module::Module;
    use spc::CompiledFunction;
}
