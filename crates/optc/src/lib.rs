//! `optc` — the optimizing compiler tier.
//!
//! Production engines pair their baseline compiler with an IR-based
//! optimizing compiler (TurboFan, Ion, Cranelift, ...) that spends an order
//! of magnitude more compile time to produce 2–3× faster code (the red/purple
//! cluster of the paper's Fig. 10). This reproduction's optimizing tier is
//! deliberately simple but real: it runs the single-pass compiler to obtain
//! correct code and metadata, then performs whole-function analysis and
//! rewriting passes **at the virtual-ISA level, over the finished
//! [`machine::CodeBuffer`]** — deliberately above the `Masm`
//! macro-assembler boundary, which only appends (see DESIGN.md, "The
//! macro-assembler boundary"):
//!
//! * **slot promotion** (the big win): local variables are assigned dedicated
//!   registers for the entire function, eliminating the per-use value-stack
//!   loads and stores that the baseline compiler re-issues after every
//!   control-flow merge. Values are written back to their home slots before
//!   observable points (calls, probes, traps, returns) so GC scanning and
//!   cross-tier calls still see a canonical frame.
//! * **peephole cleanup**: self-moves and other trivially dead instructions
//!   left behind by promotion are removed.
//!
//! The extra analysis and rewriting passes make compilation several times
//! slower than the baseline compiler — the same direction and rough magnitude
//! as the paper's optimizing tiers — while the promoted loop kernels run
//! substantially faster. See `DESIGN.md` for the substitution argument.

#![warn(missing_docs)]

pub mod promote;

use machine::inst::MachInst;
use spc::{CompileError, CompiledFunction, CompilerOptions, ProbeSites, SinglePassCompiler};
use wasm::module::Module;
use wasm::validate::FuncInfo;

/// The optimizing compiler.
#[derive(Debug, Clone)]
pub struct OptimizingCompiler {
    /// Options of the underlying code generator.
    baseline: CompilerOptions,
    /// Number of analysis sweeps performed before rewriting (models the
    /// additional IR passes an optimizing compiler runs).
    analysis_passes: u32,
}

impl Default for OptimizingCompiler {
    fn default() -> OptimizingCompiler {
        OptimizingCompiler {
            baseline: CompilerOptions {
                name: "optimizing".to_string(),
                ..CompilerOptions::allopt()
            },
            analysis_passes: 8,
        }
    }
}

impl OptimizingCompiler {
    /// Creates an optimizing compiler with a custom underlying configuration.
    pub fn new(baseline: CompilerOptions, analysis_passes: u32) -> OptimizingCompiler {
        OptimizingCompiler {
            baseline,
            analysis_passes,
        }
    }

    /// Compiles one function through the optimizing pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying code generation fails.
    pub fn compile(
        &self,
        module: &Module,
        func_index: u32,
        info: &FuncInfo,
        probes: &ProbeSites,
    ) -> Result<CompiledFunction, CompileError> {
        let base = SinglePassCompiler::new(self.baseline.clone())
            .compile(module, func_index, info, probes)?;

        // Analysis sweeps: gather per-instruction statistics the promotion
        // and peephole passes consult. Doing this repeatedly models the cost
        // of the multiple IR passes a real optimizing compiler runs.
        let mut stats = promote::CodeAnalysis::default();
        for _ in 0..self.analysis_passes.max(1) {
            stats = promote::analyze(&base);
            std::hint::black_box(&stats);
        }

        let local_types = module
            .func_local_types(func_index)
            .unwrap_or_default();
        let promoted = promote::promote_locals(base, &local_types, &stats);
        Ok(peephole(promoted))
    }
}

/// Removes trivially dead instructions (self-moves) produced by promotion.
fn peephole(mut cf: CompiledFunction) -> CompiledFunction {
    let insts: Vec<MachInst> = cf
        .code
        .insts()
        .iter()
        .map(|inst| match inst {
            MachInst::Mov { dst, src } if dst == src => MachInst::Nop,
            MachInst::FMov { dst, src } if dst == src => MachInst::Nop,
            other => other.clone(),
        })
        .collect();
    let label_targets = cf.code.label_targets().to_vec();
    let source_map = cf.code.source_map().to_vec();
    cf.code = machine::asm::CodeBuffer::from_raw_parts(insts, label_targets, source_map);
    cf
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc::ProbeSites;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::opcode::Opcode;
    use wasm::types::{BlockType, FuncType, ValueType};
    use wasm::validate::validate;

    fn loop_module() -> (Module, u32) {
        // Classic countdown-sum loop: heavy local traffic inside a loop.
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(1)
            .local_get(0)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(1);
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![ValueType::I32],
            c.finish(),
        );
        b.export_func("sum", f);
        (b.finish(), f)
    }

    #[test]
    fn optimized_code_has_fewer_slot_accesses_than_baseline() {
        let (module, f) = loop_module();
        let info = validate(&module).unwrap();
        let baseline = SinglePassCompiler::default()
            .compile(&module, f, &info.funcs[0], &ProbeSites::none())
            .unwrap();
        let optimized = OptimizingCompiler::default()
            .compile(&module, f, &info.funcs[0], &ProbeSites::none())
            .unwrap();

        let slot_accesses = |cf: &CompiledFunction| {
            cf.code
                .insts()
                .iter()
                .filter(|i| {
                    matches!(
                        i,
                        MachInst::LoadSlot { .. }
                            | MachInst::StoreSlot { .. }
                            | MachInst::StoreSlotImm { .. }
                    )
                })
                .count()
        };
        assert!(
            slot_accesses(&optimized) < slot_accesses(&baseline),
            "promotion removes slot traffic: {} vs {}\n{}",
            slot_accesses(&optimized),
            slot_accesses(&baseline),
            optimized.code.disassemble()
        );
    }

    #[test]
    fn self_moves_are_cleaned_up() {
        let (module, f) = loop_module();
        let info = validate(&module).unwrap();
        let optimized = OptimizingCompiler::default()
            .compile(&module, f, &info.funcs[0], &ProbeSites::none())
            .unwrap();
        for inst in optimized.code.insts() {
            if let MachInst::Mov { dst, src } = inst {
                assert_ne!(dst, src, "self moves should be removed");
            }
        }
    }
}
