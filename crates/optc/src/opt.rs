//! The optimization pipeline: constant folding, branch folding, trivial
//! block-parameter removal (copy propagation across merges), local common
//! subexpression and redundant-load elimination, and dead-code elimination.
//!
//! All passes communicate through [`FuncIr::resolved`] aliasing: a pass that
//! proves two values equal redirects one to the other, and later passes (and
//! the emitter) read through [`FuncIr::resolve`]. Nothing ever rewrites use
//! lists, which keeps every pass linear and simple.
//!
//! Semantics guardrails, shared with the baseline compiler and interpreter:
//!
//! * folding evaluates through the one
//!   [`OpClass::evaluate`](machine::lower::OpClass::evaluate) table all
//!   tiers use, so folded results are bit-identical to execution;
//! * an operation whose folding would *trap* is left in place so the trap
//!   still happens at runtime;
//! * trapping operations (division, checked conversions, memory loads) are
//!   never dead-code-eliminated — a dropped result does not drop the trap —
//!   but two identical ones can share a result;
//! * loads are only shared within a block and are invalidated by stores,
//!   `memory.grow`, and calls; global reads likewise by writes and calls.

use crate::ir::{Effect, FuncIr, Inst, Node, Terminator, ValueId};
use std::collections::{HashMap, HashSet};

/// Runs the full pass pipeline to a (bounded) fixpoint.
pub fn optimize(ir: &mut FuncIr) {
    // Each round enables the next: folding a branch exposes trivial params,
    // removing params exposes constants, and so on. Three rounds reach the
    // fixpoint on everything the test corpus contains; more never hurts
    // correctness, only compile time.
    for _ in 0..3 {
        fold(ir);
        let a = simplify_params(ir);
        cse(ir);
        let b = dce(ir);
        if !a && !b {
            break;
        }
    }
}

/// A node with all value operands resolved, for structural comparison.
fn resolved_node(ir: &FuncIr, v: ValueId) -> Node {
    let mut node = ir.nodes[ir.resolve(v).index()].clone();
    match &mut node {
        Node::Op { args, .. } => {
            args[0] = ir.resolve(args[0]);
            args[1] = ir.resolve(args[1]);
        }
        Node::Select {
            cond,
            if_true,
            if_false,
        } => {
            *cond = ir.resolve(*cond);
            *if_true = ir.resolve(*if_true);
            *if_false = ir.resolve(*if_false);
        }
        Node::MemLoad { addr, .. } => *addr = ir.resolve(*addr),
        Node::MemoryGrow { delta } => *delta = ir.resolve(*delta),
        _ => {}
    }
    node
}

/// Constant folding over values and branch folding over terminators.
#[allow(clippy::needless_range_loop)] // blocks are mutated while indexed
pub fn fold(ir: &mut FuncIr) {
    let reachable = ir.reachable();
    for bi in 0..ir.blocks.len() {
        if !reachable[bi] {
            continue;
        }
        for ii in 0..ir.blocks[bi].insts.len() {
            let Inst::Def(v) = ir.blocks[bi].insts[ii] else {
                continue;
            };
            if ir.resolve(v) != v {
                continue;
            }
            match resolved_node(ir, v) {
                Node::Op { class, args } => {
                    let arity = class.arity();
                    let mut operands = [0u64; 2];
                    let mut all_const = true;
                    for (i, slot) in operands.iter_mut().enumerate().take(arity) {
                        match ir.as_const(args[i]) {
                            Some(bits) => *slot = bits,
                            None => {
                                all_const = false;
                                break;
                            }
                        }
                    }
                    if all_const {
                        // A folding that would trap stays in the code so the
                        // trap happens during execution, like the baseline.
                        if let Ok(bits) = class.evaluate(&operands[..arity]) {
                            ir.nodes[v.index()] = Node::Const(bits);
                        }
                    }
                }
                Node::Select {
                    cond,
                    if_true,
                    if_false,
                } => {
                    if let Some(c) = ir.as_const(cond) {
                        ir.alias(v, if c != 0 { if_true } else { if_false });
                    }
                }
                _ => {}
            }
        }
        // Branch folding: a constant condition turns the conditional into a
        // jump; the untaken side goes unreachable and is pruned from layout.
        let folded = match &ir.blocks[bi].term {
            Terminator::Branch {
                cond,
                then_edge,
                else_edge,
                ..
            } => ir.as_const(*cond).map(|c| {
                if c != 0 {
                    then_edge.clone()
                } else {
                    else_edge.clone()
                }
            }),
            _ => None,
        };
        if let Some(edge) = folded {
            ir.blocks[bi].term = Terminator::Jump(edge);
        }
    }
}

/// Removes block parameters whose incoming arguments all resolve to the
/// same value (trivial phis), aliasing the parameter to it. Returns whether
/// anything changed.
#[allow(clippy::needless_range_loop)] // blocks are mutated while indexed
pub fn simplify_params(ir: &mut FuncIr) -> bool {
    let mut changed = false;
    loop {
        let reachable = ir.reachable();
        // Incoming resolved argument vectors per target block.
        let mut incoming: HashMap<usize, Vec<Vec<ValueId>>> = HashMap::new();
        for (bi, block) in ir.blocks.iter().enumerate() {
            if !reachable[bi] {
                continue;
            }
            block.term.for_each_edge(|e| {
                let args = e.args.iter().map(|&a| ir.resolve(a)).collect();
                incoming.entry(e.target.index()).or_default().push(args);
            });
        }
        let mut round = false;
        for bi in 0..ir.blocks.len() {
            // The entry block's parameters are the function's ABI: never
            // touched.
            if !reachable[bi] || bi == ir.entry().index() {
                continue;
            }
            let Some(edges) = incoming.get(&bi) else {
                continue;
            };
            let params = ir.blocks[bi].params.clone();
            for (pi, &p) in params.iter().enumerate() {
                if ir.resolve(p) != p {
                    continue;
                }
                // The unique incoming value, ignoring self-references
                // (back edges passing the parameter to itself).
                let mut unique: Option<ValueId> = None;
                let mut trivial = true;
                for args in edges {
                    let a = args[pi];
                    if a == p {
                        continue;
                    }
                    match unique {
                        None => unique = Some(a),
                        Some(u) if u == a => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    if let Some(u) = unique {
                        ir.alias(p, u);
                        round = true;
                    }
                }
            }
        }
        if !round {
            break;
        }
        changed = true;
    }
    changed
}

/// Local (per-block) value numbering: shares pure and trapping computations,
/// redundant loads, global reads, and `memory.size` results, with store /
/// grow / call invalidation.
#[allow(clippy::needless_range_loop)] // blocks are mutated while indexed
pub fn cse(ir: &mut FuncIr) {
    let reachable = ir.reachable();
    for bi in 0..ir.blocks.len() {
        if !reachable[bi] {
            continue;
        }
        // (node, value) pairs; linear scan keeps this dependency-free and
        // blocks are small.
        let mut available: Vec<(Node, ValueId)> = Vec::new();
        let invalidate = |available: &mut Vec<(Node, ValueId)>, memory: bool, globals: Option<Option<u32>>| {
            available.retain(|(n, _)| match n {
                Node::MemLoad { .. } | Node::MemorySize => !memory,
                Node::GlobalGet { index } => match globals {
                    Some(None) => false,
                    Some(Some(i)) => *index != i,
                    None => true,
                },
                _ => true,
            });
        };
        for ii in 0..ir.blocks[bi].insts.len() {
            match ir.blocks[bi].insts[ii].clone() {
                Inst::Def(v) => {
                    if ir.resolve(v) != v {
                        continue;
                    }
                    let node = resolved_node(ir, v);
                    if node.effect() == Effect::Effectful {
                        // memory.grow: kills loads and sizes, keeps globals.
                        invalidate(&mut available, true, None);
                        continue;
                    }
                    if matches!(node, Node::Const(_) | Node::Param { .. } | Node::CallResult) {
                        continue;
                    }
                    if let Some((_, prev)) = available.iter().find(|(n, _)| *n == node) {
                        ir.alias(v, *prev);
                    } else {
                        available.push((node, v));
                    }
                }
                Inst::MemStore { .. } => invalidate(&mut available, true, None),
                Inst::GlobalSet { index, .. } => {
                    invalidate(&mut available, false, Some(Some(index)))
                }
                Inst::Call { .. } | Inst::CallIndirect { .. } => {
                    invalidate(&mut available, true, Some(None))
                }
                Inst::ProbeCounter { .. }
                | Inst::ProbeTos { .. }
                | Inst::ProbeFlush { .. }
                | Inst::FuelCheck { .. }
                | Inst::EpochCheck { .. } => {}
            }
        }
    }
}

/// Dead-code elimination: removes pure definitions nobody uses, then prunes
/// dead and aliased block parameters together with their edge arguments.
/// Returns whether anything changed.
#[allow(clippy::needless_range_loop)] // blocks are mutated while indexed
pub fn dce(ir: &mut FuncIr) -> bool {
    let reachable = ir.reachable();

    // Liveness over values: roots are required instructions and terminator
    // operands; a live parameter makes its incoming edge arguments live.
    let mut live: HashSet<ValueId> = HashSet::new();
    let mut worklist: Vec<ValueId> = Vec::new();
    let mark = |live: &mut HashSet<ValueId>, worklist: &mut Vec<ValueId>, v: ValueId| {
        if live.insert(v) {
            worklist.push(v);
        }
    };
    // Incoming edges per block for param → arg propagation.
    let mut incoming: HashMap<usize, Vec<Vec<ValueId>>> = HashMap::new();
    for (bi, block) in ir.blocks.iter().enumerate() {
        if !reachable[bi] {
            continue;
        }
        block.term.for_each_edge(|e| {
            incoming
                .entry(e.target.index())
                .or_default()
                .push(e.args.clone());
        });
    }
    for (bi, block) in ir.blocks.iter().enumerate() {
        if !reachable[bi] {
            continue;
        }
        for inst in &block.insts {
            if inst.is_required(&ir.nodes) {
                inst.for_each_use(&ir.nodes, |v| {
                    mark(&mut live, &mut worklist, ir.resolve(v))
                });
                // Live calls keep their used results via the results' own
                // uses; nothing to do here.
            }
        }
        match &block.term {
            Terminator::Branch { cond, .. } => mark(&mut live, &mut worklist, ir.resolve(*cond)),
            Terminator::BrTable { index, .. } => {
                mark(&mut live, &mut worklist, ir.resolve(*index))
            }
            Terminator::Return(values) => {
                for &v in values {
                    mark(&mut live, &mut worklist, ir.resolve(v));
                }
            }
            Terminator::Jump(_) | Terminator::Trap { .. } => {}
        }
    }
    while let Some(v) = worklist.pop() {
        match ir.nodes[v.index()].clone() {
            Node::Param { block, index } => {
                if let Some(edges) = incoming.get(&block.index()) {
                    for args in edges {
                        if let Some(&a) = args.get(index as usize) {
                            mark(&mut live, &mut worklist, ir.resolve(a));
                        }
                    }
                }
            }
            node => node.for_each_arg(|a| mark(&mut live, &mut worklist, ir.resolve(a))),
        }
    }

    let mut changed = false;

    // Drop aliased and dead pure definitions.
    for bi in 0..ir.blocks.len() {
        if !reachable[bi] {
            continue;
        }
        let nodes = &ir.nodes;
        let resolved = &ir.resolved;
        let before = ir.blocks[bi].insts.len();
        ir.blocks[bi].insts.retain(|inst| match inst {
            Inst::Def(v) => {
                if resolved[v.index()] != *v {
                    return false;
                }
                match nodes[v.index()] {
                    // Constants are rematerialized at use sites.
                    Node::Const(_) => false,
                    _ => live.contains(v) || nodes[v.index()].effect() != Effect::Pure,
                }
            }
            _ => true,
        });
        changed |= ir.blocks[bi].insts.len() != before;
    }

    // Prune dead or aliased parameters and the matching edge arguments.
    let mut keep: HashMap<usize, Vec<bool>> = HashMap::new();
    for bi in 0..ir.blocks.len() {
        if !reachable[bi] || bi == ir.entry().index() {
            continue;
        }
        let mask: Vec<bool> = ir.blocks[bi]
            .params
            .iter()
            .map(|&p| ir.resolve(p) == p && live.contains(&p))
            .collect();
        if mask.iter().any(|k| !k) {
            keep.insert(bi, mask);
        }
    }
    if !keep.is_empty() {
        changed = true;
        for (bi, mask) in &keep {
            let mut kept = Vec::new();
            for (i, &p) in ir.blocks[*bi].params.iter().enumerate() {
                if mask[i] {
                    kept.push(p);
                }
            }
            // Re-index the surviving parameters.
            for (new_index, &p) in kept.iter().enumerate() {
                if let Node::Param { index, .. } = &mut ir.nodes[p.index()] {
                    *index = new_index as u32;
                }
            }
            ir.blocks[*bi].params = kept;
        }
        for bi in 0..ir.blocks.len() {
            if !reachable[bi] {
                continue;
            }
            ir.blocks[bi].term.for_each_edge_mut(|e| {
                if let Some(mask) = keep.get(&e.target.index()) {
                    let mut i = 0;
                    e.args.retain(|_| {
                        let k = mask[i];
                        i += 1;
                        k
                    });
                }
            });
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use machine::inst::AluOp;
    use machine::lower::OpClass;
    use spc::{ProbeMode, ProbeSites};
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::opcode::Opcode;
    use wasm::types::{BlockType, FuncType, ValueType};
    use wasm::validate::validate;

    fn build_opt(
        params: Vec<ValueType>,
        results: Vec<ValueType>,
        code: CodeBuilder,
    ) -> FuncIr {
        let mut b = ModuleBuilder::new();
        b.add_memory(wasm::types::Limits::at_least(1));
        let f = b.add_func(FuncType::new(params, results), vec![], code.finish());
        let module = b.finish();
        let info = validate(&module).unwrap();
        let mut ir = frontend::build(
            &module,
            f,
            &info.funcs[0],
            &ProbeSites::none(),
            ProbeMode::Optimized,
            None,
            false,
        )
        .unwrap();
        optimize(&mut ir);
        ir
    }

    fn count_ops(ir: &FuncIr, pred: impl Fn(&OpClass) -> bool) -> usize {
        let reach = ir.reachable();
        ir.blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| reach[*i])
            .flat_map(|(_, b)| &b.insts)
            .filter(|inst| match inst {
                Inst::Def(v) => matches!(ir.node(*v), Node::Op { class, .. } if pred(class)),
                _ => false,
            })
            .count()
    }

    #[test]
    fn constants_fold_to_a_single_return() {
        let mut c = CodeBuilder::new();
        c.i32_const(2).i32_const(3).op(Opcode::I32Mul).i32_const(4).op(Opcode::I32Add);
        let ir = build_opt(vec![], vec![ValueType::I32], c);
        assert_eq!(count_ops(&ir, |_| true), 0, "{}", ir.display());
        match &ir.blocks[0].term {
            Terminator::Return(values) => assert_eq!(ir.as_const(values[0]), Some(10)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trapping_fold_is_left_in_place() {
        let mut c = CodeBuilder::new();
        c.i32_const(1).i32_const(0).op(Opcode::I32DivS).drop_().i32_const(9);
        let ir = build_opt(vec![], vec![ValueType::I32], c);
        assert_eq!(
            count_ops(&ir, |cl| matches!(cl, OpClass::Alu(AluOp::DivS, _))),
            1,
            "division by zero must survive folding AND dce:\n{}",
            ir.display()
        );
    }

    #[test]
    fn dead_pure_code_is_removed() {
        let mut c = CodeBuilder::new();
        // add is dropped: pure, removable. The local.get survives as a value
        // but has no instruction.
        c.local_get(0).local_get(0).op(Opcode::I32Add).drop_().i32_const(5);
        let ir = build_opt(vec![ValueType::I32], vec![ValueType::I32], c);
        assert_eq!(count_ops(&ir, |_| true), 0, "{}", ir.display());
    }

    #[test]
    fn redundant_loads_are_shared_within_a_block() {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .mem(Opcode::I32Load, 2, 0)
            .local_get(0)
            .mem(Opcode::I32Load, 2, 0)
            .op(Opcode::I32Add);
        let ir = build_opt(vec![ValueType::I32], vec![ValueType::I32], c);
        let loads = {
            let reach = ir.reachable();
            ir.blocks
                .iter()
                .enumerate()
                .filter(|(i, _)| reach[*i])
                .flat_map(|(_, b)| &b.insts)
                .filter(|inst| {
                    matches!(inst, Inst::Def(v) if matches!(ir.node(*v), Node::MemLoad { .. })
                        && ir.resolve(*v) == *v)
                })
                .count()
        };
        assert_eq!(loads, 1, "{}", ir.display());
    }

    #[test]
    fn stores_invalidate_loads() {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .mem(Opcode::I32Load, 2, 0)
            .local_get(0)
            .local_get(1)
            .mem(Opcode::I32Store, 2, 0)
            .local_get(0)
            .mem(Opcode::I32Load, 2, 0)
            .op(Opcode::I32Add);
        let ir = build_opt(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32], c);
        let reach = ir.reachable();
        let loads = ir
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| reach[*i])
            .flat_map(|(_, b)| &b.insts)
            .filter(|inst| {
                matches!(inst, Inst::Def(v) if matches!(ir.node(*v), Node::MemLoad { .. })
                    && ir.resolve(*v) == *v)
            })
            .count();
        assert_eq!(loads, 2, "the store kills the first load:\n{}", ir.display());
    }

    #[test]
    fn constant_branches_fold_away() {
        let mut c = CodeBuilder::new();
        c.i32_const(1)
            .if_(BlockType::Value(ValueType::I32))
            .i32_const(11)
            .else_()
            .i32_const(22)
            .end();
        let ir = build_opt(vec![], vec![ValueType::I32], c);
        let reach = ir.reachable();
        for (bi, block) in ir.blocks.iter().enumerate() {
            if reach[bi] {
                assert!(
                    !matches!(block.term, Terminator::Branch { .. }),
                    "{}",
                    ir.display()
                );
            }
        }
    }

    #[test]
    fn trivial_params_vanish() {
        // A block whose merge receives the same local from both arms.
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(BlockType::Empty)
            .nop()
            .else_()
            .nop()
            .end()
            .local_get(1);
        let ir = build_opt(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32], c);
        let reach = ir.reachable();
        for (bi, block) in ir.blocks.iter().enumerate() {
            if reach[bi] && bi != 0 {
                assert!(
                    block.params.is_empty(),
                    "all params are trivial here:\n{}",
                    ir.display()
                );
            }
        }
    }
}
