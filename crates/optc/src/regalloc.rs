//! Linear-scan register allocation over the full machine register file.
//!
//! The baseline compiler's forward allocator gives registers up at every
//! control-flow boundary; this allocator assigns each SSA value one location
//! — a register or a frame slot — for its *entire* live range, computed by a
//! classic backward liveness pass over the block layout followed by a
//! linear scan with furthest-end eviction. Loop-carried values therefore
//! stay in registers across iterations, which is where the optimizing
//! tier's cycle win over the baseline comes from.
//!
//! The register file is split between allocatable registers and a small
//! reserved scratch set the emitter uses to materialize constants, shuttle
//! spilled operands, and break parallel-move cycles:
//!
//! * GPRs: `r1..=r11` allocatable; `r0`, `r12`, `r13` reserved (the same
//!   `r0` the baseline reserves, plus two operand scratches — a `select`
//!   can need three simultaneous memory operands).
//! * FPRs: `f1..=f13` allocatable; `f0`, `f14`, `f15` reserved.
//!
//! Reference-typed values are deliberately never allocated to registers:
//! they live in tagged frame slots so the garbage collector's tag scan sees
//! every root without stackmaps (see DESIGN.md, "The optimizing tier").

use crate::ir::{BlockId, FuncIr, Inst, Node, ValueId};
use machine::reg::{AnyReg, FReg, Reg};
use std::collections::{HashMap, HashSet};

/// The general-purpose scratch used to shuttle slot values (the same
/// register the baseline reserves).
pub const SCRATCH_GPR: Reg = Reg(0);
/// Second general-purpose scratch (second memory operand of an
/// instruction).
pub const SCRATCH2_GPR: Reg = Reg(12);
/// Third general-purpose scratch (third memory operand of a `select`; also
/// the parallel-move cycle breaker).
pub const SCRATCH3_GPR: Reg = Reg(13);
/// The floating-point shuttle scratch.
pub const SCRATCH_FPR: FReg = FReg(0);
/// Second floating-point scratch.
pub const SCRATCH2_FPR: FReg = FReg(14);
/// Floating-point parallel-move cycle breaker.
pub const SCRATCH3_FPR: FReg = FReg(15);

const ALLOC_GPRS: std::ops::RangeInclusive<u8> = 1..=11;
const ALLOC_FPRS: std::ops::RangeInclusive<u8> = 1..=13;

/// Where a value lives for its whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A machine register.
    Reg(AnyReg),
    /// A frame slot (relative to the frame base).
    Slot(u32),
}

/// The allocation result.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Location of every allocated (live, non-constant) value.
    pub locs: HashMap<ValueId, Loc>,
    /// First frame slot of the spill area.
    pub spill_base: u32,
    /// Number of spill slots used.
    pub num_spill_slots: u32,
}

impl Allocation {
    /// The location of `v` (after resolution), if it has one. Constants and
    /// dead values have none.
    pub fn loc(&self, ir: &FuncIr, v: ValueId) -> Option<Loc> {
        self.locs.get(&ir.resolve(v)).copied()
    }
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    value: ValueId,
    start: u32,
    end: u32,
    float: bool,
    reference: bool,
    /// Entry-block parameter index, for the home-slot optimization.
    entry_param: Option<u32>,
}

/// Allocates every live value of `ir` (in `order` layout) to a register or
/// spill slot.
pub fn allocate(ir: &FuncIr, order: &[BlockId]) -> Allocation {
    // ---- Positions -------------------------------------------------------
    // Each block gets [start, end] positions; params define at start, each
    // instruction takes one position, the terminator the last.
    let mut block_start = vec![0u32; ir.blocks.len()];
    let mut block_end = vec![0u32; ir.blocks.len()];
    let mut pos = 0u32;
    for &b in order {
        block_start[b.index()] = pos;
        pos += 1; // params
        pos += ir.blocks[b.index()].insts.len() as u32;
        block_end[b.index()] = pos; // terminator position
        pos += 1;
    }

    // ---- Liveness --------------------------------------------------------
    let mut live_in: Vec<HashSet<ValueId>> = vec![HashSet::new(); ir.blocks.len()];
    loop {
        let mut changed = false;
        for &b in order.iter().rev() {
            let block = &ir.blocks[b.index()];
            let mut live: HashSet<ValueId> = HashSet::new();
            block.term.for_each_edge(|e| {
                for v in &live_in[e.target.index()] {
                    live.insert(*v);
                }
                for &p in &ir.blocks[e.target.index()].params {
                    live.remove(&ir.resolve(p));
                }
            });
            block.term.for_each_use(|v| {
                live.insert(ir.resolve(v));
            });
            for inst in block.insts.iter().rev() {
                for_each_def(inst, |d| {
                    live.remove(&ir.resolve(d));
                });
                inst.for_each_use(&ir.nodes, |v| {
                    if !matches!(ir.node(v), Node::Const(_)) {
                        live.insert(ir.resolve(v));
                    }
                });
            }
            for &p in &block.params {
                live.remove(&ir.resolve(p));
            }
            if live != live_in[b.index()] {
                live_in[b.index()] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- Intervals -------------------------------------------------------
    let mut start: HashMap<ValueId, u32> = HashMap::new();
    let mut end: HashMap<ValueId, u32> = HashMap::new();
    let mut entry_param: HashMap<ValueId, u32> = HashMap::new();
    let mut used: HashSet<ValueId> = HashSet::new();

    for &b in order {
        let bi = b.index();
        let block = &ir.blocks[bi];
        let s = block_start[bi];
        let e = block_end[bi];
        for (i, &p) in block.params.iter().enumerate() {
            if ir.resolve(p) != p {
                continue;
            }
            start.entry(p).or_insert(s);
            end.entry(p).or_insert(s);
            if b == ir.entry() {
                entry_param.insert(p, i as u32);
            }
        }
        // Live-out extension: anything live into a successor survives to the
        // end of this block.
        block.term.for_each_edge(|edge| {
            for v in &live_in[edge.target.index()] {
                let entry = end.entry(*v).or_insert(e);
                *entry = (*entry).max(e);
            }
        });
        for (offset, inst) in block.insts.iter().enumerate() {
            let p = s + 1 + offset as u32;
            inst.for_each_use(&ir.nodes, |v| {
                let v = ir.resolve(v);
                if matches!(ir.node(v), Node::Const(_)) {
                    return;
                }
                used.insert(v);
                let entry = end.entry(v).or_insert(p);
                *entry = (*entry).max(p);
            });
            for_each_def(inst, |d| {
                if ir.resolve(d) != d || matches!(ir.nodes[d.index()], Node::Const(_)) {
                    return;
                }
                start.entry(d).or_insert(p);
                end.entry(d).or_insert(p);
            });
        }
        block.term.for_each_use(|v| {
            let v = ir.resolve(v);
            if matches!(ir.node(v), Node::Const(_)) {
                return;
            }
            used.insert(v);
            let entry = end.entry(v).or_insert(e);
            *entry = (*entry).max(e);
        });
    }

    let mut intervals: Vec<Interval> = Vec::new();
    for (&v, &s) in &start {
        // Dead call results and dead trapping defs get no location; the
        // emitter computes them into a scratch.
        let is_param = matches!(ir.nodes[v.index()], Node::Param { .. });
        if !used.contains(&v) && !is_param {
            continue;
        }
        let ty = ir.types[v.index()];
        intervals.push(Interval {
            value: v,
            start: s,
            end: *end.get(&v).unwrap_or(&s),
            float: ty.is_float(),
            reference: ty.is_reference(),
            entry_param: entry_param.get(&v).copied(),
        });
    }
    intervals.sort_by_key(|iv| (iv.start, iv.value));

    // ---- Allocation hints: a parameter prefers its first argument's
    // register, which coalesces loop-carried moves. -----------------------
    let mut hints: HashMap<ValueId, ValueId> = HashMap::new();
    for &b in order {
        ir.blocks[b.index()].term.for_each_edge(|e| {
            let params = &ir.blocks[e.target.index()].params;
            for (&p, &a) in params.iter().zip(&e.args) {
                let p = ir.resolve(p);
                let a = ir.resolve(a);
                hints.entry(p).or_insert(a);
            }
        });
    }

    // ---- Linear scan -----------------------------------------------------
    let mut locs: HashMap<ValueId, Loc> = HashMap::new();
    let mut free_gprs: Vec<Reg> = ALLOC_GPRS.rev().map(Reg).collect();
    let mut free_fprs: Vec<FReg> = ALLOC_FPRS.rev().map(FReg).collect();
    // (end, value, reg) of currently live register-resident intervals.
    let mut active: Vec<(u32, ValueId, AnyReg)> = Vec::new();
    // Spill slots: last position each slot is occupied to, for reuse.
    // OSR entry stubs read the interpreter operand region as their move
    // sources, and the engine requires the optimized frame to cover the
    // interpreter frame it replaces, so reserve that region as well when any
    // OSR site exists.
    let spill_base = ir.num_locals() as u32
        + if ir.has_flush_probes || !ir.osr_sites.is_empty() {
            ir.max_stack
        } else {
            0
        };
    let mut slot_ends: Vec<u32> = Vec::new();
    let spill = |iv: &Interval, slot_ends: &mut Vec<u32>, locs: &mut HashMap<ValueId, Loc>| {
        // Function parameters already live in their home slots; reuse them
        // unless probe flushes could overwrite them mid-function.
        if let Some(i) = iv.entry_param {
            if !ir.has_flush_probes {
                locs.insert(iv.value, Loc::Slot(i));
                return;
            }
        }
        let slot = match slot_ends.iter().position(|&e| e < iv.start) {
            Some(i) => {
                slot_ends[i] = iv.end;
                i
            }
            None => {
                slot_ends.push(iv.end);
                slot_ends.len() - 1
            }
        };
        locs.insert(iv.value, Loc::Slot(spill_base + slot as u32));
    };

    for iv in &intervals {
        // Expire finished intervals.
        active.retain(|&(e, _, reg)| {
            if e < iv.start {
                match reg {
                    AnyReg::Gpr(r) => free_gprs.push(r),
                    AnyReg::Fpr(r) => free_fprs.push(r),
                }
                false
            } else {
                true
            }
        });
        if iv.reference {
            spill(iv, &mut slot_ends, &mut locs);
            continue;
        }
        // Hint: take the first incoming argument's register when free.
        let hinted: Option<AnyReg> = hints
            .get(&iv.value)
            .and_then(|h| locs.get(&ir.resolve(*h)))
            .and_then(|l| match l {
                Loc::Reg(r) => Some(*r),
                Loc::Slot(_) => None,
            });
        let reg: Option<AnyReg> = if iv.float {
            match hinted {
                Some(AnyReg::Fpr(h)) if free_fprs.contains(&h) => {
                    free_fprs.retain(|r| *r != h);
                    Some(AnyReg::Fpr(h))
                }
                _ => free_fprs.pop().map(AnyReg::Fpr),
            }
        } else {
            match hinted {
                Some(AnyReg::Gpr(h)) if free_gprs.contains(&h) => {
                    free_gprs.retain(|r| *r != h);
                    Some(AnyReg::Gpr(h))
                }
                _ => free_gprs.pop().map(AnyReg::Gpr),
            }
        };
        match reg {
            Some(reg) => {
                locs.insert(iv.value, Loc::Reg(reg));
                active.push((iv.end, iv.value, reg));
            }
            None => {
                // Pressure: evict the same-bank active interval that ends
                // furthest away if it outlasts this one, else spill this one.
                let victim = active
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, _, r))| r.is_float() == iv.float)
                    .max_by_key(|(_, (e, _, _))| *e)
                    .map(|(i, _)| i);
                match victim {
                    Some(vi) if active[vi].0 > iv.end => {
                        let (vend, vval, vreg) = active.remove(vi);
                        // The victim's slot must be free from its *definition*
                        // (where the emitter stores spilled values), not from
                        // the eviction point — a slot vacated in between
                        // would overlap the victim's real slot lifetime.
                        let victim_iv = Interval {
                            value: vval,
                            start: start[&vval],
                            end: vend,
                            float: iv.float,
                            reference: false,
                            entry_param: entry_param.get(&vval).copied(),
                        };
                        spill(&victim_iv, &mut slot_ends, &mut locs);
                        locs.insert(iv.value, Loc::Reg(vreg));
                        active.push((iv.end, iv.value, vreg));
                    }
                    _ => spill(iv, &mut slot_ends, &mut locs),
                }
            }
        }
    }

    Allocation {
        locs,
        spill_base,
        num_spill_slots: slot_ends.len() as u32,
    }
}

/// Calls `f` for every value an instruction defines.
fn for_each_def(inst: &Inst, mut f: impl FnMut(ValueId)) {
    match inst {
        Inst::Def(v) => f(*v),
        Inst::Call { results, .. } | Inst::CallIndirect { results, .. } => {
            results.iter().for_each(|&r| f(r));
        }
        _ => {}
    }
}

/// Debug check: the terminator of `block` only branches to blocks whose
/// parameter count matches the edge's argument count.
#[cfg(debug_assertions)]
pub fn check_edges(ir: &FuncIr) {
    let reach = ir.reachable();
    for (bi, block) in ir.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        block.term.for_each_edge(|e| {
            debug_assert_eq!(
                e.args.len(),
                ir.blocks[e.target.index()].params.len(),
                "edge b{bi} -> {} arity mismatch\n{}",
                e.target,
                ir.display()
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{frontend, layout, opt};
    use interp::profile::FuncProfile;
    use spc::{ProbeMode, ProbeSites};
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::opcode::Opcode;
    use wasm::types::{BlockType, FuncType, ValueType};
    use wasm::validate::validate;

    fn alloc_of(
        params: Vec<ValueType>,
        results: Vec<ValueType>,
        code: CodeBuilder,
    ) -> (FuncIr, Vec<BlockId>, Allocation) {
        let mut b = ModuleBuilder::new();
        let f = b.add_func(FuncType::new(params, results), vec![], code.finish());
        let module = b.finish();
        let info = validate(&module).unwrap();
        let mut ir = frontend::build(
            &module,
            f,
            &info.funcs[0],
            &ProbeSites::none(),
            ProbeMode::Optimized,
            None,
            false,
        )
        .unwrap();
        opt::optimize(&mut ir);
        let order = layout::layout(&ir, &FuncProfile::empty());
        let alloc = allocate(&ir, &order);
        (ir, order, alloc)
    }

    #[test]
    fn loop_carried_locals_get_registers() {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(1)
            .local_get(0)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(1);
        let (ir, _, alloc) = alloc_of(
            vec![ValueType::I32, ValueType::I32],
            vec![ValueType::I32],
            c,
        );
        // Every allocated value is in a register: tiny function, no
        // pressure.
        assert!(!alloc.locs.is_empty());
        for (&v, loc) in &alloc.locs {
            assert!(
                matches!(loc, Loc::Reg(_)),
                "{v} spilled with no pressure: {loc:?}\n{}",
                ir.display()
            );
        }
        assert_eq!(alloc.num_spill_slots, 0);
    }

    #[test]
    fn distinct_live_values_get_distinct_registers() {
        let mut c = CodeBuilder::new();
        // Keep 5 values alive simultaneously.
        c.local_get(0)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Add)
            .local_get(0)
            .i32_const(2)
            .op(Opcode::I32Add)
            .local_get(0)
            .i32_const(3)
            .op(Opcode::I32Add)
            .op(Opcode::I32Mul)
            .op(Opcode::I32Mul)
            .op(Opcode::I32Mul);
        let (ir, order, alloc) = alloc_of(vec![ValueType::I32], vec![ValueType::I32], c);
        // Walk positions: at any definition the registers of live values are
        // unique. A cheap proxy: values whose intervals overlap share no
        // register. Recompute intervals via a second allocate call is
        // overkill; instead assert no two *simultaneously used* operands
        // alias. The multiplications use distinct operands:
        let _ = order;
        let regs: Vec<Loc> = alloc.locs.values().copied().collect();
        let reg_count = regs
            .iter()
            .filter(|l| matches!(l, Loc::Reg(_)))
            .count();
        assert!(reg_count >= 4, "{:?}\n{}", alloc.locs, ir.display());
    }

    #[test]
    fn reference_values_stay_in_slots() {
        let mut c = CodeBuilder::new();
        c.local_get(0).op(Opcode::RefIsNull);
        let (_, _, alloc) = alloc_of(vec![ValueType::ExternRef], vec![ValueType::I32], c);
        let has_slot_ref = alloc
            .locs
            .values()
            .any(|l| matches!(l, Loc::Slot(_)));
        assert!(has_slot_ref, "{:?}", alloc.locs);
    }
}
