//! The wasm → SSA frontend.
//!
//! One forward pass over the validated bytecode builds the CFG and SSA form
//! simultaneously, using the same control-stack discipline as validation and
//! the interpreter's sidetable construction: every structured construct
//! knows its merge point up front, so forward branches resolve immediately
//! and only loop headers need (block-parameter) phis for values that might
//! change around the back edge.
//!
//! Merge blocks conservatively take one parameter per local variable plus
//! one per live operand-stack entry; the optimizer's trivial-parameter
//! removal then deletes every parameter whose incoming arguments agree,
//! which recovers precise SSA without any dominance computation here.
//!
//! Probe sites are lowered exactly as the baseline compiler lowers them
//! (same kinds, same flush discipline at runtime/direct probes), so
//! instrumentation observes identical firings from optimized code.

use crate::ir::{Edge, Effect, FuncIr, Inst, Node, OsrSite, Terminator, ValueId};
use machine::inst::{CmpOp, TrapCode, Width};
use machine::lower::{classify, OpClass};
use machine::values::NULL_REF_BITS;
use spc::{CompileError, ProbeKind, ProbeMode, ProbeSites};
use wasm::fuel::FuelPlan;
use wasm::module::Module;
use wasm::opcode::{OpSignature, Opcode};
use wasm::reader::BytecodeReader;
use wasm::types::{BlockType, ValueType};
use wasm::validate::FuncInfo;

use crate::ir::BlockId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Func,
    Block,
    Loop,
    If,
    Else,
}

/// Where a branch at some depth lands.
enum Dest {
    /// Branching to the function label returns.
    Return,
    /// A jump to `target`, passing locals plus the operand stack up to
    /// `base` plus the top `arity` values.
    Edge {
        target: BlockId,
        base: usize,
        arity: usize,
    },
}

struct Frame {
    kind: CtrlKind,
    /// Created in unreachable code: owns no blocks, tracks nesting only.
    dead: bool,
    is_func: bool,
    /// The merge (end) block. Meaningless when `dead` or `is_func`.
    merge: BlockId,
    /// The loop header, for `Loop` frames.
    header: Option<BlockId>,
    /// The else arm's block, for `If` frames.
    else_block: Option<BlockId>,
    else_taken: bool,
    /// Operand-stack height below the construct's own values.
    label_base: usize,
    /// Number of block parameters.
    num_params: usize,
    /// Number of block results.
    num_results: usize,
    /// State at the `if` (after popping the condition), for the else arm.
    snapshot: Option<(Vec<ValueId>, Vec<ValueId>)>,
    unreachable: bool,
}

struct Builder<'a> {
    module: &'a Module,
    probes: &'a ProbeSites,
    probe_mode: ProbeMode,
    fuel: Option<&'a FuelPlan>,
    osr: bool,
    ir: FuncIr,
    current: BlockId,
    locals: Vec<ValueId>,
    stack: Vec<ValueId>,
    ctrl: Vec<Frame>,
    /// Bytecode offset of the instruction being lowered; [`Builder::def`]
    /// records it for trapping nodes so the emitter can anchor them in the
    /// source map.
    cur_offset: u32,
}

/// Builds the SSA form of one validated function.
///
/// # Errors
///
/// Returns an error for malformed bodies (validation normally rejects these
/// first).
pub fn build(
    module: &Module,
    func_index: u32,
    info: &FuncInfo,
    probes: &ProbeSites,
    probe_mode: ProbeMode,
    fuel: Option<&FuelPlan>,
    osr: bool,
) -> Result<FuncIr, CompileError> {
    let decl = module.func_decl(func_index).ok_or(CompileError {
        offset: 0,
        message: format!("function {func_index} has no body"),
    })?;
    let sig = module.func_type(func_index).ok_or(CompileError {
        offset: 0,
        message: format!("function {func_index} has no signature"),
    })?;
    let local_types = module
        .func_local_types(func_index)
        .expect("checked above: function has a body");
    let num_params = sig.params.len();

    let mut ir = FuncIr::new(
        func_index,
        local_types.clone(),
        sig.results.clone(),
        info.max_stack,
    );
    // Parameters are entry-block parameters (the engine wrote them into the
    // frame's first slots); declared locals start as their default constants,
    // which feeds the constant folder directly.
    let entry = ir.entry();
    let mut locals = Vec::with_capacity(local_types.len());
    for (i, &ty) in local_types.iter().enumerate() {
        if i < num_params {
            locals.push(ir.add_param(entry, ty));
        } else {
            locals.push(ir.add_value(Node::Const(default_bits(ty)), ty));
        }
    }

    let mut b = Builder {
        module,
        probes,
        probe_mode,
        fuel,
        osr,
        ir,
        current: entry,
        locals,
        stack: Vec::new(),
        ctrl: Vec::new(),
        cur_offset: 0,
    };
    b.ctrl.push(Frame {
        kind: CtrlKind::Func,
        dead: false,
        is_func: true,
        merge: entry,
        header: None,
        else_block: None,
        else_taken: false,
        label_base: 0,
        num_params: 0,
        num_results: sig.results.len(),
        snapshot: None,
        unreachable: false,
    });
    b.run(&decl.code)?;
    Ok(b.ir)
}

/// Raw slot bits of a type's default value.
fn default_bits(ty: ValueType) -> u64 {
    if ty.is_reference() {
        NULL_REF_BITS
    } else {
        0
    }
}

impl<'a> Builder<'a> {
    fn error(&self, offset: usize, message: impl Into<String>) -> CompileError {
        CompileError {
            offset,
            message: message.into(),
        }
    }

    fn unreachable_now(&self) -> bool {
        self.ctrl.last().map(|f| f.unreachable).unwrap_or(false)
    }

    fn pop(&mut self) -> ValueId {
        self.stack.pop().expect("validated stack is never empty here")
    }

    fn push(&mut self, v: ValueId) {
        self.stack.push(v);
    }

    fn set_term(&mut self, term: Terminator) {
        self.ir.blocks[self.current.index()].term = term;
    }

    fn push_inst(&mut self, inst: Inst) {
        self.ir.blocks[self.current.index()].insts.push(inst);
    }

    fn def(&mut self, node: Node, ty: ValueType) -> ValueId {
        let trapping = node.effect() == Effect::Trapping;
        let v = self.ir.add_value(node, ty);
        if trapping {
            self.ir.set_src_offset(v, self.cur_offset);
        }
        self.push_inst(Inst::Def(v));
        v
    }

    /// The edge arguments for a transfer to a merge point at `base` with
    /// `arity` transferred values: current locals, the untouched stack below
    /// `base`, and the top `arity` values.
    fn edge_args(&self, base: usize, arity: usize) -> Vec<ValueId> {
        let mut args = self.locals.clone();
        args.extend_from_slice(&self.stack[..base]);
        args.extend_from_slice(&self.stack[self.stack.len() - arity..]);
        args
    }

    /// Creates a merge block with parameters for every local, the stack
    /// below `base`, and `tys` transferred values.
    fn make_merge(&mut self, base: usize, tys: &[ValueType]) -> BlockId {
        let block = self.ir.add_block();
        for i in 0..self.locals.len() {
            let ty = self.ir.local_types[i];
            self.ir.add_param(block, ty);
        }
        for p in 0..base {
            let ty = self.ir.ty(self.stack[p]);
            self.ir.add_param(block, ty);
        }
        for &ty in tys {
            self.ir.add_param(block, ty);
        }
        block
    }

    /// Continues lowering at a merge block: locals and stack are its params.
    fn adopt_merge_state(&mut self, block: BlockId) {
        let params = self.ir.blocks[block.index()].params.clone();
        let n = self.locals.len();
        self.locals = params[..n].to_vec();
        self.stack = params[n..].to_vec();
        self.current = block;
    }

    fn branch_target(&self, depth: u32) -> Option<Dest> {
        let len = self.ctrl.len();
        if depth as usize >= len {
            return None;
        }
        let frame = &self.ctrl[len - 1 - depth as usize];
        if frame.is_func {
            return Some(Dest::Return);
        }
        if frame.kind == CtrlKind::Loop {
            Some(Dest::Edge {
                target: frame.header.expect("loop has a header"),
                base: frame.label_base,
                arity: frame.num_params,
            })
        } else {
            Some(Dest::Edge {
                target: frame.merge,
                base: frame.label_base,
                arity: frame.num_results,
            })
        }
    }

    /// The edge for a resolved destination, materializing a dedicated
    /// return block for branches to the function label.
    fn dest_edge(&mut self, dest: &Dest) -> Edge {
        match dest {
            Dest::Return => {
                let n = self.ir.result_types.len();
                let results = self.stack[self.stack.len() - n..].to_vec();
                let block = self.ir.add_block();
                self.ir.blocks[block.index()].term = Terminator::Return(results);
                Edge {
                    target: block,
                    args: vec![],
                }
            }
            Dest::Edge {
                target,
                base,
                arity,
            } => Edge {
                target: *target,
                args: self.edge_args(*base, *arity),
            },
        }
    }

    fn mark_unreachable(&mut self) {
        let base = self.ctrl.last().map(|f| f.label_base).unwrap_or(0);
        self.stack.truncate(base);
        if let Some(frame) = self.ctrl.last_mut() {
            frame.unreachable = true;
        }
    }

    fn emit_return(&mut self) {
        let n = self.ir.result_types.len();
        let results = self.stack[self.stack.len() - n..].to_vec();
        self.set_term(Terminator::Return(results));
    }

    fn emit_probe(&mut self, site: spc::ProbeSite, offset: u32) {
        let height = self.stack.len() as u32;
        match (self.probe_mode, site.kind) {
            (ProbeMode::Optimized, ProbeKind::Counter { counter_id }) => {
                self.push_inst(Inst::ProbeCounter {
                    counter_id,
                    offset,
                    height,
                });
            }
            (ProbeMode::Optimized, ProbeKind::TopOfStack) => {
                let value = self.stack.last().copied();
                self.push_inst(Inst::ProbeTos {
                    probe_id: site.probe_id,
                    value,
                    offset,
                    height,
                });
            }
            (ProbeMode::Optimized, ProbeKind::Generic) | (ProbeMode::Runtime, _) => {
                // Observable frame: the interpreter layout must hold, for
                // frame accessors and tier-down.
                let mut flush = Vec::with_capacity(self.locals.len() + self.stack.len());
                for (i, &v) in self.locals.iter().enumerate() {
                    flush.push((i as u32, v));
                }
                let num_locals = self.locals.len() as u32;
                for (p, &v) in self.stack.iter().enumerate() {
                    flush.push((num_locals + p as u32, v));
                }
                self.ir.has_flush_probes = true;
                self.push_inst(Inst::ProbeFlush {
                    probe_id: site.probe_id,
                    runtime: self.probe_mode == ProbeMode::Runtime,
                    offset,
                    height,
                    flush,
                });
            }
        }
    }

    fn run(&mut self, code: &[u8]) -> Result<(), CompileError> {
        let mut reader = BytecodeReader::new(code);
        while !self.ctrl.is_empty() {
            if reader.is_at_end() {
                return Err(self.error(code.len(), "body ended with open control constructs"));
            }
            let offset = reader.pc();
            let op = reader
                .read_opcode()
                .map_err(|e| self.error(offset, e.to_string()))?;
            if !self.unreachable_now() {
                // Metering first, probes second — the tier-uniform order.
                // `self.current` is the merge/header block that branch
                // targets land in, so back-edges re-execute these checks.
                if let Some(plan) = self.fuel {
                    // One fused check per site, exactly like the baseline
                    // tier: the loop-head epoch poll rides the region's
                    // fuel decrement.
                    let charge = plan.charge_at(offset as u32);
                    if charge.is_some() || plan.epoch_check_at(offset as u32) {
                        self.push_inst(Inst::FuelCheck {
                            offset: offset as u32,
                            amount: charge.unwrap_or(0),
                        });
                    }
                }
                if let Some(site) = self.probes.get(offset as u32) {
                    self.emit_probe(*site, offset as u32);
                }
            }
            self.lower(op, offset, &mut reader)?;
        }
        if !reader.is_at_end() {
            return Err(self.error(reader.pc(), "trailing bytes after final end"));
        }
        Ok(())
    }

    fn block_signature(
        &self,
        offset: usize,
        bt: BlockType,
    ) -> Result<(Vec<ValueType>, Vec<ValueType>), CompileError> {
        bt.resolve(&self.module.types)
            .ok_or_else(|| self.error(offset, "bad block type"))
    }

    fn lower(
        &mut self,
        op: Opcode,
        offset: usize,
        reader: &mut BytecodeReader<'_>,
    ) -> Result<(), CompileError> {
        // In unreachable code only track control nesting, like validation.
        if self.unreachable_now()
            && !matches!(
                op,
                Opcode::Block | Opcode::Loop | Opcode::If | Opcode::Else | Opcode::End
            )
        {
            reader
                .skip_immediates(op)
                .map_err(|e| self.error(offset, e.to_string()))?;
            return Ok(());
        }
        self.cur_offset = offset as u32;

        match op {
            Opcode::Nop => {}
            Opcode::Unreachable => {
                self.set_term(Terminator::Trap {
                    code: TrapCode::Unreachable,
                    offset: offset as u32,
                });
                self.mark_unreachable();
            }
            Opcode::Block | Opcode::Loop | Opcode::If => {
                let bt = reader
                    .read_block_type()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let (params, results) = self.block_signature(offset, bt)?;
                let dead = self.unreachable_now();
                if dead {
                    self.ctrl.push(Frame {
                        kind: match op {
                            Opcode::Block => CtrlKind::Block,
                            Opcode::Loop => CtrlKind::Loop,
                            _ => CtrlKind::If,
                        },
                        dead: true,
                        is_func: false,
                        merge: self.current,
                        header: None,
                        else_block: None,
                        else_taken: false,
                        label_base: 0,
                        num_params: params.len(),
                        num_results: results.len(),
                        snapshot: None,
                        unreachable: true,
                    });
                    return Ok(());
                }

                let cond = if op == Opcode::If { Some(self.pop()) } else { None };
                let base = self.stack.len() - params.len();
                let merge = self.make_merge(base, &results);
                let mut frame = Frame {
                    kind: match op {
                        Opcode::Block => CtrlKind::Block,
                        Opcode::Loop => CtrlKind::Loop,
                        _ => CtrlKind::If,
                    },
                    dead: false,
                    is_func: false,
                    merge,
                    header: None,
                    else_block: None,
                    else_taken: false,
                    label_base: base,
                    num_params: params.len(),
                    num_results: results.len(),
                    snapshot: None,
                    unreachable: false,
                };
                match op {
                    Opcode::Loop => {
                        let header = self.make_merge(base, &params);
                        let args = self.edge_args(base, params.len());
                        self.set_term(Terminator::Jump(Edge {
                            target: header,
                            args,
                        }));
                        self.adopt_merge_state(header);
                        frame.header = Some(header);
                        if self.osr {
                            // `reader` sits right past the blocktype, i.e. at
                            // the body start the fuel plan records as this
                            // loop's epoch-check site. The header params were
                            // created in interpreter frame-slot order (locals,
                            // then operand stack below and at the loop
                            // params), so the OSR entry declares one
                            // parameter per frame slot and hands them to the
                            // header unchanged.
                            let header_params =
                                self.ir.blocks[header.index()].params.clone();
                            let entry = self.ir.add_block();
                            let args: Vec<ValueId> = header_params
                                .iter()
                                .enumerate()
                                .map(|(k, &p)| {
                                    let ty = self.ir.ty(p);
                                    let v = self.ir.add_value(
                                        Node::OsrSlot { index: k as u32 },
                                        ty,
                                    );
                                    self.ir.blocks[entry.index()]
                                        .insts
                                        .push(Inst::Def(v));
                                    v
                                })
                                .collect();
                            self.ir.blocks[entry.index()].term =
                                Terminator::Jump(Edge {
                                    target: header,
                                    args,
                                });
                            self.ir.osr_sites.push(OsrSite {
                                offset: reader.pc() as u32,
                                entry,
                            });
                        }
                    }
                    Opcode::If => {
                        frame.snapshot = Some((self.locals.clone(), self.stack.clone()));
                        let then_block = self.ir.add_block();
                        let else_block = self.ir.add_block();
                        self.set_term(Terminator::Branch {
                            cond: cond.expect("if pops a condition"),
                            offset: offset as u32,
                            natural_then: true,
                            then_edge: Edge {
                                target: then_block,
                                args: vec![],
                            },
                            else_edge: Edge {
                                target: else_block,
                                args: vec![],
                            },
                        });
                        self.current = then_block;
                        frame.else_block = Some(else_block);
                    }
                    _ => {}
                }
                self.ctrl.push(frame);
            }
            Opcode::Else => {
                let frame = self.ctrl.last_mut().expect("else inside an if");
                if frame.dead {
                    frame.kind = CtrlKind::Else;
                    frame.else_taken = true;
                    return Ok(());
                }
                let was_reachable = !frame.unreachable;
                let (merge, base, num_results) =
                    (frame.merge, frame.label_base, frame.num_results);
                if was_reachable {
                    let args = self.edge_args(base, num_results);
                    self.set_term(Terminator::Jump(Edge {
                        target: merge,
                        args,
                    }));
                }
                let frame = self.ctrl.last_mut().expect("else inside an if");
                frame.kind = CtrlKind::Else;
                frame.else_taken = true;
                frame.unreachable = false;
                let else_block = frame.else_block.expect("if created an else block");
                let (snap_locals, snap_stack) =
                    frame.snapshot.clone().expect("if saved a snapshot");
                self.locals = snap_locals;
                self.stack = snap_stack;
                self.current = else_block;
            }
            Opcode::End => {
                let frame = self.ctrl.pop().expect("end matches a construct");
                if frame.dead {
                    return Ok(());
                }
                let was_reachable = !frame.unreachable;
                if frame.is_func {
                    if was_reachable {
                        self.emit_return();
                    }
                    return Ok(());
                }
                if was_reachable {
                    let args = self.edge_args(frame.label_base, frame.num_results);
                    self.set_term(Terminator::Jump(Edge {
                        target: frame.merge,
                        args,
                    }));
                }
                // An `if` without an `else`: the false edge flows straight to
                // the merge with the state captured at the `if` (validation
                // guarantees params == results here).
                if frame.kind == CtrlKind::If && !frame.else_taken {
                    let else_block = frame.else_block.expect("if created an else block");
                    let (snap_locals, snap_stack) =
                        frame.snapshot.clone().expect("if saved a snapshot");
                    let mut args = snap_locals;
                    args.extend_from_slice(&snap_stack);
                    self.ir.blocks[else_block.index()].term = Terminator::Jump(Edge {
                        target: frame.merge,
                        args,
                    });
                }
                self.adopt_merge_state(frame.merge);
            }
            Opcode::Br => {
                let depth = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let dest = self
                    .branch_target(depth)
                    .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                match dest {
                    Dest::Return => self.emit_return(),
                    dest => {
                        let edge = self.dest_edge(&dest);
                        self.set_term(Terminator::Jump(edge));
                    }
                }
                self.mark_unreachable();
            }
            Opcode::BrIf => {
                let depth = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let cond = self.pop();
                let dest = self
                    .branch_target(depth)
                    .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                let then_edge = self.dest_edge(&dest);
                let cont = self.ir.add_block();
                self.set_term(Terminator::Branch {
                    cond,
                    offset: offset as u32,
                    natural_then: false,
                    then_edge,
                    else_edge: Edge {
                        target: cont,
                        args: vec![],
                    },
                });
                self.current = cont;
            }
            Opcode::BrTable => {
                let (depths, default) = reader
                    .read_branch_table()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let index = self.pop();
                let mut targets = Vec::with_capacity(depths.len());
                for depth in &depths {
                    let dest = self
                        .branch_target(*depth)
                        .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                    targets.push(self.dest_edge(&dest));
                }
                let dest = self
                    .branch_target(default)
                    .ok_or_else(|| self.error(offset, "bad branch depth"))?;
                let default = self.dest_edge(&dest);
                self.set_term(Terminator::BrTable {
                    index,
                    targets,
                    default,
                });
                self.mark_unreachable();
            }
            Opcode::Return => {
                self.emit_return();
                self.mark_unreachable();
            }
            Opcode::Call => {
                let callee = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let sig = self
                    .module
                    .func_type(callee)
                    .cloned()
                    .ok_or_else(|| self.error(offset, format!("unknown callee {callee}")))?;
                let split = self.stack.len() - sig.params.len();
                let args = self.stack.split_off(split);
                let results: Vec<ValueId> = sig
                    .results
                    .iter()
                    .map(|&ty| self.ir.add_value(Node::CallResult, ty))
                    .collect();
                self.push_inst(Inst::Call {
                    offset: offset as u32,
                    callee,
                    args,
                    results: results.clone(),
                });
                self.stack.extend(results);
            }
            Opcode::CallIndirect => {
                let (type_index, table_index) = reader
                    .read_call_indirect()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let sig = self
                    .module
                    .types
                    .get(type_index as usize)
                    .cloned()
                    .ok_or_else(|| self.error(offset, format!("unknown type {type_index}")))?;
                let index = self.pop();
                let split = self.stack.len() - sig.params.len();
                let args = self.stack.split_off(split);
                let results: Vec<ValueId> = sig
                    .results
                    .iter()
                    .map(|&ty| self.ir.add_value(Node::CallResult, ty))
                    .collect();
                self.push_inst(Inst::CallIndirect {
                    offset: offset as u32,
                    type_index,
                    table_index,
                    index,
                    args,
                    results: results.clone(),
                });
                self.stack.extend(results);
            }
            Opcode::Drop => {
                self.pop();
            }
            Opcode::Select | Opcode::SelectT => {
                if op == Opcode::SelectT {
                    reader
                        .read_select_types()
                        .map_err(|e| self.error(offset, e.to_string()))?;
                }
                let cond = self.pop();
                let if_false = self.pop();
                let if_true = self.pop();
                let ty = self.ir.ty(if_true);
                let v = self.def(
                    Node::Select {
                        cond,
                        if_true,
                        if_false,
                    },
                    ty,
                );
                self.push(v);
            }
            Opcode::LocalGet => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))? as usize;
                self.push(self.locals[index]);
            }
            Opcode::LocalSet | Opcode::LocalTee => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))? as usize;
                let v = *self.stack.last().expect("validated");
                self.locals[index] = v;
                if op == Opcode::LocalSet {
                    self.pop();
                }
            }
            Opcode::GlobalGet => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let ty = self
                    .module
                    .global_type(index)
                    .ok_or_else(|| self.error(offset, format!("unknown global {index}")))?
                    .value_type;
                let v = self.def(Node::GlobalGet { index }, ty);
                self.push(v);
            }
            Opcode::GlobalSet => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let value = self.pop();
                self.push_inst(Inst::GlobalSet { index, value });
            }
            Opcode::I32Const => {
                let v = reader
                    .read_i32()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let c = self.ir.add_value(Node::Const(v as u32 as u64), ValueType::I32);
                self.push(c);
            }
            Opcode::I64Const => {
                let v = reader
                    .read_i64()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let c = self.ir.add_value(Node::Const(v as u64), ValueType::I64);
                self.push(c);
            }
            Opcode::F32Const => {
                let v = reader
                    .read_f32()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let c = self
                    .ir
                    .add_value(Node::Const(v.to_bits() as u64), ValueType::F32);
                self.push(c);
            }
            Opcode::F64Const => {
                let v = reader
                    .read_f64()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let c = self.ir.add_value(Node::Const(v.to_bits()), ValueType::F64);
                self.push(c);
            }
            Opcode::RefNull => {
                let ty = reader
                    .read_ref_type()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let c = self.ir.add_value(Node::Const(NULL_REF_BITS), ty);
                self.push(c);
            }
            Opcode::RefFunc => {
                let index = reader
                    .read_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let c = self
                    .ir
                    .add_value(Node::Const(index as u64), ValueType::FuncRef);
                self.push(c);
            }
            Opcode::RefIsNull => {
                let r = self.pop();
                let null = self
                    .ir
                    .add_value(Node::Const(NULL_REF_BITS), ValueType::I64);
                let v = self.def(
                    Node::Op {
                        class: OpClass::Cmp(CmpOp::Eq, Width::W64),
                        args: [r, null],
                    },
                    ValueType::I32,
                );
                self.push(v);
            }
            Opcode::MemorySize => {
                reader
                    .read_memory_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let v = self.def(Node::MemorySize, ValueType::I32);
                self.push(v);
            }
            Opcode::MemoryGrow => {
                reader
                    .read_memory_index()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let delta = self.pop();
                let v = self.def(Node::MemoryGrow { delta }, ValueType::I32);
                self.push(v);
            }
            _ if op.is_memory_access() => {
                let memarg = reader
                    .read_memarg()
                    .map_err(|e| self.error(offset, e.to_string()))?;
                let width = op.access_width().expect("memory access has a width");
                match op.signature() {
                    OpSignature::Load(result) => {
                        let addr = self.pop();
                        let signed = matches!(
                            op,
                            Opcode::I32Load8S
                                | Opcode::I32Load16S
                                | Opcode::I64Load8S
                                | Opcode::I64Load16S
                                | Opcode::I64Load32S
                        );
                        let dst_width = if result == ValueType::I32 || result == ValueType::F32 {
                            Width::W32
                        } else {
                            Width::W64
                        };
                        let v = self.def(
                            Node::MemLoad {
                                addr,
                                offset: memarg.offset,
                                width,
                                signed,
                                dst_width,
                            },
                            result,
                        );
                        self.push(v);
                    }
                    OpSignature::Store(_) => {
                        let value = self.pop();
                        let addr = self.pop();
                        self.push_inst(Inst::MemStore {
                            value,
                            addr,
                            offset: memarg.offset,
                            width,
                            src_offset: offset as u32,
                        });
                    }
                    _ => unreachable!("memory access opcodes have load/store signatures"),
                }
            }
            _ => {
                let class = classify(op)
                    .ok_or_else(|| self.error(offset, format!("unhandled opcode {op}")))?;
                let mut args = [ValueId(0); 2];
                if class.arity() == 2 {
                    args[1] = self.pop();
                    args[0] = self.pop();
                } else {
                    args[0] = self.pop();
                    args[1] = args[0];
                }
                let v = self.def(Node::Op { class, args }, class.result_type());
                self.push(v);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::FuncType;
    use wasm::validate::validate;

    fn build_ir(
        params: Vec<ValueType>,
        results: Vec<ValueType>,
        locals: Vec<ValueType>,
        code: CodeBuilder,
    ) -> FuncIr {
        let mut b = ModuleBuilder::new();
        let f = b.add_func(FuncType::new(params, results), locals, code.finish());
        let module = b.finish();
        let info = validate(&module).unwrap();
        build(
            &module,
            f,
            &info.funcs[0],
            &ProbeSites::none(),
            ProbeMode::Optimized,
            None,
            false,
        )
        .unwrap()
    }

    #[test]
    fn straight_line_builds_one_block() {
        let mut c = CodeBuilder::new();
        c.local_get(0).i32_const(2).op(Opcode::I32Add);
        let ir = build_ir(vec![ValueType::I32], vec![ValueType::I32], vec![], c);
        assert_eq!(ir.reachable().iter().filter(|r| **r).count(), 1);
        match &ir.blocks[0].term {
            Terminator::Return(values) => assert_eq!(values.len(), 1),
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn loop_creates_a_header_with_params() {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(0);
        let ir = build_ir(vec![ValueType::I32], vec![ValueType::I32], vec![], c);
        // The loop header has a parameter for the local.
        let has_loop_params = ir
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| i != 0 && !b.params.is_empty());
        assert!(has_loop_params, "{}", ir.display());
    }

    #[test]
    fn if_without_else_flows_to_merge() {
        let mut c = CodeBuilder::new();
        c.local_get(0)
            .if_(BlockType::Empty)
            .i32_const(7)
            .local_set(0)
            .end()
            .local_get(0);
        let ir = build_ir(vec![ValueType::I32], vec![ValueType::I32], vec![], c);
        // Every reachable block is terminated (no placeholder traps except
        // real ones).
        let reach = ir.reachable();
        for (i, block) in ir.blocks.iter().enumerate() {
            if reach[i] {
                if let Terminator::Trap {
                    code: TrapCode::Unreachable,
                    ..
                } = &block.term
                {
                    panic!("unterminated reachable block b{i}:\n{}", ir.display())
                }
            }
        }
    }

    #[test]
    fn dead_code_is_skipped() {
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .br(0)
            .i32_const(1)
            .i32_const(2)
            .op(Opcode::I32Add)
            .drop_()
            .end();
        let ir = build_ir(vec![], vec![], vec![], c);
        // The dead add was never lowered.
        assert!(
            !ir.nodes.iter().any(|n| matches!(
                n,
                Node::Op {
                    class: OpClass::Alu(machine::inst::AluOp::Add, _),
                    ..
                }
            )),
            "{}",
            ir.display()
        );
    }

    #[test]
    fn declared_locals_default_to_constants() {
        let mut c = CodeBuilder::new();
        c.local_get(1);
        let ir = build_ir(
            vec![ValueType::I32],
            vec![ValueType::I64],
            vec![ValueType::I64],
            c,
        );
        match &ir.blocks[0].term {
            Terminator::Return(values) => {
                assert_eq!(ir.as_const(values[0]), Some(0));
            }
            other => panic!("expected return, got {other:?}"),
        }
    }
}
