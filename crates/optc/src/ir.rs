//! The SSA intermediate representation of the optimizing tier.
//!
//! The IR is block-parameter-form SSA (the style of Cranelift and MLIR):
//! instead of phi instructions, every merge block declares *parameters* and
//! every incoming edge passes *arguments*. The frontend creates one
//! parameter per local variable and live operand-stack entry at each merge;
//! the optimizer then deletes the (many) parameters whose arguments agree,
//! which is exactly the removal of trivial phis.
//!
//! Values are immutable and typed. A value's defining [`Node`] is either
//! *pure* (recomputable, removable), *trapping* (read-only but observable —
//! loads, division, checked conversions — which must never be removed or
//! reordered past each other, because eliminating one would eliminate its
//! trap), or *effectful* (`memory.grow`). Stores, calls, and probes are
//! block [`Inst`]s, which keeps every side effect in program order; calls
//! define their results as opaque nodes.
//!
//! The representation deliberately stays close to what [`machine`]'s
//! virtual ISA can express: operations are classified with the same
//! [`OpClass`] table the baseline compiler and the interpreter share, so the
//! optimizer's constant folder evaluates with bit-exact identical semantics
//! to both executing tiers.

use machine::inst::{TrapCode, Width};
use machine::lower::OpClass;
use std::collections::HashMap;
use std::fmt;
use wasm::types::ValueType;

/// A value in the SSA graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The value's index into the function's value tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into the function's block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// What defines a value.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// The `index`-th parameter of `block` (a phi).
    Param {
        /// The block declaring the parameter.
        block: BlockId,
        /// Position within the block's parameter list.
        index: u32,
    },
    /// A compile-time constant (raw 64-bit slot bits).
    Const(u64),
    /// A classified pure-or-trapping operation (the shared [`OpClass`]
    /// table). Unary operations use only `args[0]`.
    Op {
        /// The operation.
        class: OpClass,
        /// Operand values (`args[1]` is ignored for unary classes).
        args: [ValueId; 2],
    },
    /// `select`: `cond != 0 ? if_true : if_false`.
    Select {
        /// Condition (i32).
        cond: ValueId,
        /// Value when the condition is non-zero.
        if_true: ValueId,
        /// Value when the condition is zero.
        if_false: ValueId,
    },
    /// A linear-memory load (trapping).
    MemLoad {
        /// Address value (i32).
        addr: ValueId,
        /// Constant byte offset.
        offset: u32,
        /// Access width in bytes.
        width: u32,
        /// Sign-extend the loaded integer.
        signed: bool,
        /// Destination width.
        dst_width: Width,
    },
    /// `memory.size` (pure but order-sensitive across `memory.grow`).
    MemorySize,
    /// `memory.grow` (effectful).
    MemoryGrow {
        /// Page delta (i32).
        delta: ValueId,
    },
    /// A global read (order-sensitive across writes and calls).
    GlobalGet {
        /// Global index.
        index: u32,
    },
    /// A result of a call instruction (opaque; defined by the [`Inst`]).
    CallResult,
    /// The value of interpreter-layout frame slot `index` at an OSR entry
    /// (see [`OsrSite`]). Defined only in OSR entry blocks, where the frame
    /// still holds the replaced lower-tier frame's state; the slot index is
    /// part of the node so parameter pruning can never lose the mapping.
    OsrSlot {
        /// Interpreter frame-slot index (locals, then operand stack).
        index: u32,
    },
}

/// How a node interacts with the effect order of its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Freely removable and shareable.
    Pure,
    /// Observable only through a possible trap: must not be removed, but two
    /// identical instances can share one result.
    Trapping,
    /// A real side effect: never removed, never shared.
    Effectful,
}

impl Node {
    /// The node's effect class.
    pub fn effect(&self) -> Effect {
        match self {
            Node::Op { class, .. } => {
                if class.can_trap() {
                    Effect::Trapping
                } else {
                    Effect::Pure
                }
            }
            Node::MemLoad { .. } => Effect::Trapping,
            Node::MemoryGrow { .. } => Effect::Effectful,
            // Reads of mutable state: removable when unused (a dead read has
            // no observable effect), but CSE must respect intervening writes.
            Node::MemorySize | Node::GlobalGet { .. } => Effect::Pure,
            Node::Param { .. }
            | Node::Const(_)
            | Node::Select { .. }
            | Node::CallResult
            | Node::OsrSlot { .. } => Effect::Pure,
        }
    }

    /// Calls `f` for every value operand of the node.
    pub fn for_each_arg(&self, mut f: impl FnMut(ValueId)) {
        match self {
            Node::Op { class, args } => {
                f(args[0]);
                if class.arity() == 2 {
                    f(args[1]);
                }
            }
            Node::Select {
                cond,
                if_true,
                if_false,
            } => {
                f(*cond);
                f(*if_true);
                f(*if_false);
            }
            Node::MemLoad { addr, .. } => f(*addr),
            Node::MemoryGrow { delta } => f(*delta),
            Node::Param { .. }
            | Node::Const(_)
            | Node::MemorySize
            | Node::GlobalGet { .. }
            | Node::CallResult
            | Node::OsrSlot { .. } => {}
        }
    }
}

/// A side-effecting (or value-defining) instruction in a block's ordered
/// instruction list.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Defines `0` from its [`Node`]. Pure and trapping nodes live here so
    /// the block preserves the order of every possible trap.
    Def(ValueId),
    /// A linear-memory store.
    MemStore {
        /// Stored value.
        value: ValueId,
        /// Address value (i32).
        addr: ValueId,
        /// Constant byte offset.
        offset: u32,
        /// Access width in bytes.
        width: u32,
        /// Bytecode offset of the store (source-map anchor: a bounds trap
        /// here must symbolicate to the store instruction).
        src_offset: u32,
    },
    /// A global write.
    GlobalSet {
        /// Global index.
        index: u32,
        /// Stored value.
        value: ValueId,
    },
    /// A direct call.
    Call {
        /// Bytecode offset (source-map anchor for stack traces).
        offset: u32,
        /// Callee function index.
        callee: u32,
        /// Argument values, in signature order.
        args: Vec<ValueId>,
        /// Result values this call defines ([`Node::CallResult`]).
        results: Vec<ValueId>,
    },
    /// An indirect call through a table.
    CallIndirect {
        /// Bytecode offset.
        offset: u32,
        /// Expected signature (type index).
        type_index: u32,
        /// Table index.
        table_index: u32,
        /// Dynamic element index value.
        index: ValueId,
        /// Argument values, in signature order.
        args: Vec<ValueId>,
        /// Result values this call defines.
        results: Vec<ValueId>,
    },
    /// An intrinsified counter probe.
    ProbeCounter {
        /// Counter id.
        counter_id: u32,
        /// Bytecode offset of the probed instruction.
        offset: u32,
        /// Operand-stack height at the probe.
        height: u32,
    },
    /// An optimized top-of-stack probe. `value` is `None` when the operand
    /// stack is empty at the site.
    ProbeTos {
        /// Probe site id.
        probe_id: u32,
        /// The top-of-stack value, if any.
        value: Option<ValueId>,
        /// Bytecode offset of the probed instruction.
        offset: u32,
        /// Operand-stack height at the probe.
        height: u32,
    },
    /// A runtime or direct-call probe. These sites are *observable frames*:
    /// the interpreter frame layout must be reconstructable (for frame
    /// accessors and tier-down), so `flush` lists every `(slot, value)` pair
    /// the emitter must store before the probe — current locals at their
    /// local slots and operand-stack values at `num_locals + position`.
    ProbeFlush {
        /// Probe site id.
        probe_id: u32,
        /// True for a runtime-lookup probe, false for a direct-call probe.
        runtime: bool,
        /// Bytecode offset of the probed instruction.
        offset: u32,
        /// Operand-stack height at the probe.
        height: u32,
        /// `(frame slot, value)` pairs to store before the probe.
        flush: Vec<(u32, ValueId)>,
    },
    /// A fuel decrement-and-check for one charge region. Placed at the
    /// region's first bytecode offset; never moved or merged by passes.
    FuelCheck {
        /// Bytecode offset of the charge region's start.
        offset: u32,
        /// Fuel units deducted.
        amount: u64,
    },
    /// An epoch poll at a loop-body start.
    EpochCheck {
        /// Bytecode offset of the loop body.
        offset: u32,
    },
}

impl Inst {
    /// Calls `f` for every value this instruction *uses* (not defines).
    pub fn for_each_use(&self, nodes: &[Node], mut f: impl FnMut(ValueId)) {
        match self {
            Inst::Def(v) => nodes[v.index()].for_each_arg(f),
            Inst::MemStore { value, addr, .. } => {
                f(*value);
                f(*addr);
            }
            Inst::GlobalSet { value, .. } => f(*value),
            Inst::Call { args, .. } => args.iter().for_each(|&a| f(a)),
            Inst::CallIndirect { index, args, .. } => {
                f(*index);
                args.iter().for_each(|&a| f(a));
            }
            Inst::ProbeCounter { .. } => {}
            Inst::ProbeTos { value, .. } => {
                if let Some(v) = value {
                    f(*v)
                }
            }
            Inst::ProbeFlush { flush, .. } => flush.iter().for_each(|&(_, v)| f(v)),
            Inst::FuelCheck { .. } | Inst::EpochCheck { .. } => {}
        }
    }

    /// True if the instruction must be kept even when no value it defines is
    /// used.
    pub fn is_required(&self, nodes: &[Node]) -> bool {
        match self {
            Inst::Def(v) => nodes[v.index()].effect() != Effect::Pure,
            _ => true,
        }
    }
}

/// One control-flow edge: a target block and the arguments passed to its
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// The successor block.
    pub target: BlockId,
    /// Arguments, one per target parameter.
    pub args: Vec<ValueId>,
}

/// How a block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional transfer.
    Jump(Edge),
    /// Two-way conditional transfer. `offset` is the bytecode offset of the
    /// originating branch, the key into the branch profile.
    Branch {
        /// Condition value (non-zero takes `then_edge`).
        cond: ValueId,
        /// Bytecode offset of the branch (profile key).
        offset: u32,
        /// True if the `then` side is the bytecode-order successor (an `if`'s
        /// then-arm); false when the `else` side is (a `br_if`'s
        /// continuation). The layout uses this when no profile is available.
        natural_then: bool,
        /// Edge taken when the condition is non-zero.
        then_edge: Edge,
        /// Edge taken when the condition is zero.
        else_edge: Edge,
    },
    /// Multi-way transfer (jump table).
    BrTable {
        /// Index value.
        index: ValueId,
        /// Per-index edges.
        targets: Vec<Edge>,
        /// Out-of-range edge.
        default: Edge,
    },
    /// Return from the function with the given results.
    Return(Vec<ValueId>),
    /// Unconditional trap.
    Trap {
        /// The trap reason.
        code: TrapCode,
        /// Bytecode offset of the trapping instruction (source-map anchor).
        offset: u32,
    },
}

impl Terminator {
    /// Calls `f` for every outgoing edge.
    pub fn for_each_edge(&self, mut f: impl FnMut(&Edge)) {
        match self {
            Terminator::Jump(e) => f(e),
            Terminator::Branch {
                then_edge,
                else_edge,
                ..
            } => {
                f(then_edge);
                f(else_edge);
            }
            Terminator::BrTable {
                targets, default, ..
            } => {
                targets.iter().for_each(&mut f);
                f(default);
            }
            Terminator::Return(_) | Terminator::Trap { .. } => {}
        }
    }

    /// Like [`Terminator::for_each_edge`] but with mutable access.
    pub fn for_each_edge_mut(&mut self, mut f: impl FnMut(&mut Edge)) {
        match self {
            Terminator::Jump(e) => f(e),
            Terminator::Branch {
                then_edge,
                else_edge,
                ..
            } => {
                f(then_edge);
                f(else_edge);
            }
            Terminator::BrTable {
                targets, default, ..
            } => {
                targets.iter_mut().for_each(&mut f);
                f(default);
            }
            Terminator::Return(_) | Terminator::Trap { .. } => {}
        }
    }

    /// Calls `f` for every value the terminator uses directly (conditions,
    /// indices, return values, and edge arguments).
    pub fn for_each_use(&self, mut f: impl FnMut(ValueId)) {
        match self {
            Terminator::Jump(_) | Terminator::Trap { .. } => {}
            Terminator::Branch { cond, .. } => f(*cond),
            Terminator::BrTable { index, .. } => f(*index),
            Terminator::Return(values) => values.iter().for_each(|&v| f(v)),
        }
        self.for_each_edge(|e| e.args.iter().for_each(|&a| f(a)));
    }
}

/// A basic block: parameters, an ordered instruction list, and a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block's parameter values (phis).
    pub params: Vec<ValueId>,
    /// Instructions in program order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    fn new() -> Block {
        Block {
            params: Vec::new(),
            insts: Vec::new(),
            // Placeholder until the frontend seals the block.
            term: Terminator::Trap {
                code: TrapCode::Unreachable,
                offset: 0,
            },
        }
    }
}

/// One on-stack-replacement entry point: a loop whose body start can be
/// entered mid-activation from an interpreter-layout frame.
///
/// The frame-state mapping is the [`Inst::ProbeFlush`] interp-layout
/// contract run in reverse: the loop header's parameters were created in
/// exactly interpreter frame-slot order (locals, then operand stack), so
/// parameter `k` is reconstructed from frame slot `k`. The emitter turns
/// each site into an entry stub of parallel moves followed by a jump to the
/// header.
#[derive(Debug, Clone)]
pub struct OsrSite {
    /// Bytecode offset of the loop-body start (the back-edge target, and the
    /// offset the shared fuel plan records as an epoch-check site).
    pub offset: u32,
    /// The OSR entry block: a real block whose parameters are defined by
    /// the interpreter-layout frame (parameter `k` holds frame slot `k` at
    /// the body start — the emitter loads them exactly like the function
    /// entry's prologue) and whose terminator jumps to the loop header with
    /// those parameters as edge arguments. Making the entry a true second
    /// predecessor of the header keeps every downstream pass honest:
    /// parameter simplification cannot alias a loop-invariant local to its
    /// pre-loop definition, and the register allocator sees the edge moves.
    pub entry: BlockId,
}

/// The SSA form of one function, plus the frame facts emission needs.
#[derive(Debug, Clone)]
pub struct FuncIr {
    /// The function's index in the function index space.
    pub func_index: u32,
    /// Blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Defining node of each value.
    pub nodes: Vec<Node>,
    /// Type of each value.
    pub types: Vec<ValueType>,
    /// Resolution table: `resolved[v]` is the value `v` now stands for
    /// (union-find without ranks; follow until fixpoint via
    /// [`FuncIr::resolve`]). Copy propagation, CSE, and parameter removal
    /// all redirect values here instead of rewriting every use.
    pub resolved: Vec<ValueId>,
    /// Local slot types (parameters followed by declared locals).
    pub local_types: Vec<ValueType>,
    /// Result types.
    pub result_types: Vec<ValueType>,
    /// Maximum operand-stack height (from validation; sizes the interpreter
    /// frame region when the function has observable probe frames).
    pub max_stack: u32,
    /// True if any probe site requires the interpreter frame layout to be
    /// materialized (see [`Inst::ProbeFlush`]).
    pub has_flush_probes: bool,
    /// On-stack-replacement entry points, one per reachable `loop` (only
    /// populated when the compiler has OSR enabled).
    pub osr_sites: Vec<OsrSite>,
    /// Bytecode offset of each *trapping* value, keyed by the defining
    /// [`ValueId`]. Kept out of [`Node`] so CSE equality is untouched:
    /// two identical trapping nodes still unify, and the survivor (the
    /// first in program order, which is the one that traps in every tier)
    /// keeps its own entry. Value ids are stable across every pass, so the
    /// table never needs rewriting.
    src_offsets: HashMap<u32, u32>,
}

impl FuncIr {
    /// Creates an empty function with an entry block.
    pub fn new(
        func_index: u32,
        local_types: Vec<ValueType>,
        result_types: Vec<ValueType>,
        max_stack: u32,
    ) -> FuncIr {
        FuncIr {
            func_index,
            blocks: vec![Block::new()],
            nodes: Vec::new(),
            types: Vec::new(),
            resolved: Vec::new(),
            local_types,
            result_types,
            max_stack,
            has_flush_probes: false,
            osr_sites: Vec::new(),
            src_offsets: HashMap::new(),
        }
    }

    /// Records the bytecode offset of a trapping value (see `src_offsets`).
    pub fn set_src_offset(&mut self, v: ValueId, offset: u32) {
        self.src_offsets.insert(v.0, offset);
    }

    /// The bytecode offset of a trapping value, if one was recorded.
    pub fn src_offset(&self, v: ValueId) -> Option<u32> {
        self.src_offsets.get(&v.0).copied()
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of local slots.
    pub fn num_locals(&self) -> usize {
        self.local_types.len()
    }

    /// Creates a new value of type `ty` defined by `node`.
    pub fn add_value(&mut self, node: Node, ty: ValueType) -> ValueId {
        let id = ValueId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.types.push(ty);
        self.resolved.push(id);
        id
    }

    /// Creates a new block.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new());
        id
    }

    /// Appends a parameter of type `ty` to `block` and returns its value.
    pub fn add_param(&mut self, block: BlockId, ty: ValueType) -> ValueId {
        let index = self.blocks[block.index()].params.len() as u32;
        let v = self.add_value(Node::Param { block, index }, ty);
        self.blocks[block.index()].params.push(v);
        v
    }

    /// Follows the resolution chain of `v` to its representative.
    pub fn resolve(&self, mut v: ValueId) -> ValueId {
        while self.resolved[v.index()] != v {
            v = self.resolved[v.index()];
        }
        v
    }

    /// Redirects `from` to stand for `to`.
    pub fn alias(&mut self, from: ValueId, to: ValueId) {
        let to = self.resolve(to);
        let from = self.resolve(from);
        if from != to {
            self.resolved[from.index()] = to;
        }
    }

    /// The type of a value (after resolution).
    pub fn ty(&self, v: ValueId) -> ValueType {
        self.types[self.resolve(v).index()]
    }

    /// The defining node of a value (after resolution).
    pub fn node(&self, v: ValueId) -> &Node {
        &self.nodes[self.resolve(v).index()]
    }

    /// The constant bits of a value, if it resolves to a constant.
    pub fn as_const(&self, v: ValueId) -> Option<u64> {
        match self.node(v) {
            Node::Const(bits) => Some(*bits),
            _ => None,
        }
    }

    /// The blocks reachable from the entry, in no particular order.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry()];
        seen[self.entry().index()] = true;
        // OSR entry blocks are entered from outside the graph (a running
        // lower-tier frame jumps in), so they are roots alongside the
        // function entry.
        for site in &self.osr_sites {
            if !seen[site.entry.index()] {
                seen[site.entry.index()] = true;
                stack.push(site.entry);
            }
        }
        while let Some(b) = stack.pop() {
            self.blocks[b.index()].term.for_each_edge(|e| {
                if !seen[e.target.index()] {
                    seen[e.target.index()] = true;
                    stack.push(e.target);
                }
            });
        }
        seen
    }

    /// Renders the IR as a human-readable listing (debugging aid).
    pub fn display(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let reachable = self.reachable();
        for (bi, block) in self.blocks.iter().enumerate() {
            if !reachable[bi] {
                continue;
            }
            let params: Vec<String> = block
                .params
                .iter()
                .map(|p| format!("{}: {:?}", p, self.types[p.index()]))
                .collect();
            let _ = writeln!(out, "b{bi}({}):", params.join(", "));
            for inst in &block.insts {
                match inst {
                    Inst::Def(v) => {
                        let rv = self.resolve(*v);
                        let _ = writeln!(out, "  {v} = {:?}", self.nodes[rv.index()]);
                    }
                    other => {
                        let _ = writeln!(out, "  {other:?}");
                    }
                }
            }
            let _ = writeln!(out, "  {:?}", block.term);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::inst::AluOp;

    #[test]
    fn values_blocks_and_resolution() {
        let mut ir = FuncIr::new(0, vec![ValueType::I32], vec![ValueType::I32], 4);
        let a = ir.add_param(ir.entry(), ValueType::I32);
        let c = ir.add_value(Node::Const(7), ValueType::I32);
        let sum = ir.add_value(
            Node::Op {
                class: OpClass::Alu(AluOp::Add, Width::W32),
                args: [a, c],
            },
            ValueType::I32,
        );
        assert_eq!(ir.ty(sum), ValueType::I32);
        assert_eq!(ir.as_const(c), Some(7));
        assert_eq!(ir.as_const(sum), None);
        // Aliasing redirects resolution transitively.
        let copy = ir.add_value(Node::Const(0), ValueType::I32);
        ir.alias(copy, sum);
        assert_eq!(ir.resolve(copy), sum);
        let copy2 = ir.add_value(Node::Const(0), ValueType::I32);
        ir.alias(copy2, copy);
        assert_eq!(ir.resolve(copy2), sum);
    }

    #[test]
    fn effects_classify_nodes() {
        let div = Node::Op {
            class: OpClass::Alu(AluOp::DivS, Width::W32),
            args: [ValueId(0), ValueId(1)],
        };
        assert_eq!(div.effect(), Effect::Trapping);
        let add = Node::Op {
            class: OpClass::Alu(AluOp::Add, Width::W32),
            args: [ValueId(0), ValueId(1)],
        };
        assert_eq!(add.effect(), Effect::Pure);
        assert_eq!(
            Node::MemLoad {
                addr: ValueId(0),
                offset: 0,
                width: 4,
                signed: false,
                dst_width: Width::W32
            }
            .effect(),
            Effect::Trapping
        );
        assert_eq!(Node::MemoryGrow { delta: ValueId(0) }.effect(), Effect::Effectful);
        assert_eq!(Node::MemorySize.effect(), Effect::Pure);
        assert_eq!(Node::Const(1).effect(), Effect::Pure);
    }

    #[test]
    fn reachability_skips_orphan_blocks() {
        let mut ir = FuncIr::new(0, vec![], vec![], 0);
        let b1 = ir.add_block();
        let _orphan = ir.add_block();
        ir.blocks[0].term = Terminator::Jump(Edge {
            target: b1,
            args: vec![],
        });
        ir.blocks[b1.index()].term = Terminator::Return(vec![]);
        let reachable = ir.reachable();
        assert_eq!(reachable, vec![true, true, false]);
        assert!(ir.display().contains("b1"));
        assert!(!ir.display().contains("b2("));
    }
}
