//! Shared measurement harness for the figure-reproduction binaries.
//!
//! Each `fig*` binary in `src/bin/` regenerates one table or figure of the
//! paper. They all share the machinery here: run every line item of every
//! suite under an engine configuration, collect execution cycles (the
//! reproduction's "execution time"), wall-clock setup and compile time, and
//! aggregate per suite with the same average / min / max presentation the
//! paper's bar charts use.

#![warn(missing_docs)]

pub mod report;

use engine::{Engine, EngineConfig, Imports, Instrumentation};
use std::time::Duration;
use suites::{BenchmarkItem, Scale};

/// The measurement of one line item under one engine configuration.
#[derive(Debug, Clone)]
pub struct ItemMeasurement {
    /// Suite the item belongs to.
    pub suite: &'static str,
    /// Line-item name.
    pub name: String,
    /// Simulated execution cycles of `main`.
    pub exec_cycles: u64,
    /// Wall-clock instantiation time (validation, preparation, eager
    /// compilation, segments).
    pub setup_wall: Duration,
    /// Total wall-clock compilation time (eager plus lazy/tier-up; see
    /// [`engine::RunMetrics::total_compile_wall`]).
    pub compile_wall: Duration,
    /// Wasm bytes compiled.
    pub compiled_wasm_bytes: u64,
    /// Machine-code bytes produced by the configuration's backend (the
    /// virtual ISA's estimate, or real encodings under the x86-64 backend).
    pub compiled_machine_bytes: u64,
    /// Size of the module binary in bytes.
    pub module_bytes: u64,
    /// The checksum `main` returned (used to cross-check configurations).
    pub checksum: i32,
    /// Probe firings observed, when instrumentation was attached.
    pub probe_firings: u64,
    /// Fuel consumed by the call when a budget was armed
    /// ([`measure_item_fueled`]); zero for unmetered runs.
    pub fuel_consumed: u64,
}

/// How to instrument a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instrument {
    /// No instrumentation.
    None,
    /// Attach the branch monitor to all conditional branches.
    BranchMonitor,
}

/// Runs one item under `config` and collects its measurement.
///
/// # Panics
///
/// Panics if the module fails to instantiate or traps — benchmark items are
/// expected to run successfully under every configuration.
pub fn measure_item(
    config: &EngineConfig,
    item: &BenchmarkItem,
    instrument: Instrument,
) -> ItemMeasurement {
    measure_item_inner(config, item, instrument, None)
}

/// Like [`measure_item`] but arms a fuel budget before the call, so the
/// interpreter's metering hook actually runs (a metering configuration with
/// no fuel armed skips interpreter-side charging, while compiled code always
/// executes its emitted check sequences — arming makes the comparison fair).
///
/// # Panics
///
/// Panics if `config` is not a metering configuration, or if the item runs
/// out of fuel — overhead measurements need the full workload to complete.
pub fn measure_item_fueled(
    config: &EngineConfig,
    item: &BenchmarkItem,
    instrument: Instrument,
    fuel: u64,
) -> ItemMeasurement {
    assert!(
        config.metering,
        "measure_item_fueled needs a metering configuration ({} is not)",
        config.name
    );
    measure_item_inner(config, item, instrument, Some(fuel))
}

fn measure_item_inner(
    config: &EngineConfig,
    item: &BenchmarkItem,
    instrument: Instrument,
    fuel: Option<u64>,
) -> ItemMeasurement {
    let engine = Engine::new(config.clone());
    let instrumentation = match instrument {
        Instrument::None => Instrumentation::none(),
        Instrument::BranchMonitor => Instrumentation::branch_monitor(&item.module),
    };
    let mut instance = engine
        .instantiate(&item.module, Imports::new(), instrumentation)
        .unwrap_or_else(|e| panic!("{}/{} failed to instantiate under {}: {e}", item.suite, item.name, config.name));
    if let Some(budget) = fuel {
        instance.set_fuel(budget);
    }
    let result = engine
        .call_export(&mut instance, BenchmarkItem::ENTRY, &[])
        .unwrap_or_else(|e| panic!("{}/{} trapped under {}: {e}", item.suite, item.name, config.name));
    let checksum = match result.first() {
        Some(machine::values::WasmValue::I32(v)) => *v,
        _ => 0,
    };
    ItemMeasurement {
        suite: item.suite,
        name: item.name.clone(),
        exec_cycles: instance.metrics.exec_cycles,
        setup_wall: instance.metrics.setup_wall,
        compile_wall: instance.metrics.total_compile_wall(),
        compiled_wasm_bytes: instance.metrics.compiled_wasm_bytes,
        compiled_machine_bytes: instance.metrics.compiled_machine_bytes,
        module_bytes: item.encoded_size() as u64,
        checksum,
        probe_firings: instance.instrumentation.total_firings(),
        fuel_consumed: instance.fuel_consumed().unwrap_or(0),
    }
}

/// Runs every line item of every suite under `config`.
pub fn measure_all(
    config: &EngineConfig,
    scale: Scale,
    instrument: Instrument,
) -> Vec<ItemMeasurement> {
    let mut out = Vec::new();
    for suite in suites::all_suites(scale) {
        for item in &suite.items {
            out.push(measure_item(config, item, instrument));
        }
    }
    out
}

/// Runs every line item of every suite under `config` with `fuel` armed per
/// item ([`measure_item_fueled`]); pass a budget far above any item's cost so
/// the whole workload completes while metering stays active.
pub fn measure_all_fueled(
    config: &EngineConfig,
    scale: Scale,
    instrument: Instrument,
    fuel: u64,
) -> Vec<ItemMeasurement> {
    let mut out = Vec::new();
    for suite in suites::all_suites(scale) {
        for item in &suite.items {
            out.push(measure_item_fueled(config, item, instrument, fuel));
        }
    }
    out
}

/// The per-suite summary statistic used by the paper's bar charts: the
/// average over line items plus the minimum and maximum line item.
#[derive(Debug, Clone, Copy)]
pub struct SuiteSummary {
    /// Mean of the per-item values.
    pub mean: f64,
    /// Minimum per-item value.
    pub min: f64,
    /// Maximum per-item value.
    pub max: f64,
}

/// The `p`-th percentile (0–100) of `values`, by nearest-rank on a sorted
/// copy — the latency statistic the fig15/fig17 gates report (p50/p99).
///
/// Nearest-rank means the result is always an observed sample, never an
/// interpolation: rank `ceil(p/100 · n)` of the sorted values (1-based),
/// with `p = 0` mapping to the minimum. A consequence worth knowing when
/// sizing a gate: with fewer than `100/(100-p)` samples the top rank *is*
/// the maximum — p99 of n < 100 samples just returns `max`, so a p99 gate
/// needs at least 100 samples before it says anything max itself doesn't.
///
/// # Panics
///
/// Panics on an empty slice or a `p` outside 0–100.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take a percentile of nothing");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

/// Summarizes a per-item metric over one suite.
///
/// # Panics
///
/// Panics on an empty slice — a suite with no line items is a harness bug,
/// not a value to average.
pub fn summarize(values: &[f64]) -> SuiteSummary {
    assert!(!values.is_empty(), "cannot summarize an empty suite");
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    SuiteSummary { mean, min, max }
}

/// Groups per-item ratios by suite (preserving the suite order of
/// [`suites::all_suites`]) and returns `(suite name, summary)` rows.
pub fn summarize_by_suite(
    items: &[ItemMeasurement],
    ratio: impl Fn(&ItemMeasurement) -> f64,
) -> Vec<(&'static str, SuiteSummary)> {
    let mut rows = Vec::new();
    for suite_name in ["polybench", "libsodium", "ostrich"] {
        let values: Vec<f64> = items
            .iter()
            .filter(|m| m.suite == suite_name)
            .map(&ratio)
            .collect();
        if !values.is_empty() {
            rows.push((suite_name, summarize(&values)));
        }
    }
    rows
}

/// Pairs measurements of the same items under two configurations (by suite
/// and name) and applies `f` to each pair.
pub fn paired<'a>(
    a: &'a [ItemMeasurement],
    b: &'a [ItemMeasurement],
) -> impl Iterator<Item = (&'a ItemMeasurement, &'a ItemMeasurement)> {
    a.iter().zip(b.iter()).inspect(|(x, y)| {
        debug_assert_eq!(x.name, y.name, "measurement vectors must align");
    })
}

/// The scale the figure binaries run at by default. `--full` switches to the
/// paper-sized workloads.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        Scale::Default
    } else {
        Scale::Test
    }
}

/// The configuration string the figure binaries record in their
/// [`BenchReport`]s: the workload scale the numbers were taken at.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test-scale",
        Scale::Default => "full-scale",
    }
}

/// Formats a figure header the binaries print before their tables.
pub fn print_header(figure: &str, description: &str) {
    println!("==========================================================");
    println!("{figure}: {description}");
    println!("(suites: polybench=28, libsodium=39, ostrich=11 line items)");
    println!("==========================================================");
}

/// Prints a per-suite summary table with one column group per configuration.
pub fn print_suite_table(configs: &[String], rows: &[(&'static str, Vec<SuiteSummary>)]) {
    print!("{:<12}", "suite");
    for c in configs {
        print!(" | {c:^26}");
    }
    println!();
    print!("{:-<12}", "");
    for _ in configs {
        print!("-+-{:-<26}", "");
    }
    println!();
    for (suite, summaries) in rows {
        print!("{suite:<12}");
        for s in summaries {
            print!(
                " | {:>7.2} [{:>7.2},{:>8.2}]",
                s.mean, s.min, s.max
            );
        }
        println!();
    }
}

/// A machine-readable record of one figure gate's headline numbers.
///
/// Each `fig*` binary builds one of these alongside its human-readable table
/// and writes it to `BENCH_<figure>.json` in the working directory, giving
/// the repo a perf trajectory that CI runs can diff without scraping stdout.
/// The workspace is offline (no serde), so the JSON is assembled by hand:
/// a flat object of metric name to number, which is all a trend line needs.
#[derive(Debug, Clone)]
pub struct BenchReport {
    figure: String,
    config: String,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// Starts a report for `figure` (used as the output file stem).
    pub fn new(figure: &str) -> BenchReport {
        BenchReport {
            figure: figure.to_string(),
            config: String::from("default"),
            metrics: Vec::new(),
        }
    }

    /// Names the configuration (scale, engine profile, worker count…) the
    /// numbers were taken under, so a trend line never mixes apples with
    /// oranges. Reports that never call this say `"default"`.
    pub fn config(&mut self, config: &str) -> &mut BenchReport {
        self.config = config.to_string();
        self
    }

    /// Records one named metric. Names use `suite.metric` dot-paths so the
    /// flat object stays greppable; recording the same name twice keeps both
    /// entries in order (the JSON is a trajectory log, not a map).
    pub fn metric(&mut self, name: &str, value: f64) -> &mut BenchReport {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"figure\": \"{}\",\n", escape_json(&self.figure)));
        out.push_str(&format!("  \"config\": \"{}\",\n", escape_json(&self.config)));
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": {}{comma}\n",
                escape_json(name),
                format_json_number(*value)
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes `BENCH_<figure>.json` into `dir` and returns its path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.figure));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `BENCH_<figure>.json` into the working directory, prints where
    /// it went, and panics on I/O failure (the gates treat a missing report
    /// as a failure, so there is no point soldiering on).
    pub fn write(&self) {
        let path = self
            .write_to(std::path::Path::new("."))
            .unwrap_or_else(|e| panic!("cannot write BENCH_{}.json: {e}", self.figure));
        println!("report: {}", path.display());
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Integers print without a fraction; everything else keeps six decimals,
/// and non-finite values (JSON has no spelling for them) become null.
fn format_json_number(value: f64) -> String {
    if !value.is_finite() {
        "null".to_string()
    } else if value.fract() == 0.0 && value.abs() < 9e15 {
        format!("{}", value as i64)
    } else {
        format!("{value:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc::CompilerOptions;

    #[test]
    fn summarize_computes_mean_min_max() {
        let s = summarize(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 99.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
    }

    #[test]
    fn p99_of_fewer_than_100_samples_is_just_the_max() {
        // Nearest-rank: ceil(0.99 * n) == n for every n < 100, so the p99
        // collapses to the maximum — the reason the fig15/fig17 gates
        // assert their sample counts reach 100 before gating on p99.
        for n in [1usize, 10, 50, 99] {
            let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
            assert_eq!(percentile(&v, 99.0), (n - 1) as f64, "n = {n}");
        }
        // At exactly 100 samples the p99 finally splits off the tail.
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 99.0), 98.0);
        assert_eq!(percentile(&v, 100.0), 99.0);
    }

    #[test]
    #[should_panic(expected = "cannot take a percentile of nothing")]
    fn percentile_of_empty_input_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "cannot summarize an empty suite")]
    fn summarize_of_empty_input_panics() {
        summarize(&[]);
    }

    #[test]
    fn measure_one_item_produces_sane_numbers() {
        let suite = suites::polybench::suite(Scale::Test);
        let item = &suite.items[0];
        let interp = measure_item(
            &EngineConfig::interpreter("wizeng-int"),
            item,
            Instrument::None,
        );
        let jit = measure_item(
            &EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt()),
            item,
            Instrument::None,
        );
        assert_eq!(interp.checksum, jit.checksum);
        assert!(interp.exec_cycles > jit.exec_cycles);
        assert!(jit.compile_wall > Duration::ZERO);
        assert_eq!(interp.compile_wall, Duration::ZERO);
        assert!(jit.compiled_wasm_bytes > 0);
        assert!(interp.module_bytes > 100);
    }

    #[test]
    fn fueled_measurement_records_consumption_and_matches_checksum() {
        let suite = suites::polybench::suite(Scale::Test);
        let item = &suite.items[0];
        let plain = measure_item(
            &EngineConfig::baseline("spc", CompilerOptions::allopt()),
            item,
            Instrument::None,
        );
        let fueled = measure_item_fueled(
            &EngineConfig::baseline("spc", CompilerOptions::allopt()).with_metering(),
            item,
            Instrument::None,
            u64::MAX / 2,
        );
        assert_eq!(plain.checksum, fueled.checksum);
        assert_eq!(plain.fuel_consumed, 0);
        assert!(fueled.fuel_consumed > 0);
        assert!(fueled.exec_cycles > plain.exec_cycles, "checks cost cycles");
    }

    #[test]
    fn bench_report_renders_and_writes_json() {
        let mut report = BenchReport::new("fig99_test");
        report
            .config("test-scale")
            .metric("polybench.cycles", 12345.0)
            .metric("overhead_pct", 3.25)
            .metric("bad", f64::NAN);
        let json = report.to_json();
        assert!(json.contains("\"figure\": \"fig99_test\""));
        assert!(json.contains("\"config\": \"test-scale\""));
        report::validate_report_json(&json).expect("report validates against its own schema");
        assert!(json.contains("\"polybench.cycles\": 12345,"));
        assert!(json.contains("\"overhead_pct\": 3.250000,"));
        assert!(json.contains("\"bad\": null\n"));
        let dir = std::env::temp_dir();
        let path = report.write_to(&dir).expect("writes");
        assert_eq!(
            std::fs::read_to_string(&path).expect("readable"),
            json
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn branch_monitor_instrumentation_fires() {
        let suite = suites::ostrich::suite(Scale::Test);
        let item = suite.items.iter().find(|i| i.name == "bfs").unwrap();
        let m = measure_item(
            &EngineConfig::interpreter("wizeng-int"),
            item,
            Instrument::BranchMonitor,
        );
        assert!(m.probe_firings > 0, "branch monitor observed branches");
    }
}
